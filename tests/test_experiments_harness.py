"""Direct tests of the experiment harness (repro.analysis.experiments).

The benchmarks exercise the harness at full resolution; these tests pin
its API and invariants at the smallest possible sizes so harness
regressions are caught in seconds.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    au_fault_recovery_experiment,
    au_scaling_experiment,
    au_scaling_slope,
    le_scaling_experiment,
    mis_scaling_experiment,
    per_log_n,
    restart_experiment,
    synchronizer_experiment,
)


class TestAUScaling:
    @pytest.fixture(scope="class")
    def rows(self):
        return au_scaling_experiment(diameter_bounds=(1, 2), n=8, trials=2)

    def test_row_structure(self, rows):
        assert [row.params["D"] for row in rows] == [1, 2]
        for row in rows:
            assert row.rounds.count == 2
            assert row.extra["states"] == 12 * row.params["D"] + 6
            assert row.rounds.maximum <= row.extra["rounds_bound_k^3"]

    def test_slope_computable(self, rows):
        slope = au_scaling_slope(rows)
        assert 0.0 < slope < 3.5


class TestStaticTaskSweeps:
    def test_le_rows(self):
        rows = le_scaling_experiment(ns=(4, 8), diameter_bound=1, trials=2)
        assert [row.params["n"] for row in rows] == [4, 8]
        ratios = per_log_n(rows)
        assert len(ratios) == 2
        assert all(r > 0 for r in ratios)
        # State space must not vary with n.
        assert rows[0].extra["states"] == rows[1].extra["states"]

    def test_mis_rows(self):
        rows = mis_scaling_experiment(ns=(4, 8), diameter_bound=1, trials=2)
        assert [row.params["n"] for row in rows] == [4, 8]
        for row in rows:
            assert row.rounds.minimum > 0


class TestRestartExperiment:
    def test_rows(self):
        rows = restart_experiment(diameter_bounds=(1, 3), n=8, trials=5)
        assert [row.diameter_bound for row in rows] == [1, 3]
        for row in rows:
            assert row.all_concurrent
            assert row.exit_times.maximum <= row.bound_6d
        # Exit time grows with D.
        assert rows[1].exit_times.mean > rows[0].exit_times.mean


class TestSynchronizerExperiment:
    def test_mis_rows(self):
        rows = synchronizer_experiment(task="mis", ns=(6,), diameter_bound=1, trials=1)
        (row,) = rows
        assert row.task == "mis"
        assert row.product_states == row.inner_states**2 * 18  # 12·1+6
        assert row.sync_rounds.count == 1
        assert row.async_rounds.count == 1

    def test_le_rows(self):
        rows = synchronizer_experiment(task="le", ns=(6,), diameter_bound=1, trials=1)
        (row,) = rows
        assert row.task == "le"
        assert row.product_states == row.inner_states**2 * 18


class TestRecoveryExperiment:
    def test_always_recovers(self):
        row = au_fault_recovery_experiment(
            diameter_bound=1, n=8, bursts=2, fraction=0.25, trials=3
        )
        assert row.recovered == 3
        assert row.trials == 3
        assert row.recovery_rounds is not None
        assert row.recovery_rounds.count == 6  # bursts × trials
