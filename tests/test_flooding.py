"""The flooding primitives underlying the AlgLE/AlgMIS epochs."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    complete_graph,
    grid,
    path,
    ring,
    star,
)
from repro.model.execution import Execution
from repro.model.scheduler import SynchronousScheduler
from repro.tasks.flooding import (
    MinFlood,
    ORFlood,
    seeded_min_configuration,
    seeded_or_configuration,
)


def run_rounds(topology, algorithm, config, rounds, seed=0):
    execution = Execution(
        topology,
        algorithm,
        config,
        SynchronousScheduler(),
        rng=np.random.default_rng(seed),
    )
    execution.run(max_rounds=rounds)
    return execution.configuration


class TestORFlood:
    def test_radius_grows_one_hop_per_round(self):
        """The exact growth-rate fact the D+1-round epochs rely on."""
        topology = path(6)
        algorithm = ORFlood()
        config = seeded_or_configuration(topology, sources=[0])
        for rounds in range(6):
            result = run_rounds(topology, algorithm, config, rounds)
            for v in topology.nodes:
                expected = topology.distance(0, v) <= rounds
                assert result[v].accumulated == expected, (rounds, v)

    def test_diameter_rounds_reach_everyone(self):
        for topology in (ring(7), star(6), grid(3, 3), complete_graph(5)):
            algorithm = ORFlood()
            config = seeded_or_configuration(topology, sources=[2])
            result = run_rounds(topology, algorithm, config, topology.diameter)
            assert all(result[v].accumulated for v in topology.nodes)

    def test_no_sources_stays_zero(self):
        topology = ring(6)
        algorithm = ORFlood()
        config = seeded_or_configuration(topology, sources=[])
        result = run_rounds(topology, algorithm, config, 10)
        assert not any(result[v].accumulated for v in topology.nodes)

    def test_multiple_sources_union(self):
        topology = path(7)
        algorithm = ORFlood()
        config = seeded_or_configuration(topology, sources=[0, 6])
        result = run_rounds(topology, algorithm, config, 2)
        reached = {v for v in topology.nodes if result[v].accumulated}
        assert reached == {0, 1, 2, 4, 5, 6}

    def test_source_bits_never_change(self):
        topology = ring(5)
        algorithm = ORFlood()
        config = seeded_or_configuration(topology, sources=[1, 3])
        result = run_rounds(topology, algorithm, config, 8)
        for v in topology.nodes:
            assert result[v].source == (v in (1, 3))


class TestMinFlood:
    def test_min_propagates_at_unit_speed(self):
        topology = path(5)
        algorithm = MinFlood(bound=9)
        values = {0: 3, 1: 9, 2: 7, 3: 9, 4: 5}
        config = seeded_min_configuration(topology, values, 9)
        result = run_rounds(topology, algorithm, config, 2)
        # After 2 rounds each node holds the min over its 2-ball.
        for v in topology.nodes:
            ball = topology.ball(v, 2)
            assert result[v].minimum == min(values[u] for u in ball)

    def test_global_min_after_diameter_rounds(self):
        topology = grid(3, 4)
        rng = np.random.default_rng(0)
        values = {v: int(rng.integers(10)) for v in topology.nodes}
        algorithm = MinFlood(bound=9)
        config = seeded_min_configuration(topology, values, 9)
        result = run_rounds(topology, algorithm, config, topology.diameter)
        global_min = min(values.values())
        assert all(result[v].minimum == global_min for v in topology.nodes)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 1000),
    rounds=st.integers(0, 6),
)
def test_property_or_flood_equals_ball_or(seed, rounds):
    """accumulated(v) after r rounds == OR of sources over B(v, r)."""
    rng = np.random.default_rng(seed)
    topology = ring(8)
    sources = [v for v in topology.nodes if rng.random() < 0.3]
    algorithm = ORFlood()
    config = seeded_or_configuration(topology, sources)
    result = run_rounds(topology, algorithm, config, rounds, seed=seed)
    for v in topology.nodes:
        expected = any(u in set(sources) for u in topology.ball(v, rounds))
        assert result[v].accumulated == expected


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 1000), rounds=st.integers(0, 5))
def test_property_min_flood_equals_ball_min(seed, rounds):
    rng = np.random.default_rng(seed)
    topology = path(7)
    values = {v: int(rng.integers(8)) for v in topology.nodes}
    algorithm = MinFlood(bound=7)
    config = seeded_min_configuration(topology, values, 7)
    result = run_rounds(topology, algorithm, config, rounds, seed=seed)
    for v in topology.nodes:
        ball = topology.ball(v, rounds)
        assert result[v].minimum == min(values[u] for u in ball)
