"""Tests for the turn (state) structure of AlgAU."""

from __future__ import annotations

import pytest

from repro.core.levels import LevelSystem
from repro.core.turns import (
    Turn,
    TurnSystem,
    able,
    faulty,
    faulty_levels_sensed,
    levels_sensed,
)
from repro.model.errors import ModelError
from repro.model.signal import Signal


@pytest.fixture
def turns_d1() -> TurnSystem:
    return TurnSystem(LevelSystem(1))


class TestTurnBasics:
    def test_able_and_faulty_constructors(self):
        assert able(3) == Turn(3, False)
        assert faulty(-2) == Turn(-2, True)

    def test_string_notation(self):
        assert str(able(4)) == "4"
        assert str(faulty(4)) == "^4"
        assert str(faulty(-4)) == "^-4"

    def test_turns_hashable_and_comparable(self):
        assert able(2) == able(2)
        assert able(2) != faulty(2)
        assert len({able(1), able(1), faulty(2)}) == 2


class TestTurnSystem:
    def test_counts(self, turns_d1):
        # k = 5: able = 2k = 10, faulty = 2(k-1) = 8, total 18 = 12D + 6.
        assert len(turns_d1.able_turns) == 10
        assert len(turns_d1.faulty_turns) == 8
        assert turns_d1.size() == 18

    def test_size_formula_12d_plus_6(self):
        for d in range(1, 9):
            system = TurnSystem(LevelSystem(d))
            assert system.size() == 12 * d + 6

    def test_no_faulty_turn_at_level_one(self, turns_d1):
        assert not turns_d1.is_turn(faulty(1))
        assert not turns_d1.is_turn(faulty(-1))
        assert not turns_d1.has_faulty(1)
        assert turns_d1.has_faulty(2)

    def test_require_turn_rejects_foreign_levels(self, turns_d1):
        with pytest.raises(ModelError):
            turns_d1.require_turn(able(6))
        with pytest.raises(ModelError):
            turns_d1.require_turn(faulty(-1))

    def test_all_turns_is_union(self, turns_d1):
        assert set(turns_d1.all_turns) == set(turns_d1.able_turns) | set(
            turns_d1.faulty_turns
        )


class TestSignalHelpers:
    def test_levels_sensed(self):
        signal = Signal((able(3), faulty(3), able(-1)))
        assert levels_sensed(signal) == {3, -1}

    def test_faulty_levels_sensed(self):
        signal = Signal((able(3), faulty(3), faulty(-2)))
        assert faulty_levels_sensed(signal) == {3, -2}

    def test_empty_faulty(self):
        signal = Signal((able(1), able(2)))
        assert faulty_levels_sensed(signal) == frozenset()
