"""The greedy adaptive adversary and the trace/replay machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.trace import (
    ScheduleRecorder,
    TraceRecorder,
    load_trace,
    save_trace,
)
from repro.core.algau import ThinUnison
from repro.core.predicates import is_good_graph
from repro.core.turns import able
from repro.faults.injection import au_sign_split, random_configuration
from repro.graphs.generators import complete_graph, damaged_clique, ring
from repro.model.adversary import GreedyAdversary, greedy_au_adversary
from repro.model.configuration import Configuration
from repro.model.errors import ScheduleError
from repro.model.execution import Execution
from repro.model.scheduler import ShuffledRoundRobinScheduler


class TestGreedyAdversary:
    def test_requires_binding(self):
        adversary = GreedyAdversary(lambda config: 0.0)
        with pytest.raises(ScheduleError):
            adversary.activations(0, (0, 1), np.random.default_rng(0))

    def test_rebinding_to_another_execution_raises(self):
        rng = np.random.default_rng(0)
        alg = ThinUnison(1)
        adversary = greedy_au_adversary(alg)
        topology = ring(5)
        Execution(
            topology,
            alg,
            random_configuration(alg, topology, rng),
            adversary,
            rng=rng,
        )
        other = ring(7)
        with pytest.raises(ScheduleError, match="already bound"):
            Execution(
                other,
                alg,
                random_configuration(alg, other, rng),
                adversary,
                rng=rng,
            )

    def test_attach_is_removed_with_a_pointer_at_bind(self):
        rng = np.random.default_rng(0)
        alg = ThinUnison(1)
        topology = ring(5)
        adversary = greedy_au_adversary(alg)
        execution = Execution(
            topology,
            alg,
            random_configuration(alg, topology, rng),
            adversary,
            rng=rng,
        )
        with pytest.raises(AttributeError, match=r"removed.*bind\(\)"):
            adversary.attach(execution)
        execution.step()  # construction-time binding is fully functional

    def test_is_fair_one_node_per_step_round_structure(self):
        rng = np.random.default_rng(0)
        alg = ThinUnison(1)
        topology = ring(5)
        adversary = greedy_au_adversary(alg)
        execution = Execution(
            topology,
            alg,
            random_configuration(alg, topology, rng),
            adversary,  # binds itself at construction — no attach() call
            rng=rng,
        )
        activated = []
        for _ in range(15):  # three rounds of five
            record = execution.step()
            (v,) = record.activated
            activated.append(v)
        for start in range(0, 15, 5):
            assert sorted(activated[start : start + 5]) == list(topology.nodes)

    @pytest.mark.parametrize("seed", range(4))
    def test_algau_stabilizes_despite_greedy_adversary(self, seed):
        """Thm 1.1 quantifies over all fair schedules — including an
        adaptive one-step-lookahead adversary."""
        rng = np.random.default_rng(seed)
        alg = ThinUnison(2)
        topology = damaged_clique(8, 2, rng)
        adversary = greedy_au_adversary(alg)
        execution = Execution(
            topology,
            alg,
            au_sign_split(alg, topology, rng),
            adversary,
            rng=rng,
        )
        result = execution.run(
            max_rounds=(3 * 2 + 2) ** 3,
            until=lambda e: is_good_graph(alg, e.configuration),
        )
        assert result.stopped_by_predicate

    def test_greedy_adversary_slows_stabilization(self):
        """The adversary should be at least as slow as a benign
        schedule on average (it maximizes disorder)."""
        alg = ThinUnison(1)
        greedy_rounds = []
        benign_rounds = []
        for seed in range(5):
            rng = np.random.default_rng(seed)
            topology = complete_graph(6)
            initial = au_sign_split(alg, topology, rng)

            adversary = greedy_au_adversary(alg)
            execution = Execution(
                topology, alg, initial, adversary, rng=np.random.default_rng(seed)
            )
            execution.run(
                max_rounds=2000,
                until=lambda e: is_good_graph(alg, e.configuration),
            )
            greedy_rounds.append(execution.completed_rounds)

            execution = Execution(
                topology,
                alg,
                initial,
                ShuffledRoundRobinScheduler(),
                rng=np.random.default_rng(seed),
            )
            execution.run(
                max_rounds=2000,
                until=lambda e: is_good_graph(alg, e.configuration),
            )
            benign_rounds.append(execution.completed_rounds)
        assert np.mean(greedy_rounds) >= np.mean(benign_rounds) - 1


class TestTraceRecorder:
    def make_run(self, rounds=5):
        rng = np.random.default_rng(3)
        alg = ThinUnison(1)
        topology = ring(4)
        recorder = TraceRecorder()
        schedule = ScheduleRecorder()
        execution = Execution(
            topology,
            alg,
            Configuration.uniform(topology, able(1)),
            ShuffledRoundRobinScheduler(),
            rng=rng,
            monitors=(recorder, schedule),
        )
        execution.run(max_rounds=rounds)
        return alg, topology, recorder, schedule, execution

    def test_trace_records_steps_and_rounds(self):
        _, topology, recorder, _, execution = self.make_run()
        trace = recorder.trace
        assert trace is not None
        assert trace.n == topology.n
        assert trace.length == execution.t
        assert trace.rounds() == 5
        assert len(trace.initial) == topology.n

    def test_activation_counts_fair(self):
        _, topology, recorder, _, _ = self.make_run()
        counts = recorder.trace.activation_counts()
        assert set(counts) == set(topology.nodes)
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_changes_of_node(self):
        _, _, recorder, _, _ = self.make_run()
        changes = recorder.trace.changes_of(0)
        assert changes  # node 0 advanced at least once
        for t, old, new in changes:
            assert old != new

    def test_json_roundtrip(self, tmp_path):
        _, _, recorder, _, _ = self.make_run()
        path = str(tmp_path / "trace.json")
        save_trace(recorder.trace, path)
        loaded = load_trace(path)
        assert loaded.algorithm == recorder.trace.algorithm
        assert loaded.length == recorder.trace.length
        assert loaded.steps[0].activated == recorder.trace.steps[0].activated
        assert loaded.final == recorder.trace.final

    def test_schedule_replay_reproduces_deterministic_run(self):
        """Replaying a recorded schedule on the deterministic AlgAU
        reproduces the exact final configuration."""
        alg, topology, recorder, schedule, execution = self.make_run()
        replay = Execution(
            topology,
            alg,
            Configuration.uniform(topology, able(1)),
            schedule.as_scheduler(),
            rng=np.random.default_rng(999),  # rng is irrelevant: δ is pure
        )
        replay.run(max_steps=execution.t)
        assert replay.configuration == execution.configuration
