"""Differential validation of the replica-batched ensemble engine.

Two contracts are pinned down:

* the R = 1 engine path — ``create_execution(engine="replica-batch")``
  — must be bit-identical to the object-model reference step for step
  across graph × scheduler × fault-plan combos (mirroring
  ``tests/test_array_engine_equivalence.py``; fault plans include the
  storm injector and the permanent-fault adversaries that poke and mask
  between steps);
* the R > 1 ensemble path — :meth:`ReplicaBatchExecution.from_replicas`
  + :meth:`run_ensemble` — must produce, per replica, exactly the
  outcome the per-scenario array path measures from the same seed:
  same stabilization verdict, same paper-unit rounds, same step count,
  same final code vector, and the same post-run rng stream position (no
  stream aliasing across replicas).

The engine-name registry agreement test also lives here: the CLI
``choices=`` lists, the campaign spec validation, and the
``UnknownEngineError`` message must all enumerate the single
``ENGINE_FACTORIES`` registry.
"""

from __future__ import annotations

import argparse
import itertools
import re

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algau import ThinUnison
from repro.faults.injection import TransientFaultInjector, random_configuration
from repro.graphs.generators import (
    damaged_clique,
    dumbbell,
    random_connected,
    ring,
    star,
)
from repro.model.array_engine import ArrayExecution
from repro.model.engine import ENGINE_FACTORIES, ENGINE_NAMES, create_execution
from repro.model.errors import ModelError, UnknownEngineError
from repro.model.execution import Execution
from repro.model.replica_engine import (
    ReplicaBatchExecution,
    ReplicaSpec,
)
from repro.model.scheduler import (
    EnabledOnlyScheduler,
    LaggardScheduler,
    RandomSubsetScheduler,
    RoundRobinScheduler,
    ShuffledRoundRobinScheduler,
    SynchronousScheduler,
)

# ----------------------------------------------------------------------
# R = 1: the engine path behind create_execution.
# ----------------------------------------------------------------------

GRAPHS = {
    "ring9": lambda seed: ring(9),
    "damaged10": lambda seed: damaged_clique(10, 2, np.random.default_rng(seed)),
    "star7": lambda seed: star(7),
    "dumbbell": lambda seed: dumbbell(4, 2),
    "gnp12": lambda seed: random_connected(12, 0.35, np.random.default_rng(seed)),
}

SCHEDULERS = {
    "sync": SynchronousScheduler,
    "round-robin": RoundRobinScheduler,
    "shuffled-rr": ShuffledRoundRobinScheduler,
    "random-subset": lambda: RandomSubsetScheduler(0.4),
    "laggard": lambda: LaggardScheduler(victim=1, period=5),
}

#: Fault plans cover every way state mutates outside the fused step:
#: the storm injector (configuration replacement), Byzantine strategies
#: (per-step pokes + masking), crash-stop, and ``none`` as the control.
FAULT_KINDS = ("none", "storm", "byz-frozen", "byz-oscillating", "crash")

CASES = [
    (graph, sched, FAULT_KINDS[i % len(FAULT_KINDS)], 5000 + 13 * i)
    for i, (graph, sched) in enumerate(
        itertools.product(sorted(GRAPHS), sorted(SCHEDULERS))
    )
]


def _make_one(topology, initial, sched_key, fault_kind, seed, engine):
    from repro.resilience.adversary import PermanentFaultAdversary
    from repro.resilience.strategies import Crash, make_strategy

    algorithm = ThinUnison(2)
    intervention = None
    if fault_kind == "storm":
        intervention = TransientFaultInjector(
            algorithm,
            times=(3, 9, 21),
            fraction=0.3,
            rng=np.random.default_rng(seed + 2),
        )
    elif fault_kind.startswith("byz-") or fault_kind == "crash":
        if fault_kind == "crash":
            strategy = Crash(at=7)
        else:
            strategy = make_strategy(fault_kind[len("byz-") :])
        intervention = PermanentFaultAdversary(
            strategy,
            (1, topology.n - 2),
            rng=np.random.default_rng(seed + 2),
        )
    return create_execution(
        topology,
        algorithm,
        initial,
        SCHEDULERS[sched_key](),
        rng=np.random.default_rng(seed + 3),
        intervention=intervention,
        engine=engine,
    )


class TestSingleReplicaEnginePath:
    """``engine="replica-batch"`` with one replica is an array engine
    through the whole ExecutionBase contract."""

    @pytest.mark.parametrize(
        "graph_key, sched_key, fault_kind, seed",
        CASES,
        ids=[f"{g}-{s}-{f}" for g, s, f, _ in CASES],
    )
    def test_step_for_step_equivalence(self, graph_key, sched_key, fault_kind, seed):
        topology = GRAPHS[graph_key](seed)
        initial = random_configuration(
            ThinUnison(2), topology, np.random.default_rng(seed + 1)
        )
        reference = _make_one(topology, initial, sched_key, fault_kind, seed, "object")
        batched = _make_one(
            topology, initial, sched_key, fault_kind, seed, "replica-batch"
        )
        assert isinstance(reference, Execution)
        assert isinstance(batched, ReplicaBatchExecution)
        assert batched.replica_count == 1
        for step in range(40):
            ref_record = reference.step()
            rep_record = batched.step()
            assert rep_record.t == ref_record.t
            assert rep_record.activated == ref_record.activated, step
            assert set(rep_record.changed) == set(ref_record.changed), step
            assert rep_record.completed_round == ref_record.completed_round
            assert batched.graph_is_good() == reference.graph_is_good(), step
            assert batched.enabled_count() == reference.enabled_count(), step
        assert batched.configuration == reference.configuration
        assert batched.masked_nodes == reference.masked_nodes

    def test_create_execution_builds_the_replica_engine(self):
        topology = ring(6)
        algorithm = ThinUnison(2)
        initial = random_configuration(algorithm, topology, np.random.default_rng(0))
        execution = create_execution(
            topology,
            algorithm,
            initial,
            SynchronousScheduler(),
            rng=np.random.default_rng(1),
            engine="replica-batch",
        )
        assert isinstance(execution, ReplicaBatchExecution)
        assert isinstance(execution, ArrayExecution)  # inherits the contract
        assert execution.codes_matrix.shape == (1, 6)
        assert execution.replica_graph_is_good(0) == execution.graph_is_good()
        with pytest.raises(ModelError):
            execution.run_ensemble(max_rounds=1)
        with pytest.raises(ModelError):
            execution.replica_codes(1)


# ----------------------------------------------------------------------
# R > 1: the fused ensemble vs per-scenario solo runs.
# ----------------------------------------------------------------------


def _solo_outcome(algorithm, family, sched_factory, seed, max_rounds, engine="array"):
    """The per-scenario measurement (`runner._run_au`, fault-free
    branch) from one seed: rng → graph sample → random start →
    run-until-good."""
    rng = np.random.default_rng(seed)
    topology = family(rng)
    initial = random_configuration(algorithm, topology, rng)
    execution = create_execution(
        topology,
        algorithm,
        initial,
        sched_factory(),
        rng=rng,
        engine=engine,
    )
    run = execution.run(max_rounds=max_rounds, until=lambda e: e.graph_is_good())
    if run.stopped_by_predicate:
        at_boundary = execution.t == execution.rounds.boundaries[-1]
        rounds = execution.completed_rounds + (0 if at_boundary else 1)
        stabilized = True
    else:
        rounds = execution.completed_rounds
        stabilized = False
    codes = (
        execution.codes
        if isinstance(execution, ArrayExecution)
        else algorithm.encoding.encode_configuration(execution.configuration)
    )
    return stabilized, rounds, execution.t, codes, rng


def _ensemble(algorithm, family, sched_factory, seeds):
    specs = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        topology = family(rng)
        initial = random_configuration(algorithm, topology, rng)
        specs.append(ReplicaSpec(topology, initial, sched_factory(), rng))
    return ReplicaBatchExecution.from_replicas(algorithm, specs), specs


FAMILIES = {
    "ring9": lambda rng: ring(9),
    "damaged10": lambda rng: damaged_clique(10, 2, rng, damage=0.4),
    "gnp12": lambda rng: random_connected(12, 0.35, rng),
}

ENSEMBLE_CASES = list(itertools.product(sorted(FAMILIES), sorted(SCHEDULERS)))


class TestEnsembleDifferential:
    """Per-replica ensemble outcomes are bit-identical to solo runs —
    the property the campaign batching relies on."""

    @pytest.mark.parametrize(
        "family_key, sched_key",
        ENSEMBLE_CASES,
        ids=[f"{g}-{s}" for g, s in ENSEMBLE_CASES],
    )
    def test_matches_per_scenario_array_runs(self, family_key, sched_key):
        algorithm = ThinUnison(2)
        family = FAMILIES[family_key]
        sched_factory = SCHEDULERS[sched_key]
        seeds = [9000 + 7 * i for i in range(5)]
        batch, _ = _ensemble(algorithm, family, sched_factory, seeds)
        assert batch.replica_count == len(seeds)
        outcomes = batch.run_ensemble(max_rounds=4000)
        for i, (seed, outcome) in enumerate(zip(seeds, outcomes)):
            stabilized, rounds, steps, codes, _ = _solo_outcome(
                algorithm, family, sched_factory, seed, 4000
            )
            assert outcome.stabilized == stabilized, (family_key, sched_key, i)
            assert outcome.rounds == rounds, (family_key, sched_key, i)
            assert outcome.steps == steps, (family_key, sched_key, i)
            assert np.array_equal(batch.replica_codes(i), codes)
            assert batch.replica_graph_is_good(i) == stabilized

    def test_round_budget_exhaustion_matches_solo_runs(self):
        """Replicas retired by the budget report the same completed
        rounds (and codes) a solo run stopped by ``max_rounds`` would."""
        algorithm = ThinUnison(2)
        family = FAMILIES["damaged10"]
        seeds = [41, 42, 43]
        batch, _ = _ensemble(algorithm, family, ShuffledRoundRobinScheduler, seeds)
        outcomes = batch.run_ensemble(max_rounds=2)
        for i, (seed, outcome) in enumerate(zip(seeds, outcomes)):
            stabilized, rounds, steps, codes, _ = _solo_outcome(
                algorithm, family, ShuffledRoundRobinScheduler, seed, 2
            )
            assert outcome.stabilized == stabilized
            assert outcome.rounds == rounds
            assert outcome.steps == steps
            assert np.array_equal(batch.replica_codes(i), codes)

    def test_replicas_retire_independently(self):
        """Stabilized replicas drop out of the hot loop while
        stragglers keep stepping: step counts must differ across an
        ensemble whose seeds stabilize at different times."""
        algorithm = ThinUnison(2)
        seeds = [1000 + i for i in range(6)]
        batch, _ = _ensemble(
            algorithm, FAMILIES["damaged10"], ShuffledRoundRobinScheduler, seeds
        )
        outcomes = batch.run_ensemble(max_rounds=4000)
        assert all(o.stabilized for o in outcomes)
        assert len({o.steps for o in outcomes}) > 1

    def test_codes_matrix_shape_and_step_guard(self):
        algorithm = ThinUnison(2)
        batch, _ = _ensemble(
            algorithm, FAMILIES["ring9"], SynchronousScheduler, [1, 2, 3]
        )
        assert batch.codes_matrix.shape == (3, 9)
        with pytest.raises(ModelError):
            batch.step()  # ensembles are driven by run_ensemble only

    def test_enabled_aware_schedulers_are_rejected(self):
        algorithm = ThinUnison(2)
        rng = np.random.default_rng(0)
        topology = ring(9)
        initial = random_configuration(algorithm, topology, rng)
        with pytest.raises(ModelError, match="enabled view"):
            ReplicaBatchExecution.from_replicas(
                algorithm,
                [ReplicaSpec(topology, initial, EnabledOnlyScheduler(), rng)],
            )


# ----------------------------------------------------------------------
# Per-replica rng streams (no aliasing; deterministic=False included).
# ----------------------------------------------------------------------


class TestReplicaRngStreams:
    @settings(max_examples=12, deadline=None)
    @given(
        campaign_seed=st.integers(min_value=0, max_value=2**31 - 1),
        replicas=st.integers(min_value=2, max_value=5),
        deterministic=st.booleans(),
    )
    def test_streams_match_per_scenario_generators(
        self, campaign_seed, replicas, deterministic
    ):
        """Property: replica ``i`` of a batch consumes exactly the
        stream ``np.random.default_rng(seed_i)`` that a solo scenario
        run would consume — same draws during graph sampling, start
        construction and scheduling, and the same generator position
        afterwards (so the streams neither alias nor drift).  The
        ``deterministic=False`` flag (which disables the object
        engine's pending-action cache) must not perturb the streams
        either."""
        from repro.campaigns.registry import derive_seed

        algorithm = ThinUnison(2)
        algorithm.deterministic = deterministic
        seeds = [derive_seed(campaign_seed, i) for i in range(replicas)]
        assert len(set(seeds)) == replicas  # SeedSequence derivation
        family = FAMILIES["damaged10"]
        batch, specs = _ensemble(algorithm, family, ShuffledRoundRobinScheduler, seeds)
        outcomes = batch.run_ensemble(max_rounds=200)
        for i, seed in enumerate(seeds):
            stabilized, rounds, steps, codes, solo_rng = _solo_outcome(
                algorithm,
                family,
                ShuffledRoundRobinScheduler,
                seed,
                200,
                engine="object",
            )
            assert outcomes[i].stabilized == stabilized
            assert outcomes[i].rounds == rounds
            assert outcomes[i].steps == steps
            assert np.array_equal(batch.replica_codes(i), codes)
            # The generators sit at the same stream position: their
            # next draws coincide (and differ across replicas below).
            assert np.array_equal(specs[i].rng.random(3), solo_rng.random(3))
        follow_ups = [tuple(spec.rng.random(2)) for spec in specs]
        assert len(set(follow_ups)) == replicas  # no aliasing


# ----------------------------------------------------------------------
# Engine-name plumbing: one registry feeds every layer.
# ----------------------------------------------------------------------


def _cli_engine_choices(which: str):
    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    command = subparsers.choices[which]
    engine_action = next(a for a in command._actions if a.dest == "engine")
    return tuple(engine_action.choices)


class TestEngineRegistryAgreement:
    """CLI ``choices=``, spec validation, and the UnknownEngineError
    message must enumerate identical engine sets — all derived from
    ``ENGINE_FACTORIES``."""

    def test_registry_is_the_single_source(self):
        from repro.model.engine import ENGINE_DESCRIPTIONS

        assert ENGINE_NAMES == tuple(ENGINE_FACTORIES)
        assert "replica-batch" in ENGINE_NAMES
        assert set(ENGINE_DESCRIPTIONS) == set(ENGINE_FACTORIES)
        for name in ENGINE_NAMES:
            cls = ENGINE_FACTORIES[name]()
            assert isinstance(cls, type)

    @pytest.mark.parametrize("command", ["au", "experiment"])
    def test_cli_choices_match_registry(self, command):
        assert _cli_engine_choices(command) == ENGINE_NAMES

    def test_spec_validation_matches_registry(self):
        from repro.campaigns.spec import Scenario

        def scenario(engine):
            return Scenario(
                campaign="t",
                index=0,
                task="au",
                graph="complete",
                graph_params=(("n", 6),),
                diameter_bound=1,
                scheduler="synchronous",
                engine=engine,
                start="random",
                seed=0,
                max_rounds=10,
            )

        for name in ENGINE_NAMES:
            assert scenario(name).engine == name
        with pytest.raises(ValueError) as excinfo:
            scenario("simd")
        for name in ENGINE_NAMES:
            assert name in str(excinfo.value)

    def test_error_message_enumerates_the_registry(self):
        topology = ring(6)
        algorithm = ThinUnison(1)
        initial = random_configuration(algorithm, topology, np.random.default_rng(0))
        with pytest.raises(UnknownEngineError) as excinfo:
            create_execution(
                topology, algorithm, initial, SynchronousScheduler(), engine="simd"
            )
        quoted = set(re.findall(r"'([a-z-]+)'", str(excinfo.value)))
        assert set(ENGINE_NAMES) <= quoted

    def test_every_engine_name_constructs_an_execution(self):
        topology = ring(6)
        algorithm = ThinUnison(1)
        initial = random_configuration(algorithm, topology, np.random.default_rng(0))
        for name in ENGINE_NAMES:
            execution = create_execution(
                topology,
                algorithm,
                initial,
                SynchronousScheduler(),
                rng=np.random.default_rng(1),
                engine=name,
            )
            execution.step()
