"""The synchronizer transformer — Corollary 1.2."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stabilization import measure_static_task_stabilization
from repro.core.turns import able, faulty
from repro.faults.injection import random_configuration, uniform_configuration
from repro.graphs.generators import complete_graph, damaged_clique, ring
from repro.model.execution import Execution
from repro.model.scheduler import (
    LaggardScheduler,
    RandomSubsetScheduler,
    ShuffledRoundRobinScheduler,
)
from repro.model.signal import Signal
from repro.sync.pulses import PulseMonitor
from repro.sync.synchronizer import Synchronizer, SyncState
from repro.tasks.le import AlgLE
from repro.tasks.mis import AlgMIS
from repro.tasks.restart import StandaloneRestart
from repro.tasks.spec import check_le_output, check_mis_output


class TestProductStructure:
    def test_state_space_formula(self):
        inner = AlgMIS(2)
        sync = Synchronizer(inner, 2)
        q = inner.state_space_size()
        # |Q*| = |Q|^2 * (4k - 2) with k = 3*2 + 2 = 8.
        assert sync.state_space_size() == q * q * 30

    def test_output_states(self):
        inner = AlgMIS(1)
        sync = Synchronizer(inner, 1)
        q_in = inner.initial_state()
        decided = type(q_in)(
            membership="I",
            flag=False,
            step=0,
            parity=0,
            candidate=False,
            coin=False,
            tid=1,
        )
        assert sync.is_output_state(SyncState(decided, q_in, able(1)))
        assert not sync.is_output_state(SyncState(decided, q_in, faulty(2)))
        assert not sync.is_output_state(SyncState(q_in, q_in, able(1)))
        assert sync.output(SyncState(decided, q_in, able(1))) == 1

    def test_initial_state(self):
        inner = AlgLE(1)
        sync = Synchronizer(inner, 1)
        s0 = sync.initial_state()
        assert s0.current == inner.initial_state()
        assert s0.turn == sync.unison.initial_state()


class TestSimulationMechanics:
    def test_no_pulse_without_aa(self):
        """While the AU layer repairs itself, the inner state freezes."""
        inner = StandaloneRestart(1)  # any simple inner algorithm
        sync = Synchronizer(inner, 1)
        q = inner.initial_state()
        me = SyncState(q, q, able(3))
        neighbor = SyncState(q, q, able(5))  # non-adjacent: AF fires
        result = sync.delta(me, Signal((me, neighbor)))
        assert result.turn == faulty(3)
        assert result.current == q and result.previous == q

    def test_pulse_advances_inner_state(self):
        """An AA transition runs one simulated round of Π."""
        inner = AlgLE(1)
        sync = Synchronizer(inner, 1)
        q0 = inner.initial_state()  # r = 0: epoch start, tosses coins
        me = SyncState(q0, q0, able(1))
        result = sync.delta(me, Signal((me,)))
        # The AU layer advances 1 -> 2 and Π tosses its epoch coins.
        support = result.support if hasattr(result, "support") else {result}
        assert all(s.turn == able(2) for s in support)
        assert all(s.previous == q0 for s in support)
        assert all(s.current.r == 1 for s in support)

    def test_simulated_signal_uses_current_of_same_pulse(self):
        """A neighbor at the same clock contributes its current state; a
        neighbor one pulse ahead contributes its previous state."""
        inner = StandaloneRestart(2)
        sync = Synchronizer(inner, 2)
        idle = inner.initial_state()
        from repro.tasks.restart import RestartState

        behind_partner = SyncState(RestartState(0), idle, able(1))
        ahead_partner = SyncState(idle, RestartState(0), able(2))
        me = SyncState(idle, idle, able(1))
        # Same-pulse neighbor exposes σ(0): rule 1 pulls us in.
        result = sync.delta(me, Signal((me, behind_partner)))
        assert result.current == RestartState(0)
        # One-ahead neighbor exposes its previous σ(0): same effect.
        result = sync.delta(me, Signal((me, ahead_partner)))
        assert result.current == RestartState(0)

    def test_pulse_advanced_detector(self):
        inner = StandaloneRestart(1)
        sync = Synchronizer(inner, 1)
        q = inner.initial_state()
        old = SyncState(q, q, able(1))
        new = SyncState(q, q, able(2))
        assert sync.pulse_advanced(old, new)
        assert not sync.pulse_advanced(old, SyncState(q, q, faulty(2)))


@pytest.mark.parametrize(
    "scheduler_factory",
    [
        ShuffledRoundRobinScheduler,
        lambda: RandomSubsetScheduler(0.4),
        lambda: LaggardScheduler(victim=0, period=5),
    ],
    ids=["shuffled", "random-subset", "laggard"],
)
class TestEndToEndAsynchronous:
    def test_mis_stabilizes(self, scheduler_factory):
        rng = np.random.default_rng(21)
        topology = damaged_clique(9, 2, rng)
        inner = AlgMIS(2)
        sync = Synchronizer(inner, 2)
        result = measure_static_task_stabilization(
            sync,
            topology,
            random_configuration(sync, topology, rng),
            scheduler_factory(),
            rng,
            lambda out: check_mis_output(topology, out).valid,
            max_rounds=150_000,
            confirm_rounds=40,
        )
        assert result.stabilized, result.detail

    def test_le_stabilizes(self, scheduler_factory):
        rng = np.random.default_rng(22)
        topology = complete_graph(8)
        inner = AlgLE(1)
        sync = Synchronizer(inner, 1)
        result = measure_static_task_stabilization(
            sync,
            topology,
            random_configuration(sync, topology, rng),
            scheduler_factory(),
            rng,
            lambda out: check_le_output(out).valid,
            max_rounds=150_000,
            confirm_rounds=40,
        )
        assert result.stabilized, result.detail


class TestPulseMonitor:
    def test_pulse_counts_stay_within_one_neighborhood_gap(self):
        """Post-AU-stabilization, neighboring pulse counters differ by
        at most ... they track the AU clocks, whose neighborhood gap is
        1; globally the spread is bounded by the diameter."""
        rng = np.random.default_rng(23)
        topology = ring(6)
        inner = AlgLE(3)
        sync = Synchronizer(inner, 3)
        monitor = PulseMonitor(sync)
        execution = Execution(
            topology,
            sync,
            uniform_configuration(sync, topology),
            ShuffledRoundRobinScheduler(),
            rng=rng,
            monitors=(monitor,),
        )
        execution.run(max_rounds=60)
        assert monitor.max_pulses() > 0
        assert monitor.max_pulses() - monitor.min_pulses() <= topology.diameter + 1
        assert monitor.first_good_round is not None
