"""Deeper quantitative checks of individual lemmas from Sec. 2.3 and
Sec. 3 — beyond the closure properties of test_algau_observations.py,
these validate the *bounds* the lemmas state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algau import ThinUnison, TransitionType
from repro.core.predicates import (
    is_level_out_protected,
    is_out_protected_graph,
    is_protected_graph,
)
from repro.core.turns import able, faulty
from repro.faults.injection import random_configuration, uniform_configuration
from repro.graphs.generators import complete_graph, path, ring
from repro.graphs.topology import topology_from_edges
from repro.model.configuration import Configuration
from repro.model.execution import Execution
from repro.model.scheduler import RoundRobinScheduler, SynchronousScheduler
from repro.tasks.le import AlgLE
from repro.tasks.spec import check_le_output


class TestLemma212Bound:
    """Lem 2.12: in an ℓ-out-protected graph, a node in turn ℓ̂
    experiences FA before ϱ^{2(k−|ℓ|)+1}; under a synchronous schedule
    that is 2(k−|ℓ|)+1 rounds."""

    @pytest.mark.parametrize("start_level", [2, 3, 4, 5])
    def test_fa_within_bound_on_chain(self, start_level):
        """A descending chain of faulty turns — the worst relay case the
        induction handles."""
        # Path with node i at faulty level start_level + i (as far as
        # the level cap allows).
        alg = ThinUnison(1)  # k = 5
        k = alg.levels.k
        chain_length = min(3, k - start_level + 1)
        topology = topology_from_edges(
            [(i, i + 1) for i in range(chain_length - 1)]
        ) if chain_length > 1 else None
        if topology is None:
            pytest.skip("degenerate chain")
        states = {i: faulty(start_level + i) for i in range(chain_length)}
        config = Configuration(topology, states)
        assert is_out_protected_graph(alg, config)
        execution = Execution(
            topology,
            alg,
            config,
            SynchronousScheduler(),
            rng=np.random.default_rng(0),
        )
        bound = 2 * (k - start_level) + 1
        fa_time = None
        for t in range(bound + 1):
            record = execution.step()
            for v, old, new in record.changed:
                if v == 0 and alg.classify_change(old, new) is TransitionType.FA:
                    fa_time = record.t + 1
                    break
            if fa_time is not None:
                break
        assert fa_time is not None, "node 0 never performed FA"
        assert fa_time <= bound

    def test_extreme_faulty_exits_in_one_round(self):
        """The induction base: k̂ performs FA on its first activation."""
        alg = ThinUnison(1)
        topology = ring(4)
        config = Configuration.uniform(topology, faulty(alg.levels.k))
        execution = Execution(
            topology,
            alg,
            config,
            SynchronousScheduler(),
            rng=np.random.default_rng(0),
        )
        execution.step()
        assert all(
            execution.configuration[v] == able(alg.levels.k - 1)
            for v in topology.nodes
        )


class TestLemma219Meeting:
    """Lem 2.19: the endpoints of a non-protected edge (different signs
    after out-protection) move inwards until they meet at {-1, 1}."""

    def test_two_nodes_meet_at_the_center(self):
        alg = ThinUnison(1)
        topology = path(2)
        config = Configuration(topology, {0: able(4), 1: able(-4)})
        execution = Execution(
            topology,
            alg,
            config,
            SynchronousScheduler(),
            rng=np.random.default_rng(0),
        )
        k = alg.levels.k
        budget = k * (k - 1) + 2  # the z = k(k-1) bound of the lemma
        met = False
        for _ in range(budget):
            execution.step()
            levels = {execution.configuration[v].level for v in topology.nodes}
            if levels <= {-1, 1} and all(
                execution.configuration[v].able for v in topology.nodes
            ):
                met = True
                break
        assert met, "the torn edge never met at {-1, 1}"


class TestLemma220Expansion:
    """Lem 2.20-flavored check: a node that climbs from level 1 to
    2D + 2 certifies a protected graph."""

    def test_climb_certifies_protection(self):
        alg = ThinUnison(1)  # D = 1, 2D + 2 = 4
        topology = ring(4)
        rng = np.random.default_rng(5)
        execution = Execution(
            topology,
            alg,
            random_configuration(alg, topology, rng),
            SynchronousScheduler(),
            rng=rng,
        )
        # Track node 0 passing level 1 and later reaching 2D + 2 = 4.
        seen_one_at = None
        for _ in range(3000):
            execution.step()
            level = execution.configuration[0].level
            if level == 1 and execution.configuration[0].able:
                seen_one_at = execution.t
            if (seen_one_at is not None and level == 2 * alg.levels.diameter_bound + 2):
                assert is_protected_graph(alg, execution.configuration)
                return
        pytest.skip("trajectory never exhibited the 1 -> 2D+2 climb")


class TestCorollary215Ordering:
    """Cor 2.15 via Lem 2.14: out-protection is acquired from the
    outermost levels inwards — once the graph is ψ+1(ℓ)-out-protected
    it later becomes ℓ-out-protected, and the extreme levels are
    vacuously out-protected from the start."""

    def test_extreme_levels_vacuously_out_protected(self):
        alg = ThinUnison(1)
        topology = ring(5)
        rng = np.random.default_rng(0)
        config = random_configuration(alg, topology, rng)
        k = alg.levels.k
        for level in (k, -k, k - 1, -(k - 1)):
            assert is_level_out_protected(alg, config, level)

    def test_out_protection_cascade(self):
        alg = ThinUnison(1)
        topology = ring(6)
        rng = np.random.default_rng(3)
        execution = Execution(
            topology,
            alg,
            random_configuration(alg, topology, rng),
            RoundRobinScheduler(),
            rng=rng,
        )
        k = alg.levels.k
        acquisition = {}
        for t in range(6 * 500):
            for level in range(1, k + 1):
                for signed in (level, -level):
                    if signed not in acquisition and is_level_out_protected(
                        alg, execution.configuration, signed
                    ):
                        acquisition[signed] = t
            if is_out_protected_graph(alg, execution.configuration):
                break
            execution.step()
        # Once acquired, ℓ-out-protection is never lost, so acquisition
        # times going inwards must be monotone (outer before inner) on
        # each sign.
        for sign in (1, -1):
            times = [
                acquisition[sign * magnitude]
                for magnitude in range(k, 0, -1)
                if sign * magnitude in acquisition
            ]
            assert times == sorted(times)


class TestElectFairness:
    """On a vertex-transitive graph every node should win leadership
    with roughly equal frequency — anonymity means no node is special."""

    def test_leader_distribution_on_clique(self):
        topology = complete_graph(5)
        alg = AlgLE(1)
        wins = {v: 0 for v in topology.nodes}
        trials = 40
        for seed in range(trials):
            rng = np.random.default_rng(seed)
            execution = Execution(
                topology,
                alg,
                uniform_configuration(alg, topology),
                SynchronousScheduler(),
                rng=rng,
            )

            def elected(e):
                config = e.configuration
                return config.is_output_configuration(
                    alg
                ) and check_le_output(config.output_vector(alg)).valid

            result = execution.run(max_rounds=30_000, until=elected)
            assert result.stopped_by_predicate
            outputs = execution.configuration.output_vector(alg)
            (leader,) = [v for v, bit in enumerate(outputs) if bit == 1]
            wins[leader] += 1
        # Every node wins at least once over 40 trials (expected 8 each).
        assert all(count > 0 for count in wins.values()), wins
        assert max(wins.values()) <= trials // 2  # no dominant node


class TestRoundOperatorDefinition:
    """The ϱ operator against its set-theoretic definition, on random
    activation sequences (property-style brute force)."""

    @pytest.mark.parametrize("seed", range(10))
    def test_boundaries_match_brute_force(self, seed):
        from repro.model.rounds import RoundTracker

        rng = np.random.default_rng(seed)
        nodes = tuple(range(5))
        steps = []
        tracker = RoundTracker(nodes)
        for _ in range(60):
            size = int(rng.integers(1, 5))
            activated = tuple(rng.choice(nodes, size=size, replace=False).tolist())
            steps.append(frozenset(activated))
            tracker.observe(activated)

        # Brute force: R(0) = 0; R(i+1) = earliest time r such that every
        # node appears in steps[R(i) : r].
        boundaries = [0]
        while True:
            start = boundaries[-1]
            seen = set()
            nxt = None
            for r in range(start, len(steps)):
                seen |= steps[r]
                if seen == set(nodes):
                    nxt = r + 1
                    break
            if nxt is None:
                break
            boundaries.append(nxt)
        assert tuple(boundaries) == tracker.boundaries
