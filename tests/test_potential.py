"""The proof-ladder progress metrics (repro.core.potential)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algau import ThinUnison
from repro.core.potential import (
    Stage,
    disorder_potential,
    progress_report,
    stage_timeline_is_monotone,
)
from repro.core.turns import able, faulty
from repro.faults.injection import (
    au_adversarial_suite,
    random_configuration,
)
from repro.graphs.generators import damaged_clique, path, ring
from repro.model.configuration import Configuration
from repro.model.execution import Execution
from repro.model.scheduler import (
    ShuffledRoundRobinScheduler,
    SynchronousScheduler,
)


class TestProgressReport:
    def test_good_graph_is_stage_good(self):
        alg = ThinUnison(1)
        topology = ring(5)
        config = Configuration.uniform(topology, able(2))
        report = progress_report(alg, config)
        assert report.stage is Stage.GOOD
        assert report.good_nodes == 5
        assert report.faulty_nodes == 0
        assert report.max_edge_gap == 0
        assert report.protected_graph

    def test_torn_graph_is_arbitrary(self):
        alg = ThinUnison(1)
        topology = path(2)
        config = Configuration(topology, {0: able(1), 1: able(4)})
        report = progress_report(alg, config)
        # Node 0 senses level 4 = ψ+3(1): strictly outwards by >= 2.
        assert report.stage is Stage.ARBITRARY
        assert report.unprotected_edges == 1
        assert report.max_edge_gap == 3

    def test_opposite_signs_are_out_protected(self):
        alg = ThinUnison(1)
        topology = path(2)
        config = Configuration(topology, {0: able(3), 1: able(-3)})
        report = progress_report(alg, config)
        # Different signs: no Ψ≫ violation; nothing faulty; justified.
        assert report.stage is Stage.JUSTIFIED
        assert report.unprotected_edges == 1

    def test_unjustified_faulty_detected(self):
        alg = ThinUnison(1)
        topology = path(2)
        # ^3 next to an adjacent able 3: protected, no inward faulty
        # neighbor -> unjustifiably faulty.
        config = Configuration(topology, {0: faulty(3), 1: able(3)})
        report = progress_report(alg, config)
        assert report.unjustified_nodes == 1
        assert report.stage is Stage.OUT_PROTECTED

    def test_disorder_potential_zero_iff_good(self):
        alg = ThinUnison(1)
        topology = ring(4)
        good = Configuration.uniform(topology, able(1))
        assert disorder_potential(alg, good) == 0
        bad = good.replace({0: faulty(3)})
        assert disorder_potential(alg, bad) > 0

    def test_str_mentions_stage(self):
        alg = ThinUnison(1)
        config = Configuration.uniform(ring(4), able(1))
        assert "GOOD" in str(progress_report(alg, config))


class TestLadderMonotonicity:
    """The stage index never decreases along an execution — the closure
    lemmas of the proof, checked end to end."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize(
        "scheduler_factory",
        [SynchronousScheduler, ShuffledRoundRobinScheduler],
        ids=["sync", "async"],
    )
    def test_stages_monotone_on_random_runs(self, seed, scheduler_factory):
        rng = np.random.default_rng(seed)
        alg = ThinUnison(2)
        topology = damaged_clique(8, 2, rng)
        execution = Execution(
            topology,
            alg,
            random_configuration(alg, topology, rng),
            scheduler_factory(),
            rng=rng,
        )
        stages = [progress_report(alg, execution.configuration).stage]
        for _ in range(300):
            execution.step()
            stages.append(progress_report(alg, execution.configuration).stage)
            if stages[-1] is Stage.GOOD:
                break
        assert stage_timeline_is_monotone(stages), stages

    @pytest.mark.parametrize("name", ["sign-split", "all-faulty", "clock-tear"])
    def test_stages_monotone_from_adversarial_starts(self, name):
        rng = np.random.default_rng(11)
        alg = ThinUnison(1)
        topology = ring(6)
        initial = au_adversarial_suite(alg, topology, rng)[name]
        execution = Execution(topology, alg, initial, SynchronousScheduler(), rng=rng)
        stages = [progress_report(alg, execution.configuration).stage]
        for _ in range(400):
            execution.step()
            stages.append(progress_report(alg, execution.configuration).stage)
            if stages[-1] is Stage.GOOD:
                break
        assert stage_timeline_is_monotone(stages), stages
        assert stages[-1] is Stage.GOOD

    def test_monotonicity_checker_rejects_regression(self):
        assert not stage_timeline_is_monotone([Stage.JUSTIFIED, Stage.OUT_PROTECTED])
        assert stage_timeline_is_monotone(
            [Stage.ARBITRARY, Stage.ARBITRARY, Stage.GOOD]
        )
