"""AlgMIS — Theorem 1.4: synchronous self-stabilizing MIS."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stabilization import measure_static_task_stabilization
from repro.faults.injection import random_configuration, uniform_configuration
from repro.graphs.biological import proneural_cluster
from repro.graphs.generators import complete_graph, damaged_clique, ring, star
from repro.graphs.topology import single_node_topology
from repro.model.execution import Execution
from repro.model.scheduler import SynchronousScheduler
from repro.model.signal import Signal
from repro.tasks.mis import IN, OUT, UNDECIDED, AlgMIS, MISState
from repro.tasks.restart import RestartState
from repro.tasks.spec import check_mis_output


def stabilize_mis(topology, d, seed, max_rounds=60_000, from_random=True):
    alg = AlgMIS(d)
    rng = np.random.default_rng(seed)
    initial = (
        random_configuration(alg, topology, rng)
        if from_random
        else uniform_configuration(alg, topology)
    )
    result = measure_static_task_stabilization(
        alg,
        topology,
        initial,
        SynchronousScheduler(),
        rng,
        lambda out: check_mis_output(topology, out).valid,
        max_rounds=max_rounds,
        confirm_rounds=10 * (d + 3),
    )
    assert result.stabilized, result.detail
    return result


def mk(
    membership=UNDECIDED,
    flag=False,
    step=0,
    parity=0,
    candidate=False,
    coin=False,
    tid=None,
):
    return MISState(membership, flag, step, parity, candidate, coin, tid)


class TestUnitTransitions:
    @pytest.fixture
    def alg(self) -> AlgMIS:
        return AlgMIS(2)  # steps 0..4

    def test_initial_state(self, alg):
        q0 = alg.initial_state()
        assert q0.membership == UNDECIDED
        assert q0.flag and q0.candidate
        assert q0.step == 0 and q0.parity == 0

    def test_step_gap_triggers_restart(self, alg):
        mine = mk(step=0)
        other = mk(step=2)
        assert alg.delta(mine, Signal((mine, other))) == RestartState(0)

    def test_out_without_in_neighbor_restarts(self, alg):
        mine = mk(membership=OUT)
        other = mk(membership=UNDECIDED)
        assert alg.delta(mine, Signal((mine, other))) == RestartState(0)

    def test_out_with_in_neighbor_survives(self, alg):
        mine = mk(membership=OUT)
        other = mk(membership=IN, tid=3)
        result = alg.delta(mine, Signal((mine, other)))
        assert not isinstance(result, RestartState)

    def test_adjacent_in_nodes_with_distinct_tids_restart(self, alg):
        mine = mk(membership=IN, tid=2)
        other = mk(membership=IN, tid=5)
        assert alg.delta(mine, Signal((mine, other))) == RestartState(0)

    def test_adjacent_in_nodes_same_full_state_undetected(self, alg):
        """Set-broadcast blindness: identical states mask each other —
        detection must wait for the tids to diverge (whp next round)."""
        mine = mk(membership=IN, tid=4)
        result = alg.delta(mine, Signal((mine,)))
        assert not isinstance(result, RestartState)

    def test_flag_toss_probability(self, alg):
        mine = mk(flag=True, candidate=True, step=0, parity=1)
        dist = alg.delta(mine, Signal((mine,)))
        p_reset = sum(
            w
            for outcome, w in zip(dist.outcomes, dist.weights)
            if not outcome.flag
        )
        assert p_reset == pytest.approx(alg.p0)

    def test_step_follows_min_plus_one(self, alg):
        mine = mk(flag=False, step=2)
        other = mk(flag=False, step=1)
        new = alg.delta(mine, Signal((mine, other)))
        assert new.step == 2  # min(1, 2) + 1

    def test_step_waits_for_flagged_neighbors(self, alg):
        mine = mk(flag=False, step=1)
        other = mk(flag=True, step=0)
        new = alg.delta(mine, Signal((mine, other)))
        assert new.step == 1  # min is 0 -> 0 + 1

    def test_coin_toss_on_even_parity(self, alg):
        mine = mk(candidate=True, parity=0, flag=False, step=1)
        dist = alg.delta(mine, Signal((mine,)))
        coins = {s.coin for s in dist.support}
        assert coins == {False, True}
        assert all(s.parity == 1 for s in dist.support)

    def test_elimination_on_odd_parity(self, alg):
        mine = mk(candidate=True, parity=1, coin=False, flag=False, step=1)
        rival = mk(candidate=True, parity=1, coin=True, flag=False, step=1)
        new = alg.delta(mine, Signal((mine, rival)))
        assert not new.candidate
        assert new.parity == 0

    def test_winner_keeps_candidacy(self, alg):
        mine = mk(candidate=True, parity=1, coin=True, flag=False, step=1)
        rival = mk(candidate=True, parity=1, coin=True, flag=False, step=1)
        new = alg.delta(mine, Signal((mine, rival)))
        assert new.candidate

    def test_decided_neighbors_coins_do_not_eliminate(self, alg):
        mine = mk(candidate=True, parity=1, coin=False, flag=False, step=1)
        decided = mk(membership=OUT, coin=True, parity=1, flag=False, step=1)
        inn = mk(membership=IN, tid=1, coin=True, parity=1, flag=False, step=1)
        new = alg.delta(mine, Signal((mine, decided)))
        assert new.candidate  # OUT coins don't count

    def test_surviving_candidate_joins_in_at_step_d_plus_1(self, alg):
        d = alg.diameter_bound
        mine = mk(candidate=True, flag=False, step=d, parity=1)
        others = mk(candidate=False, flag=False, step=d, parity=1)
        result = alg.delta(mine, Signal((mine, others)))
        support = result.support if hasattr(result, "support") else {result}
        assert all(s.membership == IN for s in support)
        assert all(s.step == d + 1 for s in support)
        assert all(s.tid is not None for s in support)

    def test_non_candidate_does_not_join(self, alg):
        d = alg.diameter_bound
        mine = mk(candidate=False, flag=False, step=d)
        new = alg.delta(mine, Signal((mine,)))
        assert new.membership == UNDECIDED
        assert new.step == d + 1

    def test_undecided_joins_out_on_sensing_in(self, alg):
        mine = mk(candidate=True, flag=False, step=1)
        winner = mk(membership=IN, tid=2, flag=False, step=1)
        new = alg.delta(mine, Signal((mine, winner)))
        assert new.membership == OUT
        assert not new.candidate

    def test_phase_boundary_resets(self, alg):
        d = alg.diameter_bound
        mine = mk(membership=OUT, flag=False, step=d + 2, parity=1)
        neigh = mk(membership=IN, tid=1, flag=False, step=d + 2, parity=1)
        new = alg.delta(mine, Signal((mine, neigh)))
        assert new.step == 0
        assert new.flag
        assert new.parity == 0
        assert not new.candidate  # decided nodes stop competing

    def test_phase_boundary_recandidates_undecided(self, alg):
        d = alg.diameter_bound
        mine = mk(membership=UNDECIDED, flag=False, step=d + 2)
        new = alg.delta(mine, Signal((mine,)))
        assert new.candidate
        assert new.step == 0

    def test_in_node_redraws_tid_every_round(self, alg):
        mine = mk(membership=IN, tid=3, flag=False, step=1)
        dist = alg.delta(mine, Signal((mine,)))
        tids = {s.tid for s in dist.support}
        assert tids == set(range(1, alg.k_id + 1))

    def test_outputs(self, alg):
        assert alg.output(mk(membership=IN, tid=1)) == 1
        assert alg.output(mk(membership=OUT)) == 0
        assert not alg.is_output_state(mk(membership=UNDECIDED))
        assert not alg.is_output_state(RestartState(2))

    def test_state_space_linear_in_d(self):
        sizes = [AlgMIS(d).state_space_size() for d in (1, 2, 4, 8)]
        diffs = [b - a for a, b in zip(sizes, sizes[1:])]
        ratios = [
            diff / (db - da)
            for diff, (da, db) in zip(diffs, [(1, 2), (2, 4), (4, 8)])
        ]
        assert ratios[0] == ratios[1] == ratios[2]


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(4))
    def test_complete_graph(self, seed):
        stabilize_mis(complete_graph(8), 1, seed)

    @pytest.mark.parametrize("seed", range(3))
    def test_damaged_clique_d2(self, seed):
        rng = np.random.default_rng(seed + 60)
        stabilize_mis(damaged_clique(10, 2, rng), 2, seed)

    def test_star_center_or_leaves(self):
        topology = star(8)
        result = stabilize_mis(topology, 2, seed=7)
        assert result.stabilized

    def test_ring_d4(self):
        stabilize_mis(ring(8), 4, seed=2)

    def test_proneural_cluster(self):
        topology = proneural_cluster(3, 3)
        stabilize_mis(topology, topology.diameter, seed=3)

    def test_single_node_joins_in(self):
        topology = single_node_topology()
        alg = AlgMIS(1)
        rng = np.random.default_rng(4)
        execution = Execution(
            topology,
            alg,
            uniform_configuration(alg, topology),
            SynchronousScheduler(),
            rng=rng,
        )
        execution.run(
            max_rounds=5000,
            until=lambda e: e.configuration.is_output_configuration(alg),
        )
        assert alg.output(execution.configuration[0]) == 1

    def test_mis_stays_fixed_after_stabilization(self):
        topology = complete_graph(7)
        alg = AlgMIS(1)
        rng = np.random.default_rng(5)
        execution = Execution(
            topology,
            alg,
            uniform_configuration(alg, topology),
            SynchronousScheduler(),
            rng=rng,
        )

        def stable(e):
            c = e.configuration
            return c.is_output_configuration(alg) and check_mis_output(
                topology, c.output_vector(alg)
            ).valid

        result = execution.run(max_rounds=30_000, until=stable)
        assert result.stopped_by_predicate
        vector = execution.configuration.output_vector(alg)
        execution.run_rounds(300)
        assert execution.configuration.output_vector(alg) == vector

    def test_in_nodes_never_revert_without_restart(self):
        """Decided memberships only change through Restart."""
        topology = complete_graph(6)
        alg = AlgMIS(1)
        rng = np.random.default_rng(6)
        execution = Execution(
            topology,
            alg,
            uniform_configuration(alg, topology),
            SynchronousScheduler(),
            rng=rng,
        )
        for _ in range(600):
            record = execution.step()
            for node, old, new in record.changed:
                if isinstance(old, MISState) and isinstance(new, MISState):
                    if old.membership in (IN, OUT):
                        assert new.membership == old.membership


class TestCompeteDistribution:
    """Property (1) of Compete: a node beats any set W of rivals with
    probability Ω(1/(|W|+1)) — exercised via the all-survivor phase
    statistics on a clique, where exactly one node should usually win.
    """

    def test_exactly_one_winner_usually(self):
        topology = complete_graph(6)
        alg = AlgMIS(1)
        winners_per_run = []
        for seed in range(30):
            rng = np.random.default_rng(seed)
            execution = Execution(
                topology,
                alg,
                uniform_configuration(alg, topology),
                SynchronousScheduler(),
                rng=rng,
            )
            execution.run(
                max_rounds=4000,
                until=lambda e: any(
                    isinstance(e.configuration[v], MISState)
                    and e.configuration[v].membership == IN
                    for v in topology.nodes
                ),
            )
            winners = [
                v
                for v in topology.nodes
                if isinstance(execution.configuration[v], MISState)
                and execution.configuration[v].membership == IN
            ]
            winners_per_run.append(tuple(winners))
        # On a clique a valid MIS has exactly one IN node; coin-sequence
        # ties are possible (they trigger DetectMIS + Restart later) but
        # a clear majority of phases must end with a single winner.
        single = sum(1 for w in winners_per_run if len(w) == 1)
        assert single >= 20
        # And the winner position varies across seeds (fairness).
        distinct_winners = {w[0] for w in winners_per_run if len(w) == 1}
        assert len(distinct_winners) >= 3
