"""Task specifications and output verifiers (repro.tasks.spec)."""

from __future__ import annotations

import pytest

from repro.core.clock import CyclicClock
from repro.graphs.generators import complete_graph, path, ring, star
from repro.model.errors import ModelError
from repro.tasks.spec import (
    check_au_liveness_counts,
    check_au_safety,
    check_au_update_is_pulse,
    check_le_output,
    check_mis_output,
    greedy_mis,
)


class TestCyclicClock:
    def test_arithmetic(self):
        clock = CyclicClock(10)
        assert clock.plus(9) == 0
        assert clock.minus(0) == 9
        assert clock.plus(3, 4) == 7

    def test_distance_and_adjacency(self):
        clock = CyclicClock(10)
        assert clock.distance(0, 9) == 1
        assert clock.distance(2, 7) == 5
        assert clock.adjacent(0, 9)
        assert not clock.adjacent(0, 2)

    def test_increment_is_plus_one(self):
        clock = CyclicClock(10)
        assert clock.increment_is_plus_one(9, 0)
        assert not clock.increment_is_plus_one(0, 9)
        assert not clock.increment_is_plus_one(3, 5)

    def test_order_validation(self):
        with pytest.raises(ModelError):
            CyclicClock(1)


class TestAUSafety:
    def test_adjacent_clocks_pass(self):
        topology = path(3)
        group = CyclicClock(10)
        assert check_au_safety(topology, [4, 5, 5], group).valid

    def test_wraparound_adjacency_passes(self):
        topology = path(2)
        group = CyclicClock(10)
        assert check_au_safety(topology, [9, 0], group).valid

    def test_gap_fails(self):
        topology = path(2)
        group = CyclicClock(10)
        verdict = check_au_safety(topology, [3, 5], group)
        assert not verdict.valid
        assert "violates safety" in verdict.reason

    def test_missing_output_fails(self):
        topology = path(2)
        group = CyclicClock(10)
        assert not check_au_safety(topology, [3, None], group).valid

    def test_update_is_pulse(self):
        group = CyclicClock(10)
        assert check_au_update_is_pulse(group, 3, 4).valid
        assert check_au_update_is_pulse(group, 3, 3).valid
        assert check_au_update_is_pulse(group, 9, 0).valid
        assert not check_au_update_is_pulse(group, 3, 5).valid
        assert not check_au_update_is_pulse(group, 3, 2).valid

    def test_liveness_counts(self):
        assert check_au_liveness_counts([5, 6, 7], 8, diameter=3).valid
        verdict = check_au_liveness_counts([5, 4, 7], 8, diameter=3)
        assert not verdict.valid
        assert "node 1" in verdict.reason
        # Windows shorter than the diameter are vacuous.
        assert check_au_liveness_counts([0, 0], 2, diameter=3).valid


class TestLEVerifier:
    def test_exactly_one_leader(self):
        assert check_le_output([0, 1, 0]).valid

    def test_zero_leaders(self):
        assert not check_le_output([0, 0, 0]).valid

    def test_two_leaders(self):
        verdict = check_le_output([1, 0, 1])
        assert not verdict.valid
        assert "[0, 2]" in verdict.reason

    def test_missing_output(self):
        assert not check_le_output([1, None, 0]).valid

    def test_non_binary_output(self):
        assert not check_le_output([1, 2, 0]).valid


class TestMISVerifier:
    def test_valid_mis_on_path(self):
        topology = path(4)  # 0-1-2-3
        assert check_mis_output(topology, [1, 0, 1, 0]).valid
        assert check_mis_output(topology, [0, 1, 0, 1]).valid

    def test_adjacent_members_fail(self):
        topology = path(3)
        verdict = check_mis_output(topology, [1, 1, 0])
        assert not verdict.valid
        assert "both in MIS" in verdict.reason

    def test_non_maximal_fails(self):
        topology = path(4)
        verdict = check_mis_output(topology, [1, 0, 0, 0])
        assert not verdict.valid
        assert "not maximal" in verdict.reason

    def test_missing_output_fails(self):
        topology = path(2)
        assert not check_mis_output(topology, [1, None]).valid

    def test_star_center_alone_is_valid(self):
        topology = star(6)
        center_only = [1] + [0] * 5
        assert check_mis_output(topology, center_only).valid
        leaves_only = [0] + [1] * 5
        assert check_mis_output(topology, leaves_only).valid

    def test_clique_needs_exactly_one(self):
        topology = complete_graph(4)
        assert check_mis_output(topology, [0, 0, 1, 0]).valid
        assert not check_mis_output(topology, [0, 0, 0, 0]).valid
        assert not check_mis_output(topology, [1, 0, 1, 0]).valid


class TestGreedyOracle:
    @pytest.mark.parametrize(
        "topology_factory",
        [lambda: path(7), lambda: ring(8), lambda: complete_graph(5), lambda: star(6)],
    )
    def test_greedy_mis_is_valid(self, topology_factory):
        topology = topology_factory()
        chosen = greedy_mis(topology)
        outputs = [1 if v in chosen else 0 for v in topology.nodes]
        assert check_mis_output(topology, outputs).valid

    def test_greedy_respects_order(self):
        topology = path(3)
        assert greedy_mis(topology, order=[1, 0, 2]) == {1}
        assert greedy_mis(topology, order=[0, 1, 2]) == {0, 2}
