"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algau import ThinUnison
from repro.graphs.generators import (
    complete_graph,
    damaged_clique,
    dumbbell,
    path,
    ring,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


@pytest.fixture
def k6() -> object:
    """The complete graph on 6 nodes (D = 1)."""
    return complete_graph(6)


@pytest.fixture
def small_clique_d2(rng) -> object:
    """A damaged clique with diameter <= 2."""
    return damaged_clique(10, 2, rng)


@pytest.fixture
def ring8() -> object:
    return ring(8)


@pytest.fixture
def path5() -> object:
    return path(5)


@pytest.fixture
def dumbbell_d4() -> object:
    return dumbbell(4, 2)


@pytest.fixture
def au_d1() -> ThinUnison:
    return ThinUnison(1)


@pytest.fixture
def au_d2() -> ThinUnison:
    return ThinUnison(2)


@pytest.fixture
def au_d4() -> ThinUnison:
    return ThinUnison(4)


def pytest_configure(config) -> None:
    """Register the ``timeout`` marker when pytest-timeout is absent.

    CI installs pytest-timeout (see requirements.txt), which enforces
    the per-test budgets on the asyncio net-runtime tests; on bare
    local environments the marker degrades to a registered no-op so
    ``-W error::pytest.PytestUnknownMarkWarning`` runs stay clean.
    """
    if not config.pluginmanager.hasplugin("timeout"):
        config.addinivalue_line(
            "markers",
            "timeout(seconds): per-test wall-clock budget "
            "(enforced by pytest-timeout when installed)",
        )
