"""The Appendix-A failed reset-based AU and the Figure-2 live-lock."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.failed_reset_au import (
    FailedResetUnison,
    MainTurn,
    ResetTurn,
    livelock_witness,
    rotate_configuration,
)
from repro.core.algau import ThinUnison
from repro.core.predicates import is_good_graph
from repro.faults.injection import random_configuration
from repro.model.configuration import Configuration
from repro.model.errors import ModelError
from repro.model.execution import Execution
from repro.model.scheduler import RotatingScheduler, SynchronousScheduler
from repro.model.signal import Signal


class TestTransitionRules:
    @pytest.fixture
    def alg(self) -> FailedResetUnison:
        return FailedResetUnison(2, c=2)  # turns 0..4, resets R0..R4

    def test_st1_advances(self, alg):
        state = MainTurn(1)
        assert alg.delta(state, Signal((state, MainTurn(2)))) == MainTurn(2)
        assert alg.delta(state, Signal((state,))) == MainTurn(2)

    def test_st1_wraps(self, alg):
        state = MainTurn(4)
        assert alg.delta(state, Signal((state, MainTurn(0)))) == MainTurn(0)

    def test_st1_blocked_by_predecessor(self, alg):
        state = MainTurn(2)
        assert alg.delta(state, Signal((state, MainTurn(1)))) == state

    def test_st2_resets_on_gap(self, alg):
        state = MainTurn(1)
        assert alg.delta(state, Signal((state, MainTurn(3)))) == ResetTurn(0)

    def test_st2_resets_on_reset_neighbor(self, alg):
        state = MainTurn(2)
        assert alg.delta(state, Signal((state, ResetTurn(1)))) == ResetTurn(0)

    def test_st2_zero_tolerates_top_reset(self, alg):
        state = MainTurn(0)
        # Turn 0 tolerates R_{cD} (the wave is about to release).
        assert alg.delta(state, Signal((state, ResetTurn(4)))) == state
        # ...but not other reset turns.
        assert alg.delta(state, Signal((state, ResetTurn(0)))) == ResetTurn(0)

    def test_st3_advances_wave(self, alg):
        state = ResetTurn(1)
        signal = Signal((state, ResetTurn(2), ResetTurn(4)))
        assert alg.delta(state, signal) == ResetTurn(2)

    def test_st3_blocked_by_lower_reset(self, alg):
        state = ResetTurn(3)
        assert alg.delta(state, Signal((state, ResetTurn(1)))) == state

    def test_st3_blocked_by_main_turn(self, alg):
        state = ResetTurn(1)
        assert alg.delta(state, Signal((state, MainTurn(2)))) == state

    def test_st3_exit(self, alg):
        state = ResetTurn(4)
        assert alg.delta(state, Signal((state, MainTurn(0)))) == MainTurn(0)
        assert alg.delta(state, Signal((state,))) == MainTurn(0)

    def test_st3_exit_blocked_by_other_main(self, alg):
        state = ResetTurn(4)
        assert alg.delta(state, Signal((state, MainTurn(1)))) == state

    def test_state_space(self, alg):
        assert alg.state_space_size() == 10
        assert len(alg.states()) == 10

    def test_outputs(self, alg):
        assert alg.is_output_state(MainTurn(3))
        assert not alg.is_output_state(ResetTurn(3))
        assert alg.output(MainTurn(3)) == 3
        with pytest.raises(ModelError):
            alg.output(ResetTurn(0))

    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            FailedResetUnison(0)
        with pytest.raises(ModelError):
            FailedResetUnison(2, c=1)


class TestFigure2Livelock:
    """The paper's counterexample, verified mechanically."""

    @pytest.mark.parametrize("d,c", [(2, 2), (2, 3), (3, 2), (4, 2)])
    def test_one_round_rotates_configuration(self, d, c):
        witness = livelock_witness(d, c)
        rng = np.random.default_rng(0)
        execution = Execution(
            witness.topology,
            witness.algorithm,
            witness.initial,
            witness.scheduler,
            rng=rng,
        )
        n = witness.topology.n
        for _ in range(n):
            execution.step()
        assert execution.configuration == rotate_configuration(witness.initial, 1)

    def test_livelock_has_full_period(self):
        """After n rounds the configuration returns exactly to the
        start — the execution is periodic and never stabilizes."""
        witness = livelock_witness(2, 2)
        rng = np.random.default_rng(0)
        execution = Execution(
            witness.topology,
            witness.algorithm,
            witness.initial,
            witness.scheduler,
            rng=rng,
        )
        n = witness.topology.n
        for _ in range(n * n):
            execution.step()
        assert execution.configuration == witness.initial

    def test_schedule_is_fair(self):
        """The adversary activates every node exactly once per round."""
        witness = livelock_witness(2, 2)
        rng = np.random.default_rng(0)
        n = witness.topology.n
        for round_index in range(3):
            activated = []
            for position in range(n):
                t = round_index * n + position
                (v,) = witness.scheduler.activations(t, witness.topology.nodes, rng)
                activated.append(v)
            assert sorted(activated) == list(witness.topology.nodes)

    def test_turn_multiset_matches_figure(self):
        """[0, 0, R0, R1, ..., R_{cD}, R_{cD}] around the 8-ring."""
        witness = livelock_witness(2, 2)
        turns = [witness.initial[v] for v in witness.topology.nodes]
        mains = [t for t in turns if isinstance(t, MainTurn)]
        resets = [t for t in turns if isinstance(t, ResetTurn)]
        assert len(mains) == 2 and all(t.value == 0 for t in mains)
        assert sorted(t.index for t in resets) == [0, 1, 2, 3, 4, 4]

    def test_transition_multiset_per_round(self):
        """Per round: one ST2 entry, one exit, four wave advances, two
        nodes unchanged — the paper's claims up to node renaming."""
        witness = livelock_witness(2, 2)
        rng = np.random.default_rng(0)
        execution = Execution(
            witness.topology,
            witness.algorithm,
            witness.initial,
            witness.scheduler,
            rng=rng,
        )
        n = witness.topology.n
        st2 = st3_wave = exits = unchanged = 0
        for _ in range(n):
            record = execution.step()
            if not record.changed:
                unchanged += 1
                continue
            ((node, old, new),) = record.changed
            if isinstance(old, MainTurn) and isinstance(new, ResetTurn):
                st2 += 1
            elif isinstance(old, ResetTurn) and isinstance(new, ResetTurn):
                st3_wave += 1
            elif isinstance(old, ResetTurn) and isinstance(new, MainTurn):
                exits += 1
        assert st2 == 1
        assert exits == 1
        assert st3_wave == 4
        assert unchanged == 2

    def test_same_instance_algau_stabilizes(self):
        """Contrast: AlgAU under the *same* rotating adversary on the
        same ring stabilizes (Thm 1.1 holds for any fair schedule)."""
        witness = livelock_witness(2, 2)
        topology = witness.topology
        rng = np.random.default_rng(1)
        alg = ThinUnison(topology.diameter)
        scheduler = RotatingScheduler(witness.base_order, shift=witness.shift)
        execution = Execution(
            topology,
            alg,
            random_configuration(alg, topology, rng),
            scheduler,
            rng=rng,
        )
        result = execution.run(
            max_rounds=50_000,
            until=lambda e: is_good_graph(alg, e.configuration),
        )
        assert result.stopped_by_predicate


class TestFailedAlgorithmSometimesWorks:
    """The failed design is not *always* wrong — from a uniform start
    under a synchronous schedule it behaves like a unison.  The flaw is
    the adversarial live-lock, not everyday operation."""

    def test_uniform_start_advances(self):
        alg = FailedResetUnison(2, c=2)
        from repro.graphs.generators import ring

        topology = ring(8)
        rng = np.random.default_rng(2)
        execution = Execution(
            topology,
            alg,
            Configuration.uniform(topology, MainTurn(0)),
            SynchronousScheduler(),
            rng=rng,
        )
        execution.run(max_rounds=10)
        assert all(
            isinstance(execution.configuration[v], MainTurn)
            for v in topology.nodes
        )
        assert execution.configuration[0] == MainTurn(10 % 5)
