"""Table 1 — the transition types of AlgAU, tested row by row.

Every guard condition of the paper's Table 1 is exercised positively and
negatively, including the boundary levels (±1, ±k) and the interplay of
the AA/AF/FA guards.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algau import ThinUnison, TransitionType
from repro.core.turns import able, faulty
from repro.model.signal import Signal


@pytest.fixture
def alg() -> ThinUnison:
    return ThinUnison(1)  # k = 5


def classify(alg, state, *others):
    return alg.classify(state, Signal((state, *others)))


def successor(alg, state, *others):
    return alg.successor(state, Signal((state, *others)))


class TestTypeAA:
    """Row 1: ℓ̄ → φ+1(ℓ) iff good and Λ ⊆ {ℓ, φ+1(ℓ)}."""

    def test_alone_advances(self, alg):
        assert classify(alg, able(2)) is TransitionType.AA
        assert successor(alg, able(2)) == able(3)

    def test_with_equal_neighbors_advances(self, alg):
        assert classify(alg, able(2), able(2)) is TransitionType.AA

    def test_with_forward_neighbor_advances(self, alg):
        assert successor(alg, able(2), able(3)) == able(3)

    def test_minus_one_advances_to_one(self, alg):
        assert successor(alg, able(-1), able(1)) == able(1)

    def test_k_wraps_to_minus_k(self, alg):
        assert successor(alg, able(5), able(-5)) == able(-5)

    def test_blocked_by_backward_neighbor(self, alg):
        # A neighbor one step behind is adjacent (protected) but outside
        # {ℓ, φ+1(ℓ)} — the node must wait for it.
        assert classify(alg, able(3), able(2)) is TransitionType.STAY

    def test_blocked_by_faulty_neighbor(self, alg):
        # Sensing any faulty turn destroys goodness.
        assert classify(alg, able(3), faulty(3)) is not TransitionType.AA

    def test_blocked_by_faulty_even_at_level_one(self, alg):
        # Level ±1 has no AF escape, so it must simply wait.
        assert classify(alg, able(1), faulty(2)) is TransitionType.STAY

    def test_not_good_when_unprotected(self, alg):
        assert classify(alg, able(3), able(5)) is not TransitionType.AA


class TestTypeAF:
    """Row 2: ℓ̄ → ℓ̂ iff not protected or senses ψ-1(ℓ)̂ (|ℓ| ≥ 2)."""

    def test_unprotected_goes_faulty(self, alg):
        assert classify(alg, able(3), able(5)) is TransitionType.AF
        assert successor(alg, able(3), able(5)) == faulty(3)

    def test_unprotected_by_opposite_sign(self, alg):
        assert classify(alg, able(3), able(-3)) is TransitionType.AF

    def test_senses_inward_faulty_goes_faulty(self, alg):
        # ψ-1(3) = 2; sensing 2̂ triggers the cautious AF rule.
        assert classify(alg, able(3), able(3), faulty(2)) is TransitionType.AF

    def test_inward_faulty_must_be_exactly_one_unit(self, alg):
        # 4̂ is not ψ-1(3)̂ = 2̂... sensing ^4 at level 3: the faulty
        # level 4 is *outwards*; levels 3 and 4 are adjacent so the node
        # stays protected and must not take the detour.
        assert classify(alg, able(3), faulty(4)) is TransitionType.STAY

    def test_level_one_never_goes_faulty(self, alg):
        # There is no ±1 faulty turn; an unprotected ±1 node waits.
        assert classify(alg, able(1), able(3)) is TransitionType.STAY
        assert classify(alg, able(-1), able(-4)) is TransitionType.STAY

    def test_wraparound_pair_is_protected(self, alg):
        # Levels k and -k are adjacent (φ(k) = -k): no AF.
        assert classify(alg, able(5), able(-5)) is TransitionType.AA

    def test_af_beats_nothing_when_good(self, alg):
        assert classify(alg, able(2), able(2), able(3)) is TransitionType.AA

    def test_ablation_disables_cautious_rule(self):
        ablated = ThinUnison(1, cautious_af=False)
        # The relay trigger is off...
        assert (classify(ablated, able(3), faulty(2)) is TransitionType.STAY)
        # ...but the protection trigger still works.
        assert classify(ablated, able(3), able(5)) is TransitionType.AF


class TestTypeFA:
    """Row 3: ℓ̂ → ψ-1(ℓ) iff Λ ∩ Ψ>(ℓ) = ∅."""

    def test_returns_one_unit_inwards(self, alg):
        assert classify(alg, faulty(3)) is TransitionType.FA
        assert successor(alg, faulty(3)) == able(2)

    def test_level_two_returns_to_one(self, alg):
        assert successor(alg, faulty(2)) == able(1)
        assert successor(alg, faulty(-2)) == able(-1)

    def test_extreme_level_always_returns(self, alg):
        # Ψ>(±k) = ∅, so ±k̂ exits on the next activation (Lem 2.12 base).
        assert classify(alg, faulty(5), able(5), able(-5), faulty(4)) is (
            TransitionType.FA
        )
        assert successor(alg, faulty(5)) == able(4)

    def test_blocked_by_outward_level(self, alg):
        assert classify(alg, faulty(3), able(4)) is TransitionType.STAY
        assert classify(alg, faulty(3), faulty(5)) is TransitionType.STAY

    def test_not_blocked_by_opposite_sign(self, alg):
        assert classify(alg, faulty(3), able(-5)) is TransitionType.FA

    def test_not_blocked_by_inward_level(self, alg):
        assert classify(alg, faulty(3), able(2), able(1)) is TransitionType.FA


class TestDeltaCoherence:
    """δ is a deterministic function consistent with classify()."""

    def test_delta_returns_single_state(self, alg):
        for turn in alg.turns.all_turns:
            result = alg.delta(turn, Signal((turn,)))
            assert result in alg.states()

    def test_classify_change_roundtrip(self, alg):
        for turn in alg.turns.all_turns:
            for other in alg.turns.all_turns:
                signal = Signal((turn, other))
                kind = alg.classify(turn, signal)
                new = alg.successor(turn, signal)
                assert alg.classify_change(turn, new) == kind

    def test_output_states_are_able_turns(self, alg):
        assert alg.output_states() == frozenset(alg.turns.able_turns)

    def test_output_is_clock_value(self, alg):
        for turn in alg.turns.able_turns:
            assert alg.output(turn) == alg.levels.clock_value(turn.level)

    def test_state_space_size(self):
        for d in (1, 2, 3, 7):
            assert ThinUnison(d).state_space_size() == 12 * d + 6


@settings(max_examples=300)
@given(d=st.integers(1, 5), data=st.data())
def test_property_guards_are_mutually_exclusive(d, data):
    """For any (state, signal), exactly one transition type applies."""
    alg = ThinUnison(d)
    turns = alg.turns.all_turns
    state = data.draw(st.sampled_from(turns))
    others = data.draw(st.sets(st.sampled_from(turns), max_size=5))
    signal = Signal({state} | others)
    kind = alg.classify(state, signal)
    new = alg.successor(state, signal)
    if kind is TransitionType.AA:
        assert new.able and new.level == alg.levels.forward(state.level)
        # AA requires goodness: protected and no faulty sensed.
        assert not any(t.faulty for t in signal)
    elif kind is TransitionType.AF:
        assert new == type(new)(state.level, True)
        assert state.able and abs(state.level) >= 2
    elif kind is TransitionType.FA:
        assert new.able and abs(new.level) == abs(state.level) - 1
        assert state.faulty
    else:
        assert new == state


@settings(max_examples=300)
@given(d=st.integers(1, 5), data=st.data())
def test_property_delta_stays_in_state_space(d, data):
    alg = ThinUnison(d)
    turns = alg.turns.all_turns
    state = data.draw(st.sampled_from(turns))
    others = data.draw(st.sets(st.sampled_from(turns), max_size=6))
    new = alg.successor(state, Signal({state} | others))
    assert alg.turns.is_turn(new)
