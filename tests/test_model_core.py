"""Tests for the stone age model substrate: signals, distributions,
configurations and the algorithm interface."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algau import ThinUnison
from repro.core.turns import able, faulty
from repro.graphs.generators import path, ring
from repro.model.algorithm import Distribution, product_distribution
from repro.model.configuration import Configuration
from repro.model.errors import ConfigurationError, ModelError
from repro.model.signal import Signal


class TestSignal:
    def test_senses_membership(self):
        signal = Signal((able(1), faulty(2)))
        assert signal.senses(able(1))
        assert not signal.senses(able(2))
        assert able(1) in signal

    def test_deduplication(self):
        signal = Signal((able(1), able(1), able(2)))
        assert len(signal) == 2

    def test_senses_any_and_matching(self):
        signal = Signal((able(1), faulty(2), faulty(3)))
        assert signal.senses_any(lambda t: t.faulty)
        assert signal.matching(lambda t: t.faulty) == {faulty(2), faulty(3)}

    def test_senses_only(self):
        signal = Signal((able(1), able(2)))
        assert signal.senses_only({able(1), able(2), able(3)})
        assert not signal.senses_only({able(1)})

    def test_equality_and_hash(self):
        a = Signal((able(1), able(2)))
        b = Signal((able(2), able(1)))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Signal((able(1),))

    def test_signal_carries_no_multiplicity(self):
        """The model's key restriction: a node cannot count."""
        assert Signal([able(1)] * 5) == Signal([able(1)])


class TestDistribution:
    def test_uniform(self):
        d = Distribution.uniform((1, 2, 3, 4))
        assert d.support == {1, 2, 3, 4}
        assert d.probability(1) == pytest.approx(0.25)

    def test_merges_duplicates(self):
        d = Distribution((1, 1, 2), (0.25, 0.25, 0.5))
        assert d.probability(1) == pytest.approx(0.5)
        assert len(d.outcomes) == 2

    def test_normalizes(self):
        d = Distribution((1, 2), (3.0, 1.0))
        assert d.probability(1) == pytest.approx(0.75)

    def test_bernoulli(self):
        d = Distribution.bernoulli("yes", "no", 0.2)
        assert d.probability("yes") == pytest.approx(0.2)
        assert d.probability("no") == pytest.approx(0.8)

    def test_bernoulli_validates_probability(self):
        with pytest.raises(ModelError):
            Distribution.bernoulli(1, 0, 1.5)

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            Distribution(())

    def test_rejects_negative_weights(self):
        with pytest.raises(ModelError):
            Distribution((1, 2), (0.5, -0.5))

    def test_sample_respects_support(self):
        rng = np.random.default_rng(0)
        d = Distribution((1, 2), (0.5, 0.5))
        draws = {d.sample(rng) for _ in range(50)}
        assert draws <= {1, 2}
        assert len(draws) == 2  # both appear over 50 draws whp

    def test_sample_frequencies(self):
        rng = np.random.default_rng(1)
        d = Distribution.bernoulli(1, 0, 0.25)
        mean = np.mean([d.sample(rng) for _ in range(4000)])
        assert 0.2 < mean < 0.3

    def test_map(self):
        d = Distribution.uniform((1, 2)).map(lambda x: x * 10)
        assert d.support == {10, 20}

    def test_is_deterministic(self):
        assert Distribution((7,)).is_deterministic()
        assert not Distribution.uniform((1, 2)).is_deterministic()

    def test_product_distribution(self):
        d = product_distribution(
            [((False, True), (0.25, 0.75)), ((0, 1), (0.5, 0.5))],
            lambda flag, coin: (flag, coin),
        )
        assert d.probability((True, 1)) == pytest.approx(0.375)
        assert d.probability((False, 0)) == pytest.approx(0.125)
        assert sum(d.weights) == pytest.approx(1.0)

    def test_product_distribution_skips_zero_weights(self):
        d = product_distribution([((False, True), (0.0, 1.0))], lambda flag: flag)
        assert d.support == {True}


class TestConfiguration:
    def test_uniform_and_getitem(self):
        topo = ring(4)
        config = Configuration.uniform(topo, able(1))
        assert all(config[v] == able(1) for v in topo.nodes)

    def test_missing_node_rejected(self):
        topo = ring(4)
        with pytest.raises(ConfigurationError):
            Configuration(topo, {0: able(1)})

    def test_unknown_node_rejected(self):
        topo = ring(4)
        states = {v: able(1) for v in topo.nodes}
        states[99] = able(1)
        with pytest.raises(ConfigurationError):
            Configuration(topo, states)

    def test_signal_is_inclusive_neighborhood(self):
        topo = path(3)  # 0 - 1 - 2
        config = Configuration(topo, {0: able(1), 1: able(2), 2: able(3)})
        assert config.signal(0) == Signal((able(1), able(2)))
        assert config.signal(1) == Signal((able(1), able(2), able(3)))
        assert config.signal(2) == Signal((able(2), able(3)))

    def test_replace_is_functional(self):
        topo = ring(4)
        config = Configuration.uniform(topo, able(1))
        updated = config.replace({2: able(2)})
        assert config[2] == able(1)
        assert updated[2] == able(2)
        assert updated.replace({}) is updated

    def test_equality(self):
        topo = ring(4)
        a = Configuration.uniform(topo, able(1))
        b = Configuration.uniform(topo, able(1))
        assert a == b
        assert a != a.replace({0: able(2)})

    def test_output_vector(self):
        alg = ThinUnison(1)
        topo = path(2)
        config = Configuration(topo, {0: able(1), 1: faulty(2)})
        vector = config.output_vector(alg)
        assert vector[0] == alg.levels.clock_value(1)
        assert vector[1] is None
        assert not config.is_output_configuration(alg)

    def test_state_set(self):
        topo = ring(4)
        config = Configuration.uniform(topo, able(1)).replace({0: faulty(2)})
        assert config.state_set() == {able(1), faulty(2)}


class TestAlgorithmHelpers:
    def test_resolve_deterministic(self):
        alg = ThinUnison(1)
        rng = np.random.default_rng(0)
        assert alg.resolve(able(1), Signal((able(1),)), rng) == able(2)

    def test_support(self):
        alg = ThinUnison(1)
        assert alg.support(able(1), Signal((able(1),))) == {able(2)}

    def test_output_states_enumeration(self):
        alg = ThinUnison(1)
        outputs = alg.output_states()
        assert outputs is not None
        assert all(turn.able for turn in outputs)

    def test_random_state_in_state_space(self):
        alg = ThinUnison(2)
        rng = np.random.default_rng(0)
        states = alg.states()
        for _ in range(50):
            assert alg.random_state(rng) in states


@settings(max_examples=100)
@given(weights=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=6))
def test_property_distribution_normalizes(weights):
    outcomes = list(range(len(weights)))
    d = Distribution(outcomes, weights)
    assert sum(d.weights) == pytest.approx(1.0)
    total = sum(weights)
    for o, w in zip(outcomes, weights):
        assert d.probability(o) == pytest.approx(w / total)
