"""The algorithm registry: capability declarations, per-algorithm
property tests, the reset-tail vectorized lane differential, and the
Pareto aggregation.

Every :data:`~repro.campaigns.spec.ALGORITHM_FACTORIES` entry is
covered here at least once — structurally (the declaration is complete
and instantiable), behaviorally (a property or differential run), and
at the Scenario seam (capability validation accepts what is declared
and rejects what is not).  The docs table in
``docs/algorithms.md`` is drift-checked against the same registry by
``tests/test_docs_tables.py``.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.baselines.min_unison import MinUnison, min_unison_stable
from repro.baselines.reset_tail_unison import (
    ResetTailUnison,
    reset_tail_stable,
)
from repro.campaigns.aggregate import compute_pareto
from repro.campaigns.runner import run_scenario
from repro.campaigns.spec import (
    ALGORITHM_FACTORIES,
    DEFAULT_ALGORITHMS,
    FaultPlan,
    SCHEDULER_FACTORIES,
    Scenario,
    TASKS,
    TASK_STARTS,
    algorithm_names,
    algorithm_spec,
)
from repro.faults.injection import random_configuration
from repro.model.engine import ENGINE_NAMES, create_execution
from repro.model.scheduler import (
    ShuffledRoundRobinScheduler,
    SynchronousScheduler,
)
from repro.graphs.generators import complete_graph, ring, star


def _scenario(**overrides):
    base = dict(
        campaign="zoo",
        index=0,
        task="au",
        graph="complete",
        graph_params=(("n", 6),),
        diameter_bound=1,
        scheduler="synchronous",
        engine="object",
        start="random",
        seed=7,
        max_rounds=20_000,
        group="g",
    )
    base.update(overrides)
    return Scenario(**base)


class TestRegistryShape:
    def test_every_entry_declares_full_capabilities(self):
        for name, spec in ALGORITHM_FACTORIES.items():
            assert spec.name == name
            assert spec.task in TASKS
            assert spec.engines and set(spec.engines) <= set(ENGINE_NAMES)
            assert "object" in spec.engines, name
            assert spec.schedulers and set(spec.schedulers) <= set(
                SCHEDULER_FACTORIES
            )
            assert spec.starts and set(spec.starts) <= set(
                TASK_STARTS[spec.task]
            )
            assert spec.fault_kinds
            assert spec.summary
            assert spec.coverage() >= 1

    def test_every_entry_is_instantiable(self):
        for name, spec in ALGORITHM_FACTORIES.items():
            algorithm = spec.make(2, n_hint=8)
            assert callable(algorithm.delta), name
            bits = spec.state_bits(2, n_hint=8)
            if spec.state_bits_formula == "unbounded":
                assert bits is None
            else:
                assert bits is not None and bits > 0

    def test_defaults_cover_every_task_with_the_papers_algorithm(self):
        assert set(DEFAULT_ALGORITHMS) == set(TASKS)
        for task, name in DEFAULT_ALGORITHMS.items():
            spec = ALGORITHM_FACTORIES[name]
            assert spec.task == task
            assert spec.self_stabilizing

    def test_algorithm_names_are_sorted_and_complete(self):
        assert algorithm_names() == tuple(sorted(ALGORITHM_FACTORIES))

    def test_unknown_algorithm_lists_valid_names(self):
        with pytest.raises(ValueError, match="thin-unison"):
            algorithm_spec("quantum-unison")

    def test_thin_unison_is_the_most_general_entry(self):
        """The paper's algorithm must strictly out-cover every baseline
        — the property the Pareto generality axis hinges on."""
        thin = ALGORITHM_FACTORIES["thin-unison"].coverage()
        for name, spec in ALGORITHM_FACTORIES.items():
            if name != "thin-unison":
                assert spec.coverage() < thin, name


class TestCapabilityValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            # Task mismatch: an LE algorithm on the AU task.
            {"algorithm": "alg-le"},
            # Engine outside the declared lanes.
            {"algorithm": "min-unison", "engine": "array"},
            {"algorithm": "failed-reset-unison", "engine": "native"},
            # Start outside the declared suite.
            {"algorithm": "reset-tail-unison", "start": "sign-split"},
            {
                "task": "le",
                "algorithm": "id-flood-le",
                "start": "random",
            },
            # Fault kinds: only thin-unison takes fault plans.
            {
                "algorithm": "min-unison",
                "faults": FaultPlan(kind="bursts", bursts=1),
            },
            # Batching: only thin-unison is batchable.
            {
                "algorithm": "reset-tail-unison",
                "engine": "array",
                "batch_replicas": 2,
            },
            # Unknown registry name.
            {"algorithm": "quantum-unison"},
        ],
    )
    def test_rejects_out_of_capability_scenarios(self, overrides):
        with pytest.raises(ValueError):
            _scenario(**overrides)

    def test_blank_algorithm_resolves_to_the_task_default(self):
        assert _scenario().algorithm == "thin-unison"
        le = _scenario(task="le", max_rounds=1000)
        assert le.algorithm == "alg-le"

    def test_algorithm_enters_the_scenario_id_and_roundtrips(self):
        scenario = _scenario(algorithm="reset-tail-unison")
        assert "/reset-tail-unison/" in scenario.scenario_id
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_accepts_declared_lanes(self):
        _scenario(algorithm="reset-tail-unison", engine="array")
        _scenario(task="le", algorithm="id-flood-le", start="ids")
        _scenario(task="mis", algorithm="luby-mis", start="uniform")


class TestResetTailDifferential:
    """The vectorized reset-tail lane must be bit-identical to the
    object engine — same trajectory, round for round (the PR 1
    differential contract, extended to the second array-lane
    algorithm)."""

    @pytest.mark.parametrize(
        "make_graph,d,scheduler_cls,seed",
        list(
            itertools.product(
                [lambda: complete_graph(6), lambda: star(6), lambda: ring(6)],
                [3],
                [SynchronousScheduler, ShuffledRoundRobinScheduler],
                [0, 1],
            )
        ),
    )
    def test_engines_agree_round_for_round(
        self, make_graph, d, scheduler_cls, seed
    ):
        topology = make_graph()
        algorithm = ResetTailUnison.for_diameter_bound(d)
        initial = random_configuration(
            algorithm, topology, np.random.default_rng(seed)
        )
        trajectories = []
        for engine in ("object", "array"):
            execution = create_execution(
                topology,
                algorithm,
                initial,
                scheduler_cls(),
                rng=np.random.default_rng(seed + 100),
                engine=engine,
            )
            rounds = []
            for _ in range(40):
                execution.run_rounds(1)
                rounds.append(
                    tuple(
                        execution.configuration[v].value
                        for v in topology.nodes
                    )
                )
            trajectories.append(rounds)
        assert trajectories[0] == trajectories[1]

    def test_stabilizes_to_the_declared_predicate(self):
        result = run_scenario(
            _scenario(
                algorithm="reset-tail-unison",
                engine="array",
                scheduler="shuffled-round-robin",
            )
        )
        assert result.stabilized
        assert result.moves is not None and result.moves > 0
        assert result.state_bits == pytest.approx(np.log2(8 * 1 + 6))


class TestBaselineProperties:
    def test_min_unison_stabilizes_and_the_predicate_is_closed(self):
        topology = ring(7)
        algorithm = MinUnison()
        rng = np.random.default_rng(3)
        execution = create_execution(
            topology,
            algorithm,
            random_configuration(algorithm, topology, rng),
            ShuffledRoundRobinScheduler(),
            rng=rng,
        )
        execution.run(
            until=lambda e: min_unison_stable(e.configuration),
            max_rounds=500,
        )
        assert min_unison_stable(execution.configuration)
        # Closure: once coherent, further rounds stay coherent.
        for _ in range(10):
            execution.run_rounds(1)
            assert min_unison_stable(execution.configuration)

    def test_reset_tail_predicate_is_closed(self):
        topology = star(6)
        algorithm = ResetTailUnison.for_diameter_bound(2)
        rng = np.random.default_rng(5)
        execution = create_execution(
            topology,
            algorithm,
            random_configuration(algorithm, topology, rng),
            SynchronousScheduler(),
            rng=rng,
        )
        execution.run(
            until=lambda e: reset_tail_stable(algorithm, e.configuration),
            max_rounds=500,
        )
        assert reset_tail_stable(algorithm, execution.configuration)
        for _ in range(10):
            execution.run_rounds(1)
            assert reset_tail_stable(algorithm, execution.configuration)

    def test_failed_reset_converges_from_random_starts(self):
        """The Figure 2 strawman is fine on benign inputs — that is
        what makes it a strawman; only adversarial daemons break it
        (see tests/test_failed_reset_au.py for the livelock)."""
        result = run_scenario(_scenario(algorithm="failed-reset-unison"))
        assert result.stabilized

    def test_id_flood_le_elects_exactly_one_leader(self):
        result = run_scenario(
            _scenario(
                task="le",
                algorithm="id-flood-le",
                start="ids",
                graph="star",
                graph_params=(("n", 7),),
                diameter_bound=2,
                max_rounds=1000,
            )
        )
        assert result.stabilized

    def test_id_greedy_mis_reaches_a_valid_mis(self):
        result = run_scenario(
            _scenario(
                task="mis",
                algorithm="id-greedy-mis",
                start="ids",
                graph="ring",
                graph_params=(("n", 8),),
                diameter_bound=4,
                max_rounds=1000,
            )
        )
        assert result.stabilized

    def test_luby_mis_is_sound_under_serial_daemons(self):
        """From the all-undecided start, serial activations break the
        symmetric ties Luby trials are blind to under set-broadcast
        signals (random starts are excluded by its capability
        declaration: adjacent decided-IN nodes are forever)."""
        result = run_scenario(
            _scenario(
                task="mis",
                algorithm="luby-mis",
                scheduler="shuffled-round-robin",
                start="uniform",
                graph="ring",
                graph_params=(("n", 8),),
                diameter_bound=4,
                max_rounds=5000,
            )
        )
        assert result.stabilized


class TestMoveAccounting:
    def test_solo_and_batched_moves_agree(self):
        """The replica-batch retirement path must count moves exactly
        like solo runs (same choke point as the rounds agreement)."""
        from repro.campaigns.runner import run_scenario_batch

        scenarios = [
            _scenario(
                index=i,
                engine="replica-batch",
                scheduler="synchronous",
                seed=40 + i,
                batch_replicas=3,
            )
            for i in range(3)
        ]
        batched = run_scenario_batch(scenarios)
        solo = [
            run_scenario(
                _scenario(index=s.index, engine="array", seed=s.seed)
            )
            for s in scenarios
        ]
        assert [r.moves for r in batched] == [r.moves for r in solo]
        assert [r.rounds for r in batched] == [r.rounds for r in solo]

    def test_moves_are_none_free_and_positive_for_au_runs(self):
        result = run_scenario(_scenario())
        assert result.moves is not None and result.moves > 0
        assert result.state_bits == pytest.approx(np.log2(12 * 1 + 6))


class TestParetoAggregation:
    @staticmethod
    def _row(algorithm, rounds, bits, moves, graph="g", scheduler="s",
             stabilized=True):
        return {
            "task": "au",
            "graph": graph,
            "scheduler": scheduler,
            "algorithm": algorithm,
            "rounds": rounds,
            "state_bits": bits,
            "moves": moves,
            "stabilized": stabilized,
        }

    def test_generality_shields_the_more_general_algorithm(self):
        """A strawman that wins all three measured axes must not
        dominate the paper's algorithm — coverage is the fourth axis."""
        rows = [
            self._row("failed-reset-unison", 4, 2.6, 20),
            self._row("thin-unison", 8, 4.2, 35),
        ]
        pareto = compute_pareto(rows)
        assert pareto["g|s"]["frontier"] == [
            "failed-reset-unison",
            "thin-unison",
        ]

    def test_equal_coverage_lets_metrics_dominate(self):
        rows = [
            self._row("min-unison", 20, None, 90),
            self._row("reset-tail-unison", 5, 3.8, 30),
        ]
        pareto = compute_pareto(rows)
        # Identical declared coverage (starts/faults/self-stab), so the
        # all-axes-worse unbounded baseline is dominated.
        assert pareto["g|s"]["frontier"] == ["reset-tail-unison"]

    def test_single_algorithm_cells_are_dropped(self):
        rows = [self._row("thin-unison", 8, 4.2, 35)]
        assert compute_pareto(rows) == {}

    def test_unstabilized_algorithms_stay_visible_off_the_frontier(self):
        rows = [
            self._row("thin-unison", 8, 4.2, 35),
            self._row("min-unison", 0, None, None, stabilized=False),
        ]
        pareto = compute_pareto(rows)
        cell = pareto["g|s"]
        assert cell["frontier"] == ["thin-unison"]
        assert cell["cells"]["min-unison"]["stabilized"] == 0
        assert cell["cells"]["min-unison"]["rounds"] is None
