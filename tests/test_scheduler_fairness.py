"""Fairness properties of the scheduler battery.

Every scheduler in the repository must be fair — each node activated
infinitely often — or the model's guarantees are void.  These property
tests bound the starvation window of each scheduler empirically.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.scheduler import (
    LaggardScheduler,
    RandomSubsetScheduler,
    RotatingScheduler,
    RoundRobinScheduler,
    ShuffledRoundRobinScheduler,
    SynchronousScheduler,
)


def starvation_window(scheduler, n, steps, rng):
    """The longest gap (in steps) between consecutive activations of
    any node over a run of ``steps`` steps."""
    nodes = tuple(range(n))
    last_seen = {v: -1 for v in nodes}
    worst = 0
    for t in range(steps):
        for v in scheduler.activations(t, nodes, rng):
            worst = max(worst, t - last_seen[v])
            last_seen[v] = t
    # Account for nodes never activated at all.
    for v in nodes:
        if last_seen[v] == -1:
            return steps + 1
        worst = max(worst, steps - last_seen[v])
    return worst


class TestBoundedStarvation:
    @pytest.mark.parametrize("n", [2, 5, 9])
    def test_synchronous(self, n):
        rng = np.random.default_rng(0)
        assert starvation_window(SynchronousScheduler(), n, 50, rng) == 1

    @pytest.mark.parametrize("n", [2, 5, 9])
    def test_round_robin(self, n):
        rng = np.random.default_rng(0)
        assert starvation_window(RoundRobinScheduler(), n, 10 * n, rng) <= n

    @pytest.mark.parametrize("n", [2, 5, 9])
    def test_shuffled_round_robin(self, n):
        rng = np.random.default_rng(0)
        # Two adjacent shuffled rounds can put a node first then last:
        # window <= 2n - 1.
        assert (
            starvation_window(ShuffledRoundRobinScheduler(), n, 20 * n, rng)
            <= 2 * n - 1
        )

    @pytest.mark.parametrize("n", [2, 5, 9])
    def test_rotating(self, n):
        rng = np.random.default_rng(0)
        scheduler = RotatingScheduler(tuple(range(n)), shift=1)
        assert starvation_window(scheduler, n, 20 * n, rng) <= 2 * n

    @pytest.mark.parametrize("period", [2, 4, 8])
    def test_laggard_victim_window_is_period(self, period):
        rng = np.random.default_rng(0)
        scheduler = LaggardScheduler(victim=0, period=period)
        window = starvation_window(scheduler, 5, 20 * period, rng)
        assert window == period

    @pytest.mark.parametrize("p", [0.2, 0.5, 0.9])
    def test_random_subset_probabilistic_fairness(self, p):
        rng = np.random.default_rng(0)
        scheduler = RandomSubsetScheduler(p)
        steps = 3000
        window = starvation_window(scheduler, 6, steps, rng)
        assert window <= steps  # everyone got activated
        # Expected gap is 1/p; allow a generous whp margin.
        assert window <= 40 / p


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(2, 8),
    seed=st.integers(0, 500),
)
def test_property_every_scheduler_covers_all_nodes(n, seed):
    rng = np.random.default_rng(seed)
    schedulers = [
        SynchronousScheduler(),
        RoundRobinScheduler(),
        ShuffledRoundRobinScheduler(),
        RandomSubsetScheduler(0.5),
        LaggardScheduler(victim=0, period=4),
        RotatingScheduler(tuple(range(n)), shift=1),
    ]
    nodes = tuple(range(n))
    for scheduler in schedulers:
        seen = set()
        for t in range(30 * n):
            seen |= scheduler.activations(t, nodes, rng)
            if seen == set(nodes):
                break
        assert seen == set(nodes), scheduler.name
