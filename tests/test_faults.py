"""Fault injection and recovery — the paper's headline application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algau import ThinUnison
from repro.core.predicates import is_good_graph
from repro.faults.injection import (
    PeriodicFaultInjector,
    TransientFaultInjector,
    au_adversarial_suite,
    au_all_faulty,
    au_clock_tear,
    au_sign_split,
    random_configuration,
    uniform_configuration,
)
from repro.graphs.biological import quorum_colony
from repro.graphs.generators import complete_graph, damaged_clique, ring
from repro.model.errors import ModelError
from repro.model.execution import Execution
from repro.model.scheduler import ShuffledRoundRobinScheduler, SynchronousScheduler


class TestInitializers:
    def test_random_configuration_covers_state_space(self):
        rng = np.random.default_rng(0)
        alg = ThinUnison(1)
        topology = complete_graph(30)
        config = random_configuration(alg, topology, rng)
        assert len(config.state_set()) > 5

    def test_uniform_configuration(self):
        alg = ThinUnison(1)
        topology = ring(5)
        config = uniform_configuration(alg, topology)
        assert config.state_set() == {alg.initial_state()}

    def test_sign_split_has_both_signs(self):
        rng = np.random.default_rng(0)
        alg = ThinUnison(2)
        config = au_sign_split(alg, ring(6), rng)
        signs = {1 if config[v].level > 0 else -1 for v in range(6)}
        assert signs == {-1, 1}

    def test_all_faulty_is_all_faulty(self):
        rng = np.random.default_rng(0)
        alg = ThinUnison(2)
        config = au_all_faulty(alg, ring(6), rng)
        assert all(config[v].faulty for v in range(6))

    def test_clock_tear_is_output_configuration(self):
        rng = np.random.default_rng(0)
        alg = ThinUnison(2)
        config = au_clock_tear(alg, ring(6), rng)
        assert all(config[v].able for v in range(6))

    def test_suite_names(self):
        rng = np.random.default_rng(0)
        alg = ThinUnison(1)
        suite = au_adversarial_suite(alg, ring(5), rng)
        assert set(suite) == {"random", "sign-split", "clock-tear", "all-faulty"}


class TestTransientFaultInjector:
    def test_fires_at_scheduled_times(self):
        rng = np.random.default_rng(0)
        alg = ThinUnison(1)
        topology = complete_graph(8)
        injector = TransientFaultInjector(
            alg, times=(3, 7), fraction=0.5, rng=np.random.default_rng(1)
        )
        execution = Execution(
            topology,
            alg,
            uniform_configuration(alg, topology),
            SynchronousScheduler(),
            rng=rng,
            intervention=injector,
        )
        execution.run(max_rounds=10)
        assert [e.t for e in injector.events] == [3, 7]
        assert all(len(e.nodes) == 4 for e in injector.events)

    def test_fraction_validation(self):
        alg = ThinUnison(1)
        with pytest.raises(ModelError):
            TransientFaultInjector(alg, times=(1,), fraction=0.0)

    def test_periodic_injector(self):
        rng = np.random.default_rng(0)
        alg = ThinUnison(1)
        topology = ring(6)
        injector = PeriodicFaultInjector(
            alg, period=5, start=2, fraction=0.2, rng=np.random.default_rng(2)
        )
        execution = Execution(
            topology,
            alg,
            uniform_configuration(alg, topology),
            SynchronousScheduler(),
            rng=rng,
            intervention=injector,
        )
        execution.run(max_rounds=13)
        assert [e.t for e in injector.events] == [2, 7, 12]


class TestRecovery:
    @pytest.mark.parametrize("seed", range(4))
    def test_au_recovers_from_mid_run_bursts(self, seed):
        """Stabilize, corrupt 30% of a quorum colony, re-stabilize —
        repeatedly.  This is the fault-tolerant biological clock."""
        rng = np.random.default_rng(seed)
        topology = quorum_colony(12, 2, rng)
        alg = ThinUnison(2)
        execution = Execution(
            topology,
            alg,
            random_configuration(alg, topology, rng),
            ShuffledRoundRobinScheduler(),
            rng=rng,
        )
        for burst in range(3):
            result = execution.run(
                max_rounds=execution.completed_rounds + 20_000,
                until=lambda e: is_good_graph(alg, e.configuration),
            )
            assert result.stopped_by_predicate
            victims = rng.choice(topology.n, size=4, replace=False)
            execution.replace_configuration(
                execution.configuration.replace(
                    {int(v): alg.random_state(rng) for v in victims}
                )
            )
        result = execution.run(
            max_rounds=execution.completed_rounds + 20_000,
            until=lambda e: is_good_graph(alg, e.configuration),
        )
        assert result.stopped_by_predicate

    def test_recovery_time_is_small_for_small_faults(self):
        """A single corrupted node on a good graph heals in O(D)-ish
        rounds, far below the full O(D^3) worst case."""
        rng = np.random.default_rng(9)
        topology = damaged_clique(10, 2, rng)
        alg = ThinUnison(2)
        execution = Execution(
            topology,
            alg,
            random_configuration(alg, topology, rng),
            ShuffledRoundRobinScheduler(),
            rng=rng,
        )
        execution.run(
            max_rounds=20_000,
            until=lambda e: is_good_graph(alg, e.configuration),
        )
        recovery_rounds = []
        for _ in range(5):
            execution.replace_configuration(
                execution.configuration.replace({0: alg.random_state(rng)})
            )
            start = execution.completed_rounds
            execution.run(
                max_rounds=start + 5000,
                until=lambda e: is_good_graph(alg, e.configuration),
            )
            recovery_rounds.append(execution.completed_rounds - start)
        k = alg.levels.k
        assert max(recovery_rounds) <= 3 * k  # far below k^3
