"""Tests for schedulers, the round operator and the execution engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algau import ThinUnison
from repro.core.turns import able
from repro.graphs.generators import ring
from repro.model.configuration import Configuration
from repro.model.errors import ModelError, ScheduleError
from repro.model.execution import Execution, Monitor
from repro.model.rounds import RoundTracker
from repro.model.scheduler import (
    ExplicitScheduler,
    LaggardScheduler,
    RandomSubsetScheduler,
    RotatingScheduler,
    RoundRobinScheduler,
    ShuffledRoundRobinScheduler,
    SynchronousScheduler,
)


class TestRoundTracker:
    def test_synchronous_rounds(self):
        tracker = RoundTracker((0, 1, 2))
        for t in range(5):
            completed = tracker.observe((0, 1, 2))
            assert completed
        assert tracker.boundaries == (0, 1, 2, 3, 4, 5)
        assert tracker.completed_rounds == 5

    def test_round_robin_rounds(self):
        tracker = RoundTracker((0, 1, 2))
        pattern = [(0,), (1,), (2,), (0,), (1,), (2,)]
        boundaries = [t + 1 for t, a in enumerate(pattern) if tracker.observe(a)]
        assert boundaries == [3, 6]

    def test_partial_activations(self):
        tracker = RoundTracker((0, 1, 2, 3))
        assert not tracker.observe((0, 1))
        assert not tracker.observe((0, 1))
        assert tracker.observe((2, 3))
        assert tracker.boundary(1) == 3

    def test_round_of_time(self):
        tracker = RoundTracker((0, 1))
        tracker.observe((0,))
        tracker.observe((1,))  # R(1) = 2
        tracker.observe((0, 1))  # R(2) = 3
        assert tracker.round_of_time(0) == 0
        assert tracker.round_of_time(1) == 1
        assert tracker.round_of_time(2) == 1
        assert tracker.round_of_time(3) == 2
        with pytest.raises(IndexError):
            tracker.round_of_time(4)


class TestSchedulers:
    def test_synchronous_activates_everyone(self):
        sched = SynchronousScheduler()
        rng = np.random.default_rng(0)
        assert sched.activations(0, (0, 1, 2), rng) == {0, 1, 2}

    def test_round_robin_cycles(self):
        sched = RoundRobinScheduler()
        rng = np.random.default_rng(0)
        picks = [sched.activations(t, (0, 1, 2), rng) for t in range(6)]
        assert picks == [{0}, {1}, {2}, {0}, {1}, {2}]

    def test_round_robin_custom_order(self):
        sched = RoundRobinScheduler(order=(2, 0, 1))
        rng = np.random.default_rng(0)
        picks = [sched.activations(t, (0, 1, 2), rng) for t in range(3)]
        assert picks == [{2}, {0}, {1}]

    def test_round_robin_rejects_bad_order(self):
        sched = RoundRobinScheduler(order=(0, 0, 1))
        rng = np.random.default_rng(0)
        with pytest.raises(ScheduleError):
            sched.activations(0, (0, 1, 2), rng)

    def test_shuffled_round_robin_is_fair(self):
        sched = ShuffledRoundRobinScheduler()
        rng = np.random.default_rng(0)
        seen = []
        for t in range(9):
            (v,) = sched.activations(t, (0, 1, 2), rng)
            seen.append(v)
        # Every window of 3 is a permutation.
        for i in range(0, 9, 3):
            assert sorted(seen[i : i + 3]) == [0, 1, 2]

    def test_random_subset_nonempty(self):
        sched = RandomSubsetScheduler(0.1)
        rng = np.random.default_rng(0)
        for t in range(50):
            assert sched.activations(t, (0, 1, 2), rng)

    def test_random_subset_validates_p(self):
        with pytest.raises(ScheduleError):
            RandomSubsetScheduler(0.0)

    def test_explicit_replays_then_falls_back(self):
        sched = ExplicitScheduler([(0,), (1,)])
        rng = np.random.default_rng(0)
        assert sched.activations(0, (0, 1), rng) == {0}
        assert sched.activations(1, (0, 1), rng) == {1}
        assert sched.activations(2, (0, 1), rng) == {0, 1}

    def test_explicit_repeat(self):
        sched = ExplicitScheduler([(0,), (1,)], repeat=True)
        rng = np.random.default_rng(0)
        assert sched.activations(5, (0, 1), rng) == {1}

    def test_rotating_shifts_per_traversal(self):
        sched = RotatingScheduler((0, 2, 1), shift=1)
        rng = np.random.default_rng(0)
        first = [sched.activations(t, (0, 1, 2), rng) for t in range(3)]
        second = [sched.activations(t, (0, 1, 2), rng) for t in range(3, 6)]
        assert first == [{0}, {2}, {1}]
        assert second == [{1}, {0}, {2}]

    def test_laggard_starves_victim(self):
        sched = LaggardScheduler(victim=0, period=4)
        rng = np.random.default_rng(0)
        activations = [sched.activations(t, (0, 1, 2), rng) for t in range(8)]
        victim_steps = [t for t, a in enumerate(activations) if 0 in a]
        assert victim_steps == [3, 7]
        assert all({1, 2} <= a for a in activations)


class RecordingMonitor(Monitor):
    def __init__(self):
        self.started = False
        self.steps = []

    def on_start(self, execution):
        self.started = True

    def on_step(self, execution, record):
        self.steps.append(record)


class TestExecution:
    def make(self, scheduler=None, seed=0):
        rng = np.random.default_rng(seed)
        topology = ring(4)
        alg = ThinUnison(2)
        config = Configuration.uniform(topology, able(1))
        return Execution(
            topology,
            alg,
            config,
            scheduler or SynchronousScheduler(),
            rng=rng,
        )

    def test_synchronous_step_uses_pre_step_configuration(self):
        """Simultaneous updates: everyone reads C_t, not intermediate
        states.  All nodes at level 1 advance together to level 2."""
        execution = self.make()
        execution.step()
        assert all(
            execution.configuration[v] == able(2)
            for v in execution.topology.nodes
        )

    def test_non_activated_nodes_keep_state(self):
        execution = self.make(RoundRobinScheduler())
        execution.step()  # only node 0 moves
        assert execution.configuration[0] == able(2)
        assert execution.configuration[1] == able(1)

    def test_run_until_predicate(self):
        execution = self.make()
        result = execution.run(
            max_rounds=100,
            until=lambda e: e.configuration[0] == able(4),
        )
        assert result.stopped_by_predicate
        assert execution.configuration[0] == able(4)

    def test_run_respects_round_budget(self):
        execution = self.make(RoundRobinScheduler())
        result = execution.run(max_rounds=3)
        assert result.reason == "max_rounds"
        assert execution.completed_rounds == 3
        assert execution.t == 12  # 4 nodes per round

    def test_run_requires_a_budget(self):
        execution = self.make()
        with pytest.raises(ModelError):
            execution.run()

    def test_monitors_invoked(self):
        execution = self.make()
        monitor = RecordingMonitor()
        execution.monitors = (monitor,)
        execution.run(max_rounds=3)
        assert monitor.started
        assert len(monitor.steps) == 3
        assert all(rec.completed_round for rec in monitor.steps)

    def test_step_records_changes(self):
        execution = self.make()
        record = execution.step()
        assert len(record.changed) == 4
        for node, old, new in record.changed:
            assert old == able(1)
            assert new == able(2)

    def test_intervention_replaces_configuration(self):
        execution = self.make()

        def corrupt(e):
            if e.t == 2:
                return e.configuration.replace({0: able(1)})
            return None

        execution.intervention = corrupt
        execution.run(max_rounds=3)
        # The corruption before step t=2 put node 0 back to level 1,
        # where it is blocked (its neighbors sit at level 3).
        assert execution.configuration[0] == able(1)

    def test_replace_configuration_validates_topology(self):
        execution = self.make()
        other = Configuration.uniform(ring(4), able(1))
        with pytest.raises(ModelError):
            execution.replace_configuration(other)

    def test_initial_configuration_topology_mismatch(self):
        rng = np.random.default_rng(0)
        alg = ThinUnison(2)
        with pytest.raises(ModelError):
            Execution(
                ring(4),
                alg,
                Configuration.uniform(ring(5), able(1)),
                SynchronousScheduler(),
                rng=rng,
            )

    def test_pre_satisfied_until(self):
        execution = self.make()
        result = execution.run(max_rounds=5, until=lambda e: True)
        assert result.stopped_by_predicate
        assert result.steps == 0
