"""Enabled-aware daemons, quiescence detection, and the scheduler
contract extensions (``select`` hook, removed ``attach`` alias).

The enabled-aware schedulers consume the engines' incrementally
maintained enabled-set view, so these tests double as end-to-end checks
of the dirty-set invariant: if the view ever went stale, the daemons
would activate the wrong nodes and the engine-pairing assertions would
diverge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaigns import FaultPlan, Scenario, run_scenario
from repro.core.algau import ThinUnison
from repro.faults.injection import random_configuration
from repro.graphs.generators import complete_graph, damaged_clique, ring
from repro.model.adversary import greedy_au_adversary
from repro.model.algorithm import Algorithm
from repro.model.engine import create_execution
from repro.model.errors import ScheduleError
from repro.model.execution import Execution
from repro.model.scheduler import (
    EnabledOnlyScheduler,
    LocallyCentralScheduler,
    SynchronousScheduler,
)


class _Inert(Algorithm[int, int]):
    """δ = identity: every configuration is quiescent."""

    name = "inert"
    deterministic = True

    def is_output_state(self, state):
        return True

    def output(self, state):
        return state

    def delta(self, state, signal):
        return state

    def initial_state(self):
        return 0

    def random_state(self, rng):
        return int(rng.integers(3))


def _au_execution(scheduler, engine="object", seed=0, n=9, track_enabled=False):
    algorithm = ThinUnison(2)
    topology = ring(n)
    initial = random_configuration(algorithm, topology, np.random.default_rng(seed))
    return create_execution(
        topology,
        algorithm,
        initial,
        scheduler,
        rng=np.random.default_rng(seed + 1),
        engine=engine,
        track_enabled=track_enabled,
    )


class TestEnabledOnlyScheduler:
    @pytest.mark.parametrize("engine", ["object", "array"])
    def test_activates_exactly_the_enabled_set(self, engine):
        execution = _au_execution(EnabledOnlyScheduler(), engine=engine, seed=3)
        for _ in range(40):
            expected = execution.enabled_nodes()
            record = execution.step()
            assert record.activated == (
                expected if expected else frozenset(execution.topology.nodes)
            )

    def test_quiescent_fallback_activates_everyone(self):
        algorithm = _Inert()
        topology = ring(6)
        initial = random_configuration(algorithm, topology, np.random.default_rng(0))
        execution = Execution(
            topology,
            algorithm,
            initial,
            EnabledOnlyScheduler(),
            rng=np.random.default_rng(1),
        )
        assert execution.is_quiescent()
        record = execution.step()
        assert record.activated == frozenset(topology.nodes)
        assert record.completed_round  # the fallback keeps rounds alive
        assert record.changed == ()

    def test_needs_an_execution(self):
        with pytest.raises(ScheduleError, match="enabled view"):
            EnabledOnlyScheduler().activations(0, (0, 1, 2), np.random.default_rng(0))

    @pytest.mark.parametrize("engine", ["object", "array"])
    def test_algau_stabilizes_under_the_daemon(self, engine):
        execution = _au_execution(EnabledOnlyScheduler(), engine=engine, seed=7)
        result = execution.run(max_rounds=50_000, until=lambda e: e.graph_is_good())
        assert result.stopped_by_predicate
        # Unison never quiesces: a good graph keeps pulsing.
        assert not execution.is_quiescent()


class TestLocallyCentralScheduler:
    @pytest.mark.parametrize("engine", ["object", "array"])
    @pytest.mark.parametrize("seed", range(3))
    def test_never_activates_two_neighbors(self, engine, seed):
        execution = _au_execution(LocallyCentralScheduler(), engine=engine, seed=seed)
        topology = execution.topology
        for _ in range(60):
            record = execution.step()
            active = sorted(record.activated)
            for i, u in enumerate(active):
                for v in active[i + 1 :]:
                    assert not topology.has_edge(u, v), (u, v)

    @pytest.mark.parametrize("engine", ["object", "array"])
    def test_activations_are_maximal_within_the_enabled_set(self, engine):
        execution = _au_execution(LocallyCentralScheduler(), engine=engine, seed=11)
        topology = execution.topology
        for _ in range(40):
            enabled = execution.enabled_nodes()
            record = execution.step()
            if enabled:
                assert record.activated <= enabled
                # Maximality: every unchosen enabled node has a chosen
                # neighbor.
                for v in enabled - record.activated:
                    chosen = record.activated
                    assert any(u in chosen for u in topology.neighbors(v)), v

    def test_needs_binding(self):
        scheduler = LocallyCentralScheduler()
        with pytest.raises(ScheduleError, match="not bound"):
            scheduler.select(0, (0, 1), np.random.default_rng(0), frozenset((0,)))

    def test_algau_stabilizes_under_the_daemon(self):
        execution = _au_execution(LocallyCentralScheduler(), seed=13)
        result = execution.run(max_rounds=50_000, until=lambda e: e.graph_is_good())
        assert result.stopped_by_predicate


class TestQuiescenceTracking:
    @pytest.mark.parametrize("engine", ["object", "array"])
    def test_step_records_carry_enabled_counts(self, engine):
        scheduler = SynchronousScheduler()
        execution = _au_execution(scheduler, engine=engine, seed=17, track_enabled=True)
        for _ in range(25):
            record = execution.step()
            assert record.enabled == execution.enabled_count()
            assert record.enabled == len(execution.enabled_nodes())

    def test_untracked_records_leave_enabled_none(self):
        execution = _au_execution(SynchronousScheduler(), seed=17)
        assert execution.step().enabled is None

    def test_masked_nodes_are_never_enabled(self):
        execution = _au_execution(SynchronousScheduler(), seed=19)
        enabled = execution.enabled_nodes()
        assert enabled
        victim = min(enabled)
        execution.mask_nodes((victim,))
        assert victim not in execution.enabled_nodes()
        execution.mask_nodes(())
        assert victim in execution.enabled_nodes()

    def test_inert_algorithm_is_quiescent_and_stays_so(self):
        algorithm = _Inert()
        topology = complete_graph(5)
        initial = random_configuration(algorithm, topology, np.random.default_rng(2))
        execution = Execution(
            topology,
            algorithm,
            initial,
            SynchronousScheduler(),
            rng=np.random.default_rng(3),
        )
        assert execution.is_quiescent()
        assert execution.enabled_count() == 0
        execution.run(max_steps=5)
        assert execution.is_quiescent()


class TestSchedulerContract:
    def test_attach_is_removed_with_a_pointer_at_bind(self):
        execution = _au_execution(SynchronousScheduler(), seed=23)
        late = SynchronousScheduler()
        with pytest.raises(AttributeError, match=r"removed.*bind\(\)"):
            late.attach(execution)

    def test_other_missing_attributes_raise_plainly(self):
        with pytest.raises(AttributeError, match="no attribute 'frobnicate'"):
            SynchronousScheduler().frobnicate

    def test_rebinding_a_bound_adversary_raises(self):
        algorithm = ThinUnison(2)
        adversary = greedy_au_adversary(algorithm)
        first = damaged_clique(8, 2, np.random.default_rng(0))
        Execution(
            first,
            algorithm,
            random_configuration(algorithm, first, np.random.default_rng(1)),
            adversary,
            rng=np.random.default_rng(2),
        )
        other = ring(7)
        with pytest.raises(ScheduleError, match="already bound"):
            Execution(
                other,
                algorithm,
                random_configuration(algorithm, other, np.random.default_rng(3)),
                adversary,
                rng=np.random.default_rng(4),
            )
        # ... and manual bind() calls surface the same guard.
        another = _au_execution(SynchronousScheduler(), seed=29)
        with pytest.raises(ScheduleError, match="already bound"):
            adversary.bind(another)

    def test_oblivious_schedulers_ignore_the_enabled_view(self):
        scheduler = SynchronousScheduler()
        nodes = (0, 1, 2, 3)
        rng = np.random.default_rng(0)
        assert scheduler.select(0, nodes, rng, frozenset((1,))) == frozenset(nodes)


class TestCampaignIntegration:
    @pytest.mark.parametrize("scheduler", ["enabled-only", "locally-central"])
    def test_scenarios_round_trip_and_pair_across_engines(self, scheduler):
        results = {}
        for engine in ("object", "array"):
            scenario = Scenario(
                campaign="test",
                index=0,
                task="au",
                graph="complete",
                graph_params=(("n", 6),),
                diameter_bound=1,
                scheduler=scheduler,
                engine=engine,
                start="random",
                seed=321,
                max_rounds=30_000,
                faults=FaultPlan(),
            )
            assert Scenario.from_dict(scenario.to_dict()) == scenario
            result = run_scenario(scenario)
            assert result.stabilized, result.detail
            results[engine] = (result.stabilized, result.rounds, result.steps)
        assert results["object"] == results["array"]

    def test_enabled_daemons_registry_builds(self):
        from repro.campaigns import build_campaign

        scenarios = build_campaign("enabled-daemons")
        assert len(scenarios) >= 20
        assert {s.scheduler for s in scenarios} == {
            "enabled-only",
            "locally-central",
        }
        assert {s.engine for s in scenarios} == {"object", "array"}
        # Engine-paired: every pairing tag appears exactly twice with
        # the same derived seed.
        by_pair = {}
        for s in scenarios:
            by_pair.setdefault(s.tag("pairing"), []).append(s)
        for pair, members in by_pair.items():
            assert len(members) == 2, pair
            assert members[0].seed == members[1].seed
            assert {m.engine for m in members} == {"object", "array"}
