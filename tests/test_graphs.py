"""Tests for topologies, generators and biological families."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graphs.biological import cell_tissue, proneural_cluster, quorum_colony
from repro.graphs.generators import (
    bounded_diameter_family,
    caterpillar,
    complete_graph,
    damaged_clique,
    dumbbell,
    grid,
    hypercube,
    path,
    random_connected,
    random_regular,
    ring,
    star,
    torus,
)
from repro.graphs.properties import (
    degree_stats,
    eccentricities,
    is_valid_diameter_bound,
    radius,
    summary,
)
from repro.graphs.topology import (
    Topology,
    single_node_topology,
    topology_from_edges,
)
from repro.model.errors import TopologyError


class TestTopology:
    def test_normalizes_labels(self):
        topo = topology_from_edges([("a", "b"), ("b", "c")])
        assert topo.nodes == (0, 1, 2)
        assert set(topo.labels) == {"a", "b", "c"}

    def test_inclusive_neighbors_contain_self(self):
        topo = ring(5)
        for v in topo.nodes:
            assert v in topo.inclusive_neighbors(v)
            assert set(topo.inclusive_neighbors(v)) == {v} | set(topo.neighbors(v))

    def test_rejects_disconnected(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(TopologyError):
            Topology(g)

    def test_rejects_empty(self):
        with pytest.raises(TopologyError):
            Topology(nx.Graph())

    def test_rejects_self_loops(self):
        g = nx.Graph()
        g.add_edge(0, 0)
        g.add_edge(0, 1)
        with pytest.raises(TopologyError):
            Topology(g)

    def test_diameter_cached(self):
        topo = path(6)
        assert topo.diameter == 5
        assert topo.diameter == 5

    def test_single_node(self):
        topo = single_node_topology()
        assert topo.n == 1
        assert topo.diameter == 0
        assert topo.inclusive_neighbors(0) == (0,)

    def test_distance_and_ball(self):
        topo = path(5)
        assert topo.distance(0, 4) == 4
        assert topo.ball(2, 1) == {1, 2, 3}

    def test_check_diameter_bound(self):
        topo = path(5)
        topo.check_diameter_bound(4)
        with pytest.raises(TopologyError):
            topo.check_diameter_bound(3)


class TestGenerators:
    def test_complete(self):
        topo = complete_graph(5)
        assert topo.n == 5
        assert topo.m == 10
        assert topo.diameter == 1

    def test_star(self):
        topo = star(6)
        assert topo.n == 6
        assert topo.diameter == 2

    def test_ring_and_path(self):
        assert ring(8).diameter == 4
        assert path(7).diameter == 6

    def test_grid_and_torus(self):
        assert grid(3, 4).diameter == 5
        assert torus(4, 4).diameter == 4

    def test_hypercube(self):
        topo = hypercube(3)
        assert topo.n == 8
        assert topo.diameter == 3

    def test_dumbbell(self):
        topo = dumbbell(4, 2)
        assert topo.diameter == 4
        assert topo.n == 9  # two 4-cliques plus one bridge node

    def test_dumbbell_bridge_one(self):
        topo = dumbbell(3, 1)
        assert topo.diameter == 3

    def test_caterpillar(self):
        topo = caterpillar(4, 2)
        assert topo.n == 4 + 8
        assert topo.diameter == 5

    def test_damaged_clique_respects_bound(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            topo = damaged_clique(12, 2, rng)
            assert topo.diameter <= 2
            assert topo.m < 12 * 11 // 2  # something was damaged

    def test_damaged_clique_impossible_bound(self):
        rng = np.random.default_rng(0)
        with pytest.raises(TopologyError):
            damaged_clique(3, 1, rng, damage=0.9, max_attempts=3)

    def test_random_connected(self):
        rng = np.random.default_rng(0)
        topo = random_connected(12, 0.4, rng)
        assert topo.n == 12

    def test_random_regular(self):
        rng = np.random.default_rng(0)
        topo = random_regular(10, 3, rng)
        assert all(topo.degree(v) == 3 for v in topo.nodes)

    @pytest.mark.parametrize("d", [1, 2, 3, 4, 6])
    def test_bounded_diameter_family(self, d):
        rng = np.random.default_rng(0)
        topo = bounded_diameter_family(d, 12, rng)
        assert topo.diameter <= d


class TestBiological:
    def test_quorum_colony(self):
        rng = np.random.default_rng(0)
        topo = quorum_colony(14, 2, rng)
        assert topo.diameter <= 2
        assert topo.n == 14

    def test_cell_tissue(self):
        rng = np.random.default_rng(0)
        topo = cell_tissue(4, 4, rng)
        assert topo.n == 16

    def test_cell_tissue_radius_guard(self):
        rng = np.random.default_rng(0)
        with pytest.raises(TopologyError):
            cell_tissue(4, 4, rng, contact_radius=0.5)

    def test_proneural_cluster(self):
        topo = proneural_cluster(3, 3, inhibition_radius=1)
        assert topo.n == 9
        # The center cell touches all 8 surrounding cells.
        center = topo.labels.index((1, 1))
        assert topo.degree(center) == 8

    def test_proneural_radius_two(self):
        topo = proneural_cluster(5, 5, inhibition_radius=2)
        center = topo.labels.index((2, 2))
        assert topo.degree(center) == 24


class TestProperties:
    def test_radius_and_eccentricities(self):
        topo = path(5)
        ecc = eccentricities(topo)
        assert ecc[0] == 4
        assert ecc[2] == 2
        assert radius(topo) == 2

    def test_degree_stats(self):
        topo = star(5)
        dmin, dmean, dmax = degree_stats(topo)
        assert dmin == 1
        assert dmax == 4

    def test_is_valid_diameter_bound(self):
        assert is_valid_diameter_bound(ring(6), 3)
        assert not is_valid_diameter_bound(ring(6), 2)

    def test_summary_mentions_name(self):
        assert "path" in summary(path(3))
