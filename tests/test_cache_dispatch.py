"""The content-addressed result cache and the dispatch seam.

Covers the canonical scenario content hash (golden pinned values over
every engine, the net runtime, and the permanent-fault plans; hypothesis
round-trip and no-collision properties), the sharded on-disk result
store (atomicity, integrity verification, uncacheable statuses, gc),
the pluggable dispatch backends (bit-identical aggregates across
serial/shards/queue), the runner's cache integration (cold vs. warm
bit-identity, hit/miss stats), and the ``repro cache`` CLI.
"""

from __future__ import annotations

import json
import logging
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaigns import (
    CONTENT_HASH_VERSION,
    DISPATCHER_NAMES,
    FaultPlan,
    ResultCache,
    Scenario,
    ScenarioResult,
    aggregate_results,
    build_campaign,
    default_cache_dir,
    load_checkpoint,
    make_dispatcher,
    measured_payload,
    run_campaign,
)
from repro.campaigns import runner as runner_module
from repro.campaigns.cache import UNCACHEABLE_STATUS
from repro.campaigns.dispatch import (
    ProcessPoolDispatcher,
    QueueDispatcher,
    SerialDispatcher,
)
from repro.cli import main


def scenario(**overrides) -> Scenario:
    """A small valid AU scenario with the given axis overrides."""
    base = dict(
        campaign="golden",
        index=0,
        task="au",
        graph="complete",
        graph_params=(("n", 8),),
        diameter_bound=2,
        scheduler="synchronous",
        engine="object",
        start="sign-split",
        seed=7,
        max_rounds=500,
    )
    base.update(overrides)
    return Scenario(**base)


# ----------------------------------------------------------------------
# The canonical content hash.
# ----------------------------------------------------------------------

#: Pinned canonical hashes of representative scenarios across every
#: engine, both runtimes, and the fault-plan repertoire.  A mismatch
#: means the hash function changed semantics: if that was intentional,
#: bump CONTENT_HASH_VERSION in spec.py (invalidating all caches) and
#: re-pin; if not, you just silently corrupted every existing cache.
GOLDEN_HASHES = {
    "object-sync": "7205164e0b4761f12d2dd6f768f3e3c21aa9141cd515a06e046231f7ae9152f3",
    "array-engine": "2468207b4a939a23a3603f4cb0b876f269f6ca29fc38ddf284f6c8f67858ff33",
    "replica-batch-engine": "88227a3708b88267e3331cfac12930a503b8f16904bc17ad50a61f1a717b36ce",
    "native-engine": "4c4dbe8bdbbf9c069fa155bd507021761d0f156c25ea8ffa23795f59a536612e",
    "ring-laggard": "8dafb7b6b192bc677a47bd35c7c8f45c72e14f8d3cce057d15fad2bb9235cc1d",
    "net-ideal": "2eb2be7d6d6802a185af799216b6226c37dc2012cc35885e65ad2e5656968ac9",
    "net-lossy": "a9417d7b531505542eb57ba0c209fa211a46a288de53dbaaaf5e75c19c1d7eee",
    "byzantine": "dc4c0697c7f1653cdc3fd31708ba3906eea22c1dab9ee7d12136fb65285de4c0",
    "crash": "a1105688997cbd3721f089e341da5f765b28bcf6fe9543a0332c4c9c181d9767",
    "bursts": "412824dfa92c2155744aa7e73e226de946b60dbb3b1a84c6fe31b4b037e2052f",
    "le-task": "fc88c0c2db210c030f39305c4e90e8c5f716c9cba7dd0b7a7503b801bf5d27fb",
    "mis-baseline": "d751f6ca24b50b379cab496b36e4d5ee338d9add646906e6f8dd7ed55a908394",
    "reset-tail": "92c7c5b4259282497f1cbcd3fb1030004f03247c69369c2877f4e776fdc65f40",
}


def golden_scenarios():
    """The representative scenarios behind :data:`GOLDEN_HASHES`."""
    return {
        "object-sync": scenario(),
        "array-engine": scenario(engine="array"),
        "replica-batch-engine": scenario(
            engine="replica-batch", scheduler="round-robin"
        ),
        "native-engine": scenario(engine="native"),
        "ring-laggard": scenario(
            graph="ring",
            graph_params=(("n", 12),),
            diameter_bound=6,
            scheduler="laggard",
            start="clock-tear",
        ),
        "net-ideal": scenario(runtime="net", scheduler="round-robin"),
        "net-lossy": scenario(
            runtime="net",
            scheduler="round-robin",
            net_params=(("delay", 1.0), ("loss", 0.1)),
        ),
        "byzantine": scenario(
            faults=FaultPlan(
                kind="byzantine", strategy="targeted", density=0.1, radius=2
            )
        ),
        "crash": scenario(
            faults=FaultPlan(kind="crash", density=0.1, times=(5,), radius=1)
        ),
        "bursts": scenario(faults=FaultPlan(kind="bursts", bursts=2, fraction=0.25)),
        "le-task": scenario(
            task="le",
            algorithm="alg-le",
            start="random",
            graph="star",
            graph_params=(("n", 9),),
        ),
        "mis-baseline": scenario(
            task="mis",
            algorithm="luby-mis",
            start="uniform",
            graph="grid",
            graph_params=(("rows", 3), ("cols", 3)),
        ),
        "reset-tail": scenario(
            algorithm="reset-tail-unison", start="random", engine="array"
        ),
    }


class TestContentHash:
    def test_golden_hashes(self):
        scenarios = golden_scenarios()
        assert set(scenarios) == set(GOLDEN_HASHES)
        for name, scn in scenarios.items():
            assert scn.content_hash() == GOLDEN_HASHES[name], name

    def test_golden_scenarios_collision_free(self):
        hashes = list(GOLDEN_HASHES.values())
        assert len(set(hashes)) == len(hashes)

    def test_version_salt_in_payload(self):
        assert scenario().content_payload()["version"] == CONTENT_HASH_VERSION

    def test_labels_do_not_shape_the_hash(self):
        # campaign/index/group/tags are bookkeeping, batch_replicas is
        # a pure execution strategy: the same experiment reached from
        # two campaigns must address the same cache entry.
        reference = scenario().content_hash()
        assert scenario(campaign="other").content_hash() == reference
        assert scenario(index=99).content_hash() == reference
        assert scenario(group="sweep").content_hash() == reference
        assert scenario(tags=(("trial", "3"),)).content_hash() == reference
        batched = scenario(engine="array", batch_replicas=4)
        assert (
            batched.content_hash()
            == scenario(engine="array").content_hash()
        )

    @pytest.mark.parametrize(
        "axis",
        [
            {"seed": 8},
            {"max_rounds": 501},
            {"diameter_bound": 3},
            {"graph_params": (("n", 9),)},
            {"scheduler": "round-robin"},
            {"engine": "array"},
            {"start": "clock-tear"},
            {"faults": FaultPlan(kind="bursts", bursts=1)},
        ],
    )
    def test_semantic_axes_shape_the_hash(self, axis):
        assert scenario(**axis).content_hash() != scenario().content_hash()

    def test_graph_param_order_is_canonicalized(self):
        a = scenario(
            task="mis",
            algorithm="luby-mis",
            start="uniform",
            graph="grid",
            graph_params=(("rows", 3), ("cols", 4)),
        )
        b = scenario(
            task="mis",
            algorithm="luby-mis",
            start="uniform",
            graph="grid",
            graph_params=(("cols", 4), ("rows", 3)),
        )
        assert a.content_hash() == b.content_hash()

    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(2, 64),
        diameter_bound=st.integers(1, 8),
        max_rounds=st.integers(1, 10_000),
        scheduler=st.sampled_from(["synchronous", "round-robin", "laggard"]),
        start=st.sampled_from(["sign-split", "clock-tear", "uniform"]),
        engine=st.sampled_from(["object", "array", "native"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_json_round_trip_hashes_identically(
        self, seed, n, diameter_bound, max_rounds, scheduler, start, engine
    ):
        original = scenario(
            seed=seed,
            graph_params=(("n", n),),
            diameter_bound=diameter_bound,
            max_rounds=max_rounds,
            scheduler=scheduler,
            start=start,
            engine=engine,
        )
        rebuilt = Scenario.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert rebuilt.content_hash() == original.content_hash()

    @given(
        axes=st.lists(
            st.tuples(
                st.integers(0, 50),  # seed
                st.integers(2, 20),  # n
                st.integers(1, 5),  # diameter bound
                st.sampled_from(["synchronous", "round-robin"]),
                st.sampled_from(["sign-split", "uniform"]),
            ),
            min_size=2,
            max_size=20,
            unique=True,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_distinct_scenarios_never_collide(self, axes):
        hashes = [
            scenario(
                seed=seed,
                graph_params=(("n", n),),
                diameter_bound=diameter,
                scheduler=scheduler,
                start=start,
            ).content_hash()
            for seed, n, diameter, scheduler, start in axes
        ]
        assert len(set(hashes)) == len(hashes)


# ----------------------------------------------------------------------
# The result store.
# ----------------------------------------------------------------------


def result_for(scn: Scenario, **overrides) -> ScenarioResult:
    """A plausible measured result row for ``scn``."""
    base = dict(
        scenario_id=scn.scenario_id,
        index=scn.index,
        group=scn.group,
        stabilized=True,
        rounds=11,
        steps=88,
        n=8,
        m=28,
        moves=40,
        state_bits=4.9,
        tags=scn.tags,
        elapsed_ms=123.0,
    )
    base.update(overrides)
    return ScenarioResult(**base)


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        scn = scenario()
        stored = result_for(scn)
        assert cache.put(scn, stored)
        hit = cache.get(scn)
        assert hit is not None
        assert measured_payload(hit) == measured_payload(stored)
        # Hits did no compute: wall-clock must not be replayed.
        assert hit.elapsed_ms == 0.0
        assert cache.run_stats.hits == 1
        assert cache.run_stats.saved_ms == 123.0

    def test_identity_labels_come_from_the_requesting_scenario(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        producer = scenario(campaign="nightly", index=3, group="D=2")
        cache.put(producer, result_for(producer))
        consumer = scenario(
            campaign="adhoc", index=41, group="other", tags=(("trial", "9"),)
        )
        hit = cache.get(consumer)
        assert hit is not None
        assert hit.scenario_id == consumer.scenario_id
        assert hit.index == 41
        assert hit.group == "other"
        assert hit.tag("trial") == "9"

    def test_miss_on_empty_store(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get(scenario()) is None
        assert cache.run_stats.misses == 1

    @pytest.mark.parametrize("status", UNCACHEABLE_STATUS)
    def test_timeout_and_error_rows_are_refused(self, tmp_path, status):
        cache = ResultCache(str(tmp_path))
        scn = scenario()
        assert not cache.put(scn, result_for(scn, status=status, stabilized=False))
        assert cache.get(scn) is None

    def test_tampered_entry_is_a_miss_and_verify_reports_it(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        scn = scenario()
        cache.put(scn, result_for(scn))
        path = cache.entry_path(scn.content_hash())
        entry = json.loads(open(path).read())
        entry["key"]["seed"] = 999  # payload no longer re-hashes to the name
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        assert cache.get(scn) is None
        problems = cache.verify()
        assert len(problems) == 1 and path in problems[0]
        assert cache.verify(remove=True) == problems
        assert not os.path.exists(path)
        assert cache.verify() == []

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        scn = scenario()
        cache.put(scn, result_for(scn))
        path = cache.entry_path(scn.content_hash())
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"hash": "torn')
        assert cache.get(scn) is None

    def test_wrong_version_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        scn = scenario()
        cache.put(scn, result_for(scn))
        path = cache.entry_path(scn.content_hash())
        entry = json.loads(open(path).read())
        entry["version"] = CONTENT_HASH_VERSION + 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        assert cache.get(scn) is None

    def test_stats_and_gc(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for seed in range(3):
            scn = scenario(seed=seed)
            cache.put(scn, result_for(scn))
        stats = cache.stats()
        assert stats["entries"] == 3 and stats["bytes"] > 0
        # Nothing is older than a day.
        assert cache.gc(86400.0) == {"removed": 0, "kept": 3, "freed_bytes": 0}
        swept = cache.gc(0.0)
        assert swept["removed"] == 3 and swept["freed_bytes"] > 0
        assert cache.stats()["entries"] == 0

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        scn = scenario()
        content_hash = scn.content_hash()
        cache.put(scn, result_for(scn))
        expected = os.path.join(
            str(tmp_path), "objects", content_hash[:2], f"{content_hash}.json"
        )
        assert os.path.exists(expected)

    def test_default_cache_dir_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        assert default_cache_dir() == str(tmp_path / "store")
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == str(tmp_path / "xdg" / "repro-results")


# ----------------------------------------------------------------------
# Dispatch backends.
# ----------------------------------------------------------------------


class TestDispatch:
    def test_make_dispatcher_names(self):
        assert isinstance(make_dispatcher("serial"), SerialDispatcher)
        assert isinstance(
            make_dispatcher("shards", workers=2), ProcessPoolDispatcher
        )
        assert isinstance(make_dispatcher("queue", workers=2), QueueDispatcher)
        with pytest.raises(ValueError, match="valid dispatchers"):
            make_dispatcher("carrier-pigeon")

    def test_shard_size_is_rejected_off_the_sharded_backend(self):
        with pytest.raises(ValueError, match="shard_size"):
            make_dispatcher("serial", shard_size=3)
        with pytest.raises(ValueError, match="shard_size"):
            make_dispatcher("queue", workers=2, shard_size=3)
        assert make_dispatcher("shards", workers=2, shard_size=3).shard_size == 3

    def test_invalid_workers_and_shard_size(self):
        with pytest.raises(ValueError, match="workers"):
            make_dispatcher("shards", workers=0)
        with pytest.raises(ValueError, match="workers"):
            make_dispatcher("queue", workers=0)
        with pytest.raises(ValueError, match="shard_size"):
            make_dispatcher("shards", workers=2, shard_size=0)

    def test_shard_packing_covers_all_jobs(self):
        dispatcher = ProcessPoolDispatcher(workers=3, shard_size=2)
        jobs = [[f"job{i}"] for i in range(7)]
        shards = dispatcher.make_shards(jobs)
        assert [job for shard in shards for job in shard] == jobs
        assert all(len(shard) <= 2 for shard in shards)

    def test_empty_job_list(self):
        for name in DISPATCHER_NAMES:
            dispatcher = make_dispatcher(name, workers=2)
            assert list(dispatcher.dispatch([], lambda job: [job])) == []

    @pytest.mark.parametrize("dispatch", ["shards", "queue"])
    def test_backends_agree_with_serial(self, dispatch):
        scenarios = build_campaign("micro")[:6]
        reference = run_campaign(scenarios, dispatch="serial")
        other = run_campaign(scenarios, workers=2, dispatch=dispatch)
        baseline = aggregate_results("micro", scenarios, reference, 0)
        candidate = aggregate_results("micro", scenarios, other, 0)
        assert json.dumps(baseline, sort_keys=True) == json.dumps(
            candidate, sort_keys=True
        )


# ----------------------------------------------------------------------
# Runner integration.
# ----------------------------------------------------------------------


class TestRunnerCacheIntegration:
    def test_cold_then_warm_is_bit_identical(self, tmp_path):
        scenarios = build_campaign("micro")[:6]
        cache = ResultCache(str(tmp_path))
        cold_stats: dict = {}
        warm_stats: dict = {}
        cold = run_campaign(scenarios, cache=cache, stats=cold_stats)
        warm = run_campaign(scenarios, cache=cache, stats=warm_stats)
        assert json.dumps(
            aggregate_results("micro", scenarios, cold, 0), sort_keys=True
        ) == json.dumps(
            aggregate_results("micro", scenarios, warm, 0), sort_keys=True
        )
        assert cold_stats["cache"] == {
            "hits": 0,
            "misses": len(scenarios),
            "hit_rate": 0.0,
            "saved_compute_s": cold_stats["cache"]["saved_compute_s"],
        }
        assert warm_stats["cache"]["hits"] == len(scenarios)
        assert warm_stats["cache"]["misses"] == 0
        assert warm_stats["cache"]["hit_rate"] == 1.0
        assert warm_stats["cache"]["saved_compute_s"] > 0.0
        assert cache.load_last_run()["hits"] == len(scenarios)

    def test_warm_run_across_dispatchers(self, tmp_path):
        scenarios = build_campaign("micro")[:4]
        cache = ResultCache(str(tmp_path))
        cold = run_campaign(scenarios, cache=cache)
        stats: dict = {}
        warm = run_campaign(
            scenarios, workers=2, dispatch="queue", cache=cache, stats=stats
        )
        assert stats["cache"]["hits"] == len(scenarios)
        assert [r.to_dict() for r in cold] == [
            dict(r.to_dict(), elapsed_ms=cold[i].elapsed_ms)
            for i, r in enumerate(warm)
        ]

    def test_hits_stream_into_the_checkpoint(self, tmp_path):
        scenarios = build_campaign("micro")[:4]
        cache = ResultCache(str(tmp_path / "store"))
        run_campaign(scenarios, cache=cache)
        checkpoint = str(tmp_path / "progress.jsonl")
        run_campaign(scenarios, checkpoint_path=checkpoint, cache=cache)
        done = load_checkpoint(checkpoint)
        assert set(done) == {s.scenario_id for s in scenarios}

    def test_timeout_rows_are_not_cached(self, tmp_path, monkeypatch):
        scenarios = build_campaign("micro")[:2]

        def timed_out(scn, timeout_s=None):
            return result_for(scn, scenario_id=scn.scenario_id, status="timeout")

        monkeypatch.setattr(runner_module, "run_scenario", timed_out)
        cache = ResultCache(str(tmp_path))
        run_campaign(scenarios, cache=cache, batch=False)
        assert cache.stats()["entries"] == 0
        stats: dict = {}
        run_campaign(scenarios, cache=cache, batch=False, stats=stats)
        assert stats["cache"]["hits"] == 0

    def test_stats_without_cache(self):
        scenarios = build_campaign("micro")[:2]
        stats: dict = {}
        run_campaign(scenarios, stats=stats)
        assert stats == {"dispatch": "serial", "cache": None}

    def test_unknown_dispatch_name_fails_fast(self):
        with pytest.raises(ValueError, match="valid dispatchers"):
            run_campaign(build_campaign("micro")[:1], dispatch="bogus")


class TestCheckpointRobustness:
    def test_skipped_lines_are_logged_not_silent(self, tmp_path, caplog):
        path = str(tmp_path / "progress.jsonl")
        scn = scenario()
        row = result_for(scn)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(row.to_dict(), sort_keys=True) + "\n")
            handle.write("{torn json\n")
            handle.write("{}\n")
        with caplog.at_level(logging.WARNING, logger="repro.campaigns.runner"):
            done = load_checkpoint(path)
        assert set(done) == {scn.scenario_id}
        assert "skipped 2 unparsable line(s)" in caplog.text

    def test_append_is_single_write_with_tail_repair(self, tmp_path):
        path = str(tmp_path / "progress.jsonl")
        scn_a, scn_b = scenario(index=0, seed=1), scenario(index=1, seed=2)
        row_a = result_for(scn_a, scenario_id=scn_a.scenario_id)
        with open(path, "w", encoding="utf-8") as handle:
            # A torn trailing line with no newline, as a killed writer
            # leaves behind.
            handle.write(json.dumps(row_a.to_dict(), sort_keys=True))
        row_b = result_for(scn_b, scenario_id=scn_b.scenario_id, index=1)
        runner_module._append_checkpoint(path, [row_b])
        done = load_checkpoint(path)
        assert set(done) == {scn_a.scenario_id, scn_b.scenario_id}


# ----------------------------------------------------------------------
# The CLI surface.
# ----------------------------------------------------------------------


class TestCacheCLI:
    def run_micro(self, tmp_path, *extra):
        artifact = str(tmp_path / "artifact.json")
        code = main(
            [
                "campaign",
                "run",
                "--registry",
                "micro",
                "--limit",
                "2",
                "--output",
                artifact,
                *extra,
            ]
        )
        assert code == 0
        return json.loads(open(artifact).read())

    def test_campaign_run_with_cache_dir(self, tmp_path):
        store = str(tmp_path / "store")
        cold = self.run_micro(tmp_path, "--cache-dir", store)
        warm = self.run_micro(tmp_path, "--cache-dir", store)
        assert cold["meta"]["cache"]["misses"] == 2
        assert warm["meta"]["cache"]["hits"] == 2
        assert json.dumps(cold["aggregates"], sort_keys=True) == json.dumps(
            warm["aggregates"], sort_keys=True
        )

    def test_no_cache_beats_the_env_var(self, tmp_path, monkeypatch):
        store = str(tmp_path / "store")
        monkeypatch.setenv("REPRO_CACHE_DIR", store)
        self.run_micro(tmp_path)
        warm = self.run_micro(tmp_path, "--no-cache")
        assert warm["meta"]["cache"] is None

    def test_dispatch_flag(self, tmp_path):
        artifact = self.run_micro(tmp_path, "--dispatch", "queue", "--workers", "2")
        assert artifact["meta"]["dispatch"] == "queue"

    def test_cache_stats_verify_gc(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self.run_micro(tmp_path, "--cache-dir", store)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", store]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 2
        assert stats["last_run"]["misses"] == 2
        assert main(["cache", "verify", "--cache-dir", store]) == 0
        capsys.readouterr()
        assert main(["cache", "gc", "--older-than", "30", "--cache-dir", store]) == 0
        assert json.loads(capsys.readouterr().out)["kept"] == 2
        assert main(["cache", "gc", "--older-than", "0", "--cache-dir", store]) == 0
        assert json.loads(capsys.readouterr().out)["removed"] == 2

    def test_cache_verify_flags_corruption(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self.run_micro(tmp_path, "--cache-dir", store)
        cache = ResultCache(store)
        path = cache._entry_paths()[0]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json")
        assert main(["cache", "verify", "--cache-dir", store]) == 1
        capsys.readouterr()
        assert main(["cache", "verify", "--remove", "--cache-dir", store]) == 1
        assert main(["cache", "verify", "--cache-dir", store]) == 0
