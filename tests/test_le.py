"""AlgLE — Theorem 1.3: synchronous self-stabilizing leader election."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stabilization import measure_static_task_stabilization
from repro.faults.injection import random_configuration, uniform_configuration
from repro.graphs.generators import complete_graph, damaged_clique, star
from repro.graphs.topology import single_node_topology
from repro.model.errors import ModelError
from repro.model.execution import Execution
from repro.model.scheduler import SynchronousScheduler
from repro.model.signal import Signal
from repro.tasks.le import COMPUTE, VERIFY, AlgLE, LEState
from repro.tasks.restart import RestartState
from repro.tasks.spec import check_le_output


def stabilize_le(topology, d, seed, max_rounds=60_000, from_random=True):
    alg = AlgLE(d)
    rng = np.random.default_rng(seed)
    initial = (
        random_configuration(alg, topology, rng)
        if from_random
        else uniform_configuration(alg, topology)
    )
    result = measure_static_task_stabilization(
        alg,
        topology,
        initial,
        SynchronousScheduler(),
        rng,
        lambda out: check_le_output(out).valid,
        max_rounds=max_rounds,
        confirm_rounds=10 * (d + 1),
    )
    assert result.stabilized, result.detail
    return result


class TestUnitTransitions:
    @pytest.fixture
    def alg(self) -> AlgLE:
        return AlgLE(2)

    def test_initial_state(self, alg):
        q0 = alg.initial_state()
        assert q0.stage == COMPUTE
        assert q0.r == 0
        assert q0.flag and q0.candidate
        assert not q0.leader

    def test_epoch_start_tosses_both_coins(self, alg):
        q0 = alg.initial_state()
        result = alg.delta(q0, Signal((q0,)))
        support = result.support
        assert all(s.r == 1 for s in support)
        flags = {s.flag for s in support}
        coins = {s.coin for s in support}
        assert flags == {False, True}
        assert coins == {False, True}
        # Accumulators start at the node's own contribution.
        for s in support:
            assert s.flag_acc == s.flag
            assert s.coin_acc == (s.candidate and s.coin)

    def test_flag_reset_probability(self, alg):
        q0 = alg.initial_state()
        dist = alg.delta(q0, Signal((q0,)))
        p_flag_off = sum(
            w
            for outcome, w in zip(dist.outcomes, dist.weights)
            if not outcome.flag
        )
        assert p_flag_off == pytest.approx(alg.p0)

    def test_flooding_ors_accumulators(self, alg):
        mine = LEState(COMPUTE, 1, False, True, False, False, False, False, None, None)
        other = LEState(COMPUTE, 1, True, True, True, True, True, False, None, None)
        new = alg.delta(mine, Signal((mine, other)))
        assert new.flag_acc and new.coin_acc
        assert new.r == 2

    def test_round_mismatch_triggers_restart(self, alg):
        mine = LEState(COMPUTE, 1, False, True, False, False, False, False, None, None)
        other = LEState(COMPUTE, 2, False, True, False, False, False, False, None, None)
        assert alg.delta(mine, Signal((mine, other))) == RestartState(0)

    def test_stage_mismatch_triggers_restart(self, alg):
        mine = LEState(COMPUTE, 1, False, True, False, False, False, False, None, None)
        other = LEState(VERIFY, 1, False, False, False, False, False, True, None, None)
        assert alg.delta(mine, Signal((mine, other))) == RestartState(0)

    def test_epoch_end_elimination(self, alg):
        # Candidate with coin 0 sensing a candidate coin in the OR: out.
        mine = LEState(COMPUTE, 2, False, True, False, True, True, False, None, None)
        new = alg.delta(mine, Signal((mine,)))
        assert not new.candidate
        assert new.r == 0
        assert new.stage == COMPUTE  # flag OR was 1: stage continues

    def test_epoch_end_halts_when_flags_clear(self, alg):
        mine = LEState(COMPUTE, 2, False, True, True, False, False, False, None, None)
        new = alg.delta(mine, Signal((mine,)))
        assert new.stage == VERIFY
        assert new.leader  # survived with coin 1
        assert new.r == 0

    def test_epoch_end_continues_when_flags_present(self, alg):
        mine = LEState(COMPUTE, 2, True, True, True, True, True, False, None, None)
        new = alg.delta(mine, Signal((mine,)))
        assert new.stage == COMPUTE
        assert new.r == 0

    def test_survivor_with_coin_one_stays(self, alg):
        mine = LEState(COMPUTE, 2, False, True, True, False, True, False, None, None)
        new = alg.delta(mine, Signal((mine,)))
        assert new.candidate

    def test_verify_leader_draws_identifier(self, alg):
        mine = LEState(VERIFY, 0, False, True, False, False, False, True, None, None)
        dist = alg.delta(mine, Signal((mine,)))
        support = dist.support
        assert len(support) == alg.k_id
        assert all(s.vid == s.seen and s.vid is not None for s in support)

    def test_verify_nonleader_clears_identifier(self, alg):
        mine = LEState(VERIFY, 0, False, False, False, False, False, False, 3, 3)
        new = alg.delta(mine, Signal((mine,)))
        assert new.vid is None and new.seen is None

    def test_verify_conflicting_ids_restart(self, alg):
        mine = LEState(VERIFY, 1, False, False, False, False, False, False, None, 2)
        other = LEState(VERIFY, 1, False, False, False, False, False, True, 5, 5)
        assert alg.delta(mine, Signal((mine, other))) == RestartState(0)

    def test_verify_two_ids_sensed_restart(self, alg):
        mine = LEState(VERIFY, 1, False, False, False, False, False, False, None, None)
        a = LEState(VERIFY, 1, False, False, False, False, False, True, 2, 2)
        b = LEState(VERIFY, 1, False, False, False, False, False, True, 7, 7)
        assert alg.delta(mine, Signal((mine, a, b))) == RestartState(0)

    def test_verify_zero_leaders_detected_at_epoch_end(self, alg):
        mine = LEState(VERIFY, 2, False, False, False, False, False, False, None, None)
        assert alg.delta(mine, Signal((mine,))) == RestartState(0)

    def test_verify_epoch_end_with_id_continues(self, alg):
        mine = LEState(VERIFY, 2, False, False, False, False, False, False, None, 4)
        new = alg.delta(mine, Signal((mine,)))
        assert isinstance(new, LEState)
        assert new.r == 0
        assert new.seen is None

    def test_restart_state_sensed_pulls_main_node(self, alg):
        mine = alg.initial_state()
        assert (alg.delta(mine, Signal((mine, RestartState(3)))) == RestartState(0))

    def test_outputs(self, alg):
        leader = LEState(VERIFY, 0, False, True, False, False, False, True, None, None)
        follower = LEState(
            VERIFY, 0, False, False, False, False, False, False, None, None
        )
        assert alg.output(leader) == 1
        assert alg.output(follower) == 0
        assert not alg.is_output_state(RestartState(0))

    def test_state_space_is_linear_in_d(self):
        sizes = [AlgLE(d).state_space_size() for d in (1, 2, 4, 8)]
        # Linear growth: constant second difference of zero.
        diffs = [b - a for a, b in zip(sizes, sizes[1:])]
        ratios = [
            diff / (db - da)
            for diff, (da, db) in zip(diffs, [(1, 2), (2, 4), (4, 8)])
        ]
        assert ratios[0] == ratios[1] == ratios[2]

    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            AlgLE(2, p0=0.0)
        with pytest.raises(ModelError):
            AlgLE(2, k_id=1)


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(4))
    def test_complete_graph_from_adversarial_start(self, seed):
        stabilize_le(complete_graph(8), 1, seed)

    @pytest.mark.parametrize("seed", range(3))
    def test_damaged_clique_d2(self, seed):
        rng = np.random.default_rng(seed + 50)
        stabilize_le(damaged_clique(10, 2, rng), 2, seed)

    def test_star_d2(self):
        stabilize_le(star(9), 2, seed=1)

    def test_from_clean_start(self):
        stabilize_le(complete_graph(6), 1, seed=2, from_random=False)

    def test_single_node_elects_itself(self):
        stabilize_le(single_node_topology(), 1, seed=3)

    def test_leader_remains_stable_long_after(self):
        topology = complete_graph(6)
        alg = AlgLE(1)
        rng = np.random.default_rng(4)
        execution = Execution(
            topology,
            alg,
            uniform_configuration(alg, topology),
            SynchronousScheduler(),
            rng=rng,
        )

        def stable(e):
            c = e.configuration
            return c.is_output_configuration(alg) and check_le_output(
                c.output_vector(alg)
            ).valid

        result = execution.run(max_rounds=30_000, until=stable)
        assert result.stopped_by_predicate
        vector = execution.configuration.output_vector(alg)
        execution.run_rounds(200)
        assert execution.configuration.output_vector(alg) == vector

    def test_at_least_one_candidate_always_survives(self):
        """Elect's invariant: the candidate set never empties during a
        legitimate computation stage."""
        topology = complete_graph(8)
        alg = AlgLE(1)
        rng = np.random.default_rng(5)
        execution = Execution(
            topology,
            alg,
            uniform_configuration(alg, topology),
            SynchronousScheduler(),
            rng=rng,
        )
        for _ in range(400):
            execution.step()
            config = execution.configuration
            states = [config[v] for v in topology.nodes]
            if all(isinstance(s, LEState) and s.stage == COMPUTE for s in states):
                assert any(s.candidate for s in states)
