"""The one-shot reproduction report (repro.analysis.report)."""

from __future__ import annotations

import pytest

from repro.analysis.report import generate_report


@pytest.fixture(scope="module")
def report_text() -> str:
    # One trial per sweep point: the cheapest full battery.
    return generate_report(trials=1)


class TestReport:
    def test_all_sections_present(self, report_text):
        for heading in (
            "Figure 1",
            "Figure 2",
            "Thm 1.1",
            "Thm 1.3",
            "Thm 1.4",
            "Thm 3.1",
            "Obs 3.2",
            "Application",
        ):
            assert heading in report_text

    def test_no_failures(self, report_text):
        assert "FAIL" not in report_text
        assert "8/8 checks passed" in report_text

    def test_is_markdown(self, report_text):
        assert report_text.startswith("# Reproduction report")
        assert "| D |" in report_text  # at least one table


class TestReportCLI:
    def test_cli_report_writes_file(self, tmp_path, capsys):
        from repro.cli import main

        output = str(tmp_path / "report.md")
        code = main(["report", "--trials", "1", "--output", output])
        assert code == 0
        with open(output) as handle:
            assert "Reproduction report" in handle.read()
