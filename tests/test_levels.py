"""Unit and property tests for the level arithmetic of Sec. 2.2."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.levels import LevelSystem, k_for_diameter_bound
from repro.model.errors import ModelError


def levels_for(d: int) -> LevelSystem:
    return LevelSystem(d)


class TestParameters:
    def test_k_is_3d_plus_2(self):
        assert k_for_diameter_bound(1) == 5
        assert k_for_diameter_bound(2) == 8
        assert k_for_diameter_bound(10) == 32

    def test_rejects_nonpositive_diameter(self):
        with pytest.raises(ModelError):
            LevelSystem(0)

    def test_level_set(self):
        ls = levels_for(1)
        assert ls.levels == (-5, -4, -3, -2, -1, 1, 2, 3, 4, 5)
        assert ls.group_order == 10

    def test_zero_is_not_a_level(self):
        ls = levels_for(2)
        assert not ls.is_level(0)
        with pytest.raises(ModelError):
            ls.require_level(0)

    def test_out_of_range_is_not_a_level(self):
        ls = levels_for(1)
        assert not ls.is_level(6)
        assert not ls.is_level(-6)


class TestForwardOperator:
    def test_minus_one_wraps_to_one(self):
        ls = levels_for(2)
        assert ls.forward(-1) == 1

    def test_k_wraps_to_minus_k(self):
        ls = levels_for(2)
        assert ls.forward(ls.k) == -ls.k

    def test_ordinary_increment(self):
        ls = levels_for(2)
        assert ls.forward(3) == 4
        assert ls.forward(-4) == -3

    def test_backward_inverts_forward(self):
        ls = levels_for(3)
        for level in ls.levels:
            assert ls.backward(ls.forward(level)) == level

    def test_forward_power(self):
        ls = levels_for(1)
        # Walking 2k steps returns to the start.
        for level in ls.levels:
            assert ls.forward(level, ls.group_order) == level

    def test_forward_negative_exponent(self):
        ls = levels_for(2)
        for level in ls.levels:
            assert ls.forward(ls.forward(level, -3), 3) == level

    def test_full_cycle_visits_every_level(self):
        ls = levels_for(2)
        cursor = -ls.k
        visited = []
        for _ in range(ls.group_order):
            visited.append(cursor)
            cursor = ls.forward(cursor)
        assert sorted(visited) == sorted(ls.levels)
        assert cursor == -ls.k


class TestAdjacency:
    def test_self_adjacent(self):
        ls = levels_for(2)
        for level in ls.levels:
            assert ls.adjacent(level, level)

    def test_forward_neighbors_adjacent(self):
        ls = levels_for(2)
        for level in ls.levels:
            assert ls.adjacent(level, ls.forward(level))
            assert ls.adjacent(ls.forward(level), level)

    def test_two_apart_not_adjacent(self):
        ls = levels_for(2)
        for level in ls.levels:
            assert not ls.adjacent(level, ls.forward(level, 2))

    def test_wraparound_adjacency(self):
        ls = levels_for(1)
        assert ls.adjacent(ls.k, -ls.k)
        assert ls.adjacent(-1, 1)
        assert not ls.adjacent(-1, 2)


class TestOutwardsOperator:
    def test_sign_preserved(self):
        ls = levels_for(2)
        assert ls.outwards(3, 2) == 5
        assert ls.outwards(-3, 2) == -5
        assert ls.outwards(3, -2) == 1
        assert ls.outwards(-3, -2) == -1

    def test_undefined_beyond_k(self):
        ls = levels_for(1)
        with pytest.raises(ModelError):
            ls.outwards(ls.k, 1)

    def test_undefined_through_zero(self):
        ls = levels_for(1)
        with pytest.raises(ModelError):
            ls.outwards(2, -2)

    def test_strictly_outwards(self):
        ls = levels_for(1)  # k = 5
        assert ls.strictly_outwards(3) == {4, 5}
        assert ls.strictly_outwards(-3) == {-4, -5}
        assert ls.strictly_outwards(5) == frozenset()

    def test_outwards_gg_drops_one_step(self):
        ls = levels_for(1)
        assert ls.outwards_gg(3) == {5}
        assert ls.outwards_gg(5) == frozenset()
        assert ls.outwards_gg(4) == frozenset()

    def test_outwards_ge_includes_self(self):
        ls = levels_for(1)
        assert ls.outwards_ge(4) == {4, 5}

    def test_strictly_inwards(self):
        ls = levels_for(1)
        assert ls.strictly_inwards(3) == {1, 2}
        assert ls.strictly_inwards(1) == frozenset()
        assert ls.strictly_inwards(-4) == {-1, -2, -3}

    def test_inwards_ll_drops_one_step(self):
        ls = levels_for(1)
        assert ls.inwards_ll(3) == {1}
        assert ls.inwards_ll(2) == frozenset()
        assert ls.inwards_ll(1) == frozenset()


class TestDistance:
    def test_distance_zero_iff_equal(self):
        ls = levels_for(2)
        for a in ls.levels:
            for b in ls.levels:
                assert (ls.distance(a, b) == 0) == (a == b)

    def test_distance_one_iff_forward_adjacent(self):
        ls = levels_for(1)
        for a in ls.levels:
            assert ls.distance(a, ls.forward(a)) == 1
            assert ls.distance(a, ls.backward(a)) == 1

    def test_symmetric(self):
        ls = levels_for(2)
        for a in ls.levels:
            for b in ls.levels:
                assert ls.distance(a, b) == ls.distance(b, a)

    def test_triangle_inequality(self):
        ls = levels_for(1)
        for a in ls.levels:
            for b in ls.levels:
                for c in ls.levels:
                    assert ls.distance(a, c) <= ls.distance(a, b) + ls.distance(b, c)

    def test_max_distance_is_k(self):
        ls = levels_for(2)
        assert (max(ls.distance(a, b) for a in ls.levels for b in ls.levels) == ls.k)

    def test_matches_recursive_definition(self):
        """Cross-check against the paper's recurrence on a small system."""
        ls = levels_for(1)

        def recursive(a: int, b: int, budget: int) -> int:
            if a == b:
                return 0
            if budget == 0:
                return 10**9
            return 1 + min(
                recursive(a, ls.backward(b), budget - 1),
                recursive(a, ls.forward(b), budget - 1),
            )

        for a in ls.levels:
            for b in ls.levels:
                assert ls.distance(a, b) == recursive(a, b, ls.k)


class TestClockIdentification:
    def test_bijection(self):
        ls = levels_for(3)
        clocks = [ls.clock_value(level) for level in ls.levels]
        assert sorted(clocks) == list(range(ls.group_order))
        for level in ls.levels:
            assert ls.level_of_clock(ls.clock_value(level)) == level

    def test_forward_is_plus_one(self):
        ls = levels_for(2)
        for level in ls.levels:
            assert (
                ls.clock_value(ls.forward(level))
                == (ls.clock_value(level) + 1) % ls.group_order
            )

    def test_clock_wraps(self):
        ls = levels_for(1)
        assert ls.level_of_clock(ls.group_order) == ls.level_of_clock(0)
        assert ls.level_of_clock(-1) == ls.level_of_clock(ls.group_order - 1)


@settings(max_examples=200)
@given(d=st.integers(1, 8), j=st.integers(-40, 40), data=st.data())
def test_property_forward_composition(d, j, data):
    """φ^{a+b} = φ^a ∘ φ^b for arbitrary integers."""
    ls = LevelSystem(d)
    level = data.draw(st.sampled_from(ls.levels))
    a = data.draw(st.integers(-20, 20))
    assert ls.forward(ls.forward(level, a), j) == ls.forward(level, a + j)


@settings(max_examples=200)
@given(d=st.integers(1, 8), data=st.data())
def test_property_distance_equals_min_walk(d, data):
    """dist(a, b) = min walk length along the φ cycle."""
    ls = LevelSystem(d)
    a = data.draw(st.sampled_from(ls.levels))
    steps = data.draw(st.integers(0, ls.group_order))
    b = ls.forward(a, steps)
    assert ls.distance(a, b) == min(steps, ls.group_order - steps)


@settings(max_examples=100)
@given(d=st.integers(1, 8), data=st.data())
def test_property_outwards_inverse(d, data):
    """ψ^{-j}(ψ^{j}(ℓ)) = ℓ whenever both sides are defined."""
    ls = LevelSystem(d)
    level = data.draw(st.sampled_from(ls.levels))
    j = data.draw(st.integers(-(abs(level) - 1), ls.k - abs(level)))
    assert ls.outwards(ls.outwards(level, j), -j) == level
