"""The permanent-fault resilience subsystem.

Covers the Byzantine/crash/noise strategies and their registry, the
engine-level masking and sparse-poke hooks, the
:class:`PermanentFaultAdversary` intervention (including step-for-step
bit-identity between the object and array engines under every
strategy), and the containment analytics (hop distances, the clean
mask's object/vectorized agreement, containment radius, the
``stabilized_outside`` predicate, and the measurement harness).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.containment import (
    ContainmentTracker,
    clean_node_mask,
    clean_node_mask_codes,
    containment_radius,
    execution_clean_mask,
    execution_stabilized_outside,
    hop_distances,
    measure_containment,
    radius_of_mask,
    stabilized_outside,
)
from repro.core.algau import ThinUnison
from repro.core.turns import able, faulty
from repro.faults.injection import random_configuration, uniform_configuration
from repro.graphs.generators import damaged_clique, path, ring, star
from repro.model.configuration import Configuration
from repro.model.engine import create_execution
from repro.model.errors import ModelError
from repro.model.scheduler import (
    RandomSubsetScheduler,
    ShuffledRoundRobinScheduler,
    SynchronousScheduler,
)
from repro.resilience import (
    BYZANTINE_STRATEGIES,
    Crash,
    FrozenClock,
    Noisy,
    PermanentFaultAdversary,
    RandomClock,
    make_strategy,
    select_faulty_nodes,
    strategy_names,
)


def _execution(engine="object", n=8, d=2, seed=0, strategy=None, faulty_nodes=(0,)):
    rng = np.random.default_rng(seed)
    topology = damaged_clique(n, d, rng, damage=0.4)
    algorithm = ThinUnison(d)
    initial = random_configuration(algorithm, topology, rng)
    intervention = None
    if strategy is not None:
        intervention = PermanentFaultAdversary(strategy, faulty_nodes, rng=rng)
    return create_execution(
        topology,
        algorithm,
        initial,
        ShuffledRoundRobinScheduler(),
        rng=rng,
        intervention=intervention,
        engine=engine,
    )


class TestStrategies:
    def test_registry_and_factory(self):
        assert set(strategy_names()) == set(BYZANTINE_STRATEGIES) == {
            "frozen",
            "random",
            "oscillating",
            "targeted",
            "crash",
            "noisy",
        }
        for name in strategy_names():
            assert make_strategy(name).name == name

    def test_unknown_strategy_lists_valid_names(self):
        with pytest.raises(ValueError, match="frozen"):
            make_strategy("gaslight")

    @pytest.mark.parametrize(
        "build",
        [
            lambda: RandomClock(period=0),
            lambda: Crash(at=-1),
            lambda: Noisy(p=0.0),
            lambda: Noisy(p=1.5),
        ],
    )
    def test_parameter_validation(self, build):
        with pytest.raises(ModelError):
            build()

    @pytest.mark.parametrize("engine", ["object", "array"])
    def test_frozen_node_never_moves(self, engine):
        execution = _execution(engine=engine, strategy=FrozenClock(), faulty_nodes=(2,))
        before = execution.state_of(2)
        for _ in range(60):
            execution.step()
            assert execution.state_of(2) == before

    def test_frozen_at_level_overrides_the_start_state(self):
        execution = _execution(strategy=FrozenClock(level=1), faulty_nodes=(3,))
        execution.step()
        assert execution.state_of(3) == able(1)

    @pytest.mark.parametrize("engine", ["object", "array"])
    def test_random_clock_babbles(self, engine):
        execution = _execution(engine=engine, strategy=RandomClock(), faulty_nodes=(1,))
        seen = set()
        for _ in range(40):
            execution.step()
            seen.add(execution.state_of(1))
        assert len(seen) > 3  # a fresh random turn nearly every step

    def test_oscillating_flips_between_the_extremes(self):
        execution = _execution(strategy=make_strategy("oscillating"), faulty_nodes=(4,))
        k = execution.algorithm.levels.k
        seen = set()
        for _ in range(10):
            execution.step()
            seen.add(execution.state_of(4))
        assert seen == {able(k), able(-k)}

    def test_crash_behaves_until_the_crash_time(self):
        # Uniform benign start on a clique: nodes advance in unison, so
        # the crashing node provably moves before its crash time.
        rng = np.random.default_rng(0)
        topology = star(7)
        algorithm = ThinUnison(2)
        initial = uniform_configuration(algorithm, topology)
        adversary = PermanentFaultAdversary(Crash(at=12), (0,), rng=rng)
        execution = create_execution(
            topology,
            algorithm,
            initial,
            SynchronousScheduler(),
            rng=rng,
            intervention=adversary,
        )
        start = execution.state_of(0)
        moved_before = False
        for _ in range(12):
            execution.step()
            moved_before = moved_before or execution.state_of(0) != start
        assert moved_before
        frozen = execution.state_of(0)
        for _ in range(30):
            execution.step()
            assert execution.state_of(0) == frozen

    def test_noisy_node_still_runs_the_protocol(self):
        # With p < 1 the node is unmasked: between corruption hits it
        # executes delta like everyone else.
        execution = _execution(strategy=Noisy(p=0.2), faulty_nodes=(5,))
        assert execution.masked_nodes == frozenset()
        for _ in range(20):
            execution.step()
        assert execution.masked_nodes == frozenset()

    def test_targeted_picks_a_disrupting_turn(self):
        from repro.core.potential import disorder_potential

        execution = _execution(strategy=make_strategy("targeted"), faulty_nodes=(0,))
        algorithm = execution.algorithm
        execution.step()
        config = execution.configuration
        chosen = disorder_potential(algorithm, config)
        for turn in algorithm.turns.all_turns:
            assert chosen >= disorder_potential(algorithm, config.replace({0: turn}))


class TestEngineHooks:
    @pytest.mark.parametrize("engine", ["object", "array"])
    def test_masked_nodes_keep_their_state(self, engine):
        execution = _execution(engine=engine)
        execution.mask_nodes((0, 1))
        assert execution.masked_nodes == frozenset({0, 1})
        s0, s1 = execution.state_of(0), execution.state_of(1)
        for _ in range(30):
            record = execution.step()
            assert all(v not in (0, 1) for v, _, _ in record.changed)
        assert (execution.state_of(0), execution.state_of(1)) == (s0, s1)
        execution.mask_nodes(())
        assert execution.masked_nodes == frozenset()

    def test_mask_rejects_unknown_nodes(self):
        execution = _execution()
        with pytest.raises(ModelError):
            execution.mask_nodes((99,))

    @pytest.mark.parametrize("engine", ["object", "array"])
    def test_poke_states_overwrites_in_place(self, engine):
        execution = _execution(engine=engine)
        execution.poke_states({0: faulty(2), 3: able(-1)})
        assert execution.state_of(0) == faulty(2)
        assert execution.state_of(3) == able(-1)
        assert execution.configuration[0] == faulty(2)

    def test_array_poke_preserves_code_snapshots(self):
        execution = _execution(engine="array")
        snapshot = execution.codes.copy()
        view = execution.codes
        execution.poke_states({0: faulty(2)})
        assert (view == snapshot).all()  # earlier views are unaffected
        assert execution.codes[0] == execution.algorithm.encoding.encode(faulty(2))

    def test_poke_rejects_unknown_nodes(self):
        for engine in ("object", "array"):
            execution = _execution(engine=engine)
            with pytest.raises(Exception):
                execution.poke_states({42: able(1)})


class TestAdversary:
    def test_needs_at_least_one_node(self):
        with pytest.raises(ModelError):
            PermanentFaultAdversary(FrozenClock(), ())

    def test_rejects_foreign_nodes(self):
        execution = _execution()
        adversary = PermanentFaultAdversary(FrozenClock(), (50,))
        execution.intervention = adversary
        with pytest.raises(ModelError):
            execution.step()

    def test_select_faulty_nodes_bounds(self):
        rng = np.random.default_rng(0)
        topology = ring(10)
        nodes = select_faulty_nodes(topology, 0.25, rng)
        assert len(nodes) == 3 and len(set(nodes)) == 3
        with pytest.raises(ModelError):
            select_faulty_nodes(topology, 0.0, rng)
        with pytest.raises(ModelError):
            select_faulty_nodes(topology, 0.99, rng)

    @pytest.mark.parametrize("strategy_name", sorted(BYZANTINE_STRATEGIES))
    @pytest.mark.parametrize(
        "scheduler_factory",
        [
            SynchronousScheduler,
            ShuffledRoundRobinScheduler,
            lambda: RandomSubsetScheduler(0.5),
        ],
        ids=["sync", "shuffled-rr", "random-subset"],
    )
    def test_engines_bit_identical_under_permanent_faults(
        self, strategy_name, scheduler_factory
    ):
        """The subsystem's differential contract: same seeds, same
        strategy, same trajectory on both engines — step for step."""
        seed = 11
        rng = np.random.default_rng(seed)
        topology = damaged_clique(9, 2, rng, damage=0.4)
        algorithm = ThinUnison(2)
        initial = random_configuration(algorithm, topology, rng)
        engines = []
        for engine in ("object", "array"):
            adversary = PermanentFaultAdversary(
                make_strategy(strategy_name),
                (1, 4),
                rng=np.random.default_rng(seed + 1),
            )
            engines.append(
                create_execution(
                    topology,
                    algorithm,
                    initial,
                    scheduler_factory(),
                    rng=np.random.default_rng(seed + 2),
                    intervention=adversary,
                    engine=engine,
                )
            )
        reference, vectorized = engines
        for _ in range(50):
            ref_record = reference.step()
            vec_record = vectorized.step()
            assert ref_record.activated == vec_record.activated
            assert set(ref_record.changed) == set(vec_record.changed)
            assert ref_record.completed_round == vec_record.completed_round
            assert reference.configuration == vectorized.configuration
            assert reference.masked_nodes == vectorized.masked_nodes


class TestContainmentAnalytics:
    def test_hop_distances_multi_source(self):
        topology = path(7)
        distances = hop_distances(topology, (0, 6))
        assert distances.tolist() == [0, 1, 2, 3, 2, 1, 0]
        with pytest.raises(ModelError):
            hop_distances(topology, ())
        with pytest.raises(ModelError):
            hop_distances(topology, (9,))

    def test_clean_mask_reference_semantics(self):
        # path 0-1-2-3-4, faulty node 0.
        topology = path(5)
        algorithm = ThinUnison(topology.diameter)
        distances = hop_distances(topology, (0,))
        config = Configuration(
            topology,
            {0: able(4), 1: faulty(2), 2: able(2), 3: able(2), 4: able(3)},
        )
        clean = clean_node_mask(algorithm, config, distances)
        # 0 is the fault (never clean); 1 holds a faulty turn; 2 borders
        # the faulty-turned node 1 but that edge points inwards, so only
        # its outward edge to 3 counts (protected); 4 is adjacent to 3.
        assert clean.tolist() == [False, False, True, True, True]
        assert radius_of_mask(clean, distances) == 1
        assert containment_radius(algorithm, config, distances) == 1
        assert stabilized_outside(algorithm, config, distances, radius=1)
        assert not stabilized_outside(algorithm, config, distances, radius=0)

    @pytest.mark.parametrize("seed", range(6))
    def test_clean_mask_object_vs_vectorized(self, seed):
        rng = np.random.default_rng(seed)
        topology = damaged_clique(11, 2, rng, damage=0.4)
        algorithm = ThinUnison(2)
        config = random_configuration(algorithm, topology, rng)
        distances = hop_distances(topology, (int(rng.integers(topology.n)),))
        reference = clean_node_mask(algorithm, config, distances)
        codes = algorithm.encoding.encode_configuration(config)
        vectorized = clean_node_mask_codes(
            algorithm.vector_kernel(), codes, topology.inclusive_csr(), distances
        )
        assert reference.tolist() == vectorized.tolist()

    def test_execution_clean_mask_dispatches_per_engine(self):
        for engine in ("object", "array"):
            execution = _execution(engine=engine, strategy=FrozenClock())
            execution.run_rounds(3)
            distances = hop_distances(execution.topology, (0,))
            mask = execution_clean_mask(execution, distances)
            assert mask.dtype == bool and len(mask) == execution.topology.n
            assert not mask[0]  # the faulty node is never clean
            assert execution_stabilized_outside(
                execution, distances, radius=int(distances.max())
            )

    def test_tracker_records_radius_and_recovery(self):
        strategy = make_strategy("random")
        rng = np.random.default_rng(3)
        topology = ring(12)
        algorithm = ThinUnison(6)
        adversary = PermanentFaultAdversary(strategy, (0,), rng=rng)
        tracker = ContainmentTracker((0,))
        execution = create_execution(
            topology,
            algorithm,
            random_configuration(algorithm, topology, rng),
            ShuffledRoundRobinScheduler(),
            rng=rng,
            monitors=(tracker,),
            intervention=adversary,
            engine="array",
        )
        execution.run(max_rounds=30)
        assert tracker.rounds == 30
        assert len(tracker.radius_timeline) == 30
        assert tracker.last_unclean_round.max() <= 30
        assert tracker.last_unclean_round[0] == 0  # faulty: not tracked
        assert 0 <= tracker.stable_radius(10) <= int(tracker.distances.max())

    def test_measure_containment_end_to_end(self):
        rng = np.random.default_rng(5)
        topology = ring(16)
        algorithm = ThinUnison(8)
        faulty_nodes = select_faulty_nodes(topology, 0.08, rng)
        measurement = measure_containment(
            algorithm,
            topology,
            random_configuration(algorithm, topology, rng),
            ShuffledRoundRobinScheduler(),
            rng,
            faulty_nodes,
            make_strategy("frozen"),
            rounds=80,
            confirm_rounds=15,
        )
        assert measurement.rounds == 80
        assert measurement.faulty_nodes == faulty_nodes
        assert len(measurement.radius_timeline) == 80
        assert 0 <= measurement.stable_radius <= measurement.max_distance
        curve = measurement.recovery_by_distance()
        assert set(curve) <= set(range(1, measurement.max_distance + 1))
        assert sum(b["nodes"] for b in curve.values()) == topology.n - len(
            faulty_nodes
        )
        # Nodes beyond the stable radius were clean through the window.
        for v, d in enumerate(measurement.distances):
            if d > measurement.stable_radius:
                assert measurement.settled(v)
        assert 0.0 <= measurement.clean_fraction() <= 1.0

    def test_measure_containment_validates_bounds(self):
        rng = np.random.default_rng(0)
        topology = ring(8)
        algorithm = ThinUnison(4)
        initial = random_configuration(algorithm, topology, rng)
        with pytest.raises(ModelError):
            measure_containment(
                algorithm,
                topology,
                initial,
                SynchronousScheduler(),
                rng,
                (0,),
                FrozenClock(),
                rounds=0,
            )
        with pytest.raises(ModelError):
            measure_containment(
                algorithm,
                topology,
                initial,
                SynchronousScheduler(),
                rng,
                (0,),
                FrozenClock(),
                rounds=5,
                confirm_rounds=9,
            )
