"""Differential validation: the array engine vs the object-model reference.

The vectorized :class:`ArrayExecution` must be *bit-identical* to the
readable :class:`Execution` — same activation sets, same per-step
change-sets, same round boundaries, same configurations — for every
(graph, scheduler, D, fault-schedule) combination.  AlgAU is
deterministic and the rng stream is consumed only by the scheduler and
the fault injector, so running both engines from the same seeds must
produce the same trajectory; this suite checks that step for step on a
seeded matrix of 25+ combos, and property-tests the turn encoding the
array engine is built on.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algau import ThinUnison
from repro.core.encoding import TurnEncoding
from repro.core.predicates import is_good_graph
from repro.core.turns import Turn, able, faulty
from repro.faults.injection import (
    TransientFaultInjector,
    au_adversarial_suite,
    random_configuration,
)
from repro.graphs.generators import (
    damaged_clique,
    dumbbell,
    random_connected,
    ring,
    star,
    torus,
)
from repro.model.array_engine import ArrayExecution, supports_array_engine
from repro.model.engine import create_execution
from repro.model.errors import ModelError
from repro.model.execution import Execution
from repro.model.scheduler import (
    ExplicitScheduler,
    LaggardScheduler,
    RandomSubsetScheduler,
    RotatingScheduler,
    RoundRobinScheduler,
    ShuffledRoundRobinScheduler,
    SynchronousScheduler,
)
from repro.tasks.le import AlgLE


# ----------------------------------------------------------------------
# The differential matrix.
# ----------------------------------------------------------------------

GRAPHS = {
    "ring9": lambda seed: ring(9),
    "damaged10": lambda seed: damaged_clique(10, 2, np.random.default_rng(seed)),
    "torus3x4": lambda seed: torus(3, 4),
    "star7": lambda seed: star(7),
    "dumbbell": lambda seed: dumbbell(4, 2),
    "gnp12": lambda seed: random_connected(12, 0.35, np.random.default_rng(seed)),
}

SCHEDULERS = {
    "sync": lambda topo: SynchronousScheduler(),
    "round-robin": lambda topo: RoundRobinScheduler(),
    "shuffled-rr": lambda topo: ShuffledRoundRobinScheduler(),
    "random-subset": lambda topo: RandomSubsetScheduler(0.4),
    "laggard": lambda topo: LaggardScheduler(victim=1, period=5),
    "rotating": lambda topo: RotatingScheduler(list(topo.nodes), shift=1),
    "explicit": lambda topo: ExplicitScheduler(
        [tuple(topo.nodes[:2]), tuple(topo.nodes[2:]), tuple(topo.nodes)],
        repeat=True,
    ),
}

DS = (1, 2, 3)
FAULT_SCHEDULES = (None, (4, 11), (2, 9, 17))

# 6 graphs x 7 schedulers, with D / fault schedule / the cautious_af
# ablation / the seed cycling through the matrix: 42 seeded combos.
CASES = [
    (
        graph,
        sched,
        DS[i % len(DS)],
        FAULT_SCHEDULES[i % len(FAULT_SCHEDULES)],
        i % 5 != 0,
        1000 + 17 * i,
    )
    for i, (graph, sched) in enumerate(
        itertools.product(sorted(GRAPHS), sorted(SCHEDULERS))
    )
]

STEPS = 40


def _make_pair(graph_key, sched_key, d, fault_times, cautious_af, seed):
    """Two engines over the same instance with identically seeded rng
    streams (scheduler and fault injector included)."""
    topology = GRAPHS[graph_key](seed)
    algorithm = ThinUnison(d, cautious_af=cautious_af)
    initial = random_configuration(algorithm, topology, np.random.default_rng(seed + 1))
    executions = []
    for engine in ("object", "array"):
        intervention = None
        if fault_times is not None:
            intervention = TransientFaultInjector(
                algorithm,
                times=fault_times,
                fraction=0.3,
                rng=np.random.default_rng(seed + 2),
            )
        executions.append(
            create_execution(
                topology,
                algorithm,
                initial,
                SCHEDULERS[sched_key](topology),
                rng=np.random.default_rng(seed + 3),
                intervention=intervention,
                engine=engine,
            )
        )
    return executions


@pytest.mark.parametrize(
    "graph_key, sched_key, d, fault_times, cautious_af, seed",
    CASES,
    ids=[
        f"{g}-{s}-D{d}-faults{'0' if f is None else len(f)}"
        f"{'' if c else '-ablated'}"
        for g, s, d, f, c, _ in CASES
    ],
)
def test_step_for_step_equivalence(
    graph_key, sched_key, d, fault_times, cautious_af, seed
):
    reference, vectorized = _make_pair(
        graph_key, sched_key, d, fault_times, cautious_af, seed
    )
    assert isinstance(reference, Execution)
    assert isinstance(vectorized, ArrayExecution)
    algorithm = reference.algorithm
    for _ in range(STEPS):
        ref_record = reference.step()
        vec_record = vectorized.step()
        assert ref_record.t == vec_record.t
        assert ref_record.activated == vec_record.activated
        assert set(ref_record.changed) == set(vec_record.changed)
        assert ref_record.completed_round == vec_record.completed_round
        assert reference.configuration == vectorized.configuration
        assert vectorized.graph_is_good() == is_good_graph(
            algorithm, reference.configuration
        )
    assert reference.completed_rounds == vectorized.completed_rounds
    assert reference.rounds.boundaries == vectorized.rounds.boundaries


@pytest.mark.parametrize("start", ["random", "sign-split", "clock-tear", "all-faulty"])
def test_adversarial_starts_stabilize_identically(start):
    """Both engines report the same stabilization rounds from the named
    adversarial starts (the numbers feeding the Thm 1.1 benchmarks)."""
    from repro.analysis.stabilization import measure_au_stabilization

    d = 2
    algorithm = ThinUnison(d)
    topology = damaged_clique(12, d, np.random.default_rng(7))
    initial = au_adversarial_suite(algorithm, topology, np.random.default_rng(8))[start]
    results = [
        measure_au_stabilization(
            algorithm,
            topology,
            initial,
            ShuffledRoundRobinScheduler(),
            np.random.default_rng(9),
            max_rounds=100_000,
            engine=engine,
        )
        for engine in ("object", "array")
    ]
    assert results[0].stabilized and results[1].stabilized
    assert results[0].rounds == results[1].rounds
    assert results[0].steps == results[1].steps


def test_replace_configuration_mid_run():
    """Transient corruption via replace_configuration keeps the engines
    in lockstep (the fault-recovery experiment's code path)."""
    topology = ring(8)
    algorithm = ThinUnison(2)
    initial = random_configuration(algorithm, topology, np.random.default_rng(0))
    engines = [
        create_execution(
            topology,
            algorithm,
            initial,
            SynchronousScheduler(),
            rng=np.random.default_rng(1),
            engine=engine,
        )
        for engine in ("object", "array")
    ]
    for execution in engines:
        execution.run(max_steps=5)
    corrupted = engines[0].configuration.replace(
        {0: faulty(3), 3: able(-4), 5: faulty(-2)}
    )
    for execution in engines:
        execution.replace_configuration(corrupted)
    for _ in range(20):
        records = [execution.step() for execution in engines]
        assert set(records[0].changed) == set(records[1].changed)
    assert engines[0].configuration == engines[1].configuration


def test_array_engine_rejects_non_vectorizable_algorithms():
    topology = ring(8)
    algorithm = AlgLE(2)
    assert not supports_array_engine(algorithm)
    assert supports_array_engine(ThinUnison(1))
    initial = random_configuration(algorithm, topology, np.random.default_rng(0))
    with pytest.raises(ModelError):
        ArrayExecution(
            topology, algorithm, initial, SynchronousScheduler(),
            rng=np.random.default_rng(0),
        )
    with pytest.raises(ModelError):
        create_execution(
            topology,
            ThinUnison(1),
            random_configuration(ThinUnison(1), topology, np.random.default_rng(0)),
            SynchronousScheduler(),
            engine="simd",  # unknown engine name
        )


def test_delta_batch_matches_classify_pointwise():
    """ThinUnison.delta_batch with an activation mask agrees with the
    scalar successor() on every node, active or not."""
    topology = damaged_clique(11, 2, np.random.default_rng(4))
    for cautious_af in (True, False):
        algorithm = ThinUnison(2, cautious_af=cautious_af)
        encoding = algorithm.encoding
        kernel = algorithm.vector_kernel()
        csr = topology.inclusive_csr()
        rng = np.random.default_rng(5)
        config = random_configuration(algorithm, topology, rng)
        codes = encoding.encode_configuration(config)
        active = rng.random(topology.n) < 0.6
        presence = kernel.signal_presence(codes, csr)
        new_codes = algorithm.delta_batch(codes, presence, active=active)
        for v in topology.nodes:
            expected = (
                algorithm.successor(config[v], config.signal(v))
                if active[v]
                else config[v]
            )
            assert encoding.decode(int(new_codes[v])) == expected


# ----------------------------------------------------------------------
# Encoding round trips.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d", [1, 2, 3, 5])
def test_encoding_is_a_bijection(d):
    algorithm = ThinUnison(d)
    encoding = algorithm.encoding
    assert encoding.size == algorithm.state_space_size() == 12 * d + 6
    seen = set()
    for turn in algorithm.turns.all_turns:
        code = encoding.encode(turn)
        assert 0 <= code < encoding.size
        assert encoding.decode(code) == turn
        seen.add(code)
    assert seen == set(range(encoding.size))
    # Able codes coincide with clock values — the layout the kernel
    # relies on.
    for turn in algorithm.turns.able_turns:
        assert encoding.encode(turn) == algorithm.levels.clock_value(turn.level)


@settings(max_examples=60, deadline=None)
@given(
    d=st.integers(min_value=1, max_value=6),
    magnitude=st.integers(min_value=1, max_value=20),
    negative=st.booleans(),
    is_faulty=st.booleans(),
)
def test_encoding_round_trip_property(d, magnitude, negative, is_faulty):
    algorithm = ThinUnison(d)
    encoding = algorithm.encoding
    k = algorithm.levels.k
    level = -magnitude if negative else magnitude
    turn = Turn(level=level, faulty=is_faulty)
    if algorithm.turns.is_turn(turn):
        assert encoding.decode(encoding.encode(turn)) == turn
    else:
        with pytest.raises(ModelError):
            encoding.encode(turn)


@settings(max_examples=30, deadline=None)
@given(
    d=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_configuration_round_trip_property(d, seed):
    algorithm = ThinUnison(d)
    encoding = algorithm.encoding
    topology = ring(7)
    config = random_configuration(algorithm, topology, np.random.default_rng(seed))
    codes = encoding.encode_configuration(config)
    assert codes.shape == (topology.n,)
    assert encoding.decode_configuration(topology, codes) == config
    # And the reverse direction: arbitrary valid code vectors survive a
    # decode/encode round trip.
    rng = np.random.default_rng(seed + 1)
    arbitrary = rng.integers(0, encoding.size, size=topology.n)
    decoded = encoding.decode_configuration(topology, arbitrary)
    assert np.array_equal(encoding.encode_configuration(decoded), arbitrary)


def test_encoding_rejects_garbage():
    encoding = TurnEncoding(ThinUnison(1).turns)
    with pytest.raises(ModelError):
        encoding.decode(encoding.size)
    with pytest.raises(ModelError):
        encoding.decode(-1)
    with pytest.raises(ModelError):
        encoding.encode(faulty(1))  # |ℓ| = 1 has no faulty turn
    with pytest.raises(ModelError):
        encoding.decode_configuration(ring(4), np.array([0, 1, encoding.size, 2]))


# ----------------------------------------------------------------------
# The dirty-set differential suite: incremental pipeline vs the naive
# full-recompute reference.
# ----------------------------------------------------------------------

#: (graph, scheduler, fault kind).  Fault kinds cover every way state
#: mutates outside the step pipeline: transient storms (configuration
#: replacement), Byzantine strategies (per-step pokes + masking),
#: crash-stop (delayed masking), and ``none`` as the control.
FAULT_KINDS = ("none", "storm", "byz-frozen", "byz-random", "byz-oscillating", "crash")

INCREMENTAL_CASES = [
    (graph, sched, FAULT_KINDS[i % len(FAULT_KINDS)], 3000 + 31 * i)
    for i, (graph, sched) in enumerate(
        itertools.product(sorted(GRAPHS), sorted(SCHEDULERS))
    )
]


def _make_variant(topology, initial, sched_key, fault_kind, seed, engine, incremental):
    """One execution with identically seeded rng streams regardless of
    engine/pipeline variant (topology and start shared across variants)."""
    from repro.resilience.adversary import PermanentFaultAdversary
    from repro.resilience.strategies import Crash, make_strategy

    algorithm = ThinUnison(2)
    intervention = None
    if fault_kind == "storm":
        intervention = TransientFaultInjector(
            algorithm,
            times=(3, 9, 21),
            fraction=0.3,
            rng=np.random.default_rng(seed + 2),
        )
    elif fault_kind.startswith("byz-") or fault_kind == "crash":
        if fault_kind == "crash":
            strategy = Crash(at=7)
        else:
            strategy = make_strategy(fault_kind[len("byz-") :])
        nodes = (1, topology.n - 2)
        intervention = PermanentFaultAdversary(
            strategy, nodes, rng=np.random.default_rng(seed + 2)
        )
    return create_execution(
        topology,
        algorithm,
        initial,
        SCHEDULERS[sched_key](topology),
        rng=np.random.default_rng(seed + 3),
        intervention=intervention,
        engine=engine,
        incremental=incremental,
    )


class TestIncrementalPipelineDifferential:
    """The incremental dirty-set pipeline must be bit-identical to the
    naive full-recompute reference — per engine exact record streams,
    across engines equal change sets — under every fault regime,
    including the permanent-fault adversaries that poke and mask nodes
    between steps."""

    @pytest.mark.parametrize(
        "graph_key, sched_key, fault_kind, seed",
        INCREMENTAL_CASES,
        ids=[f"{g}-{s}-{f}" for g, s, f, _ in INCREMENTAL_CASES],
    )
    def test_incremental_matches_naive_reference(
        self, graph_key, sched_key, fault_kind, seed
    ):
        topology = GRAPHS[graph_key](seed)
        initial = random_configuration(
            ThinUnison(2), topology, np.random.default_rng(seed + 1)
        )
        variants = {
            (engine, incremental): _make_variant(
                topology, initial, sched_key, fault_kind, seed, engine, incremental
            )
            for engine in ("object", "array")
            for incremental in (True, False)
        }
        reference = variants[("object", False)]
        others = [(key, ex) for key, ex in variants.items() if ex is not reference]
        for step in range(45):
            ref_record = reference.step()
            ref_good = reference.graph_is_good()
            ref_enabled = reference.enabled_count()
            for key, execution in others:
                record = execution.step()
                assert record.t == ref_record.t
                assert record.activated == ref_record.activated, (key, step)
                if key[0] == "object":
                    # Same engine ⇒ the change tuple is bit-identical
                    # (ordering included).
                    assert record.changed == ref_record.changed, (key, step)
                else:
                    assert set(record.changed) == set(ref_record.changed), (key, step)
                assert record.completed_round == ref_record.completed_round
                assert execution.graph_is_good() == ref_good, (key, step)
                assert execution.enabled_count() == ref_enabled, (key, step)
        for key, execution in others:
            assert execution.configuration == reference.configuration, key
            assert execution.masked_nodes == reference.masked_nodes, key

    @pytest.mark.parametrize("engine", ["object", "array"])
    def test_array_incremental_streams_are_bit_identical(self, engine):
        """Within one engine the incremental pipeline reproduces the
        naive reference's records *exactly* — tuple order included."""
        topology = GRAPHS["damaged10"](99)
        initial = random_configuration(
            ThinUnison(2), topology, np.random.default_rng(100)
        )
        runs = []
        for incremental in (True, False):
            execution = _make_variant(
                topology, initial, "round-robin", "none", 99, engine, incremental
            )
            runs.append([execution.step() for _ in range(120)])
        for a, b in zip(*runs):
            assert a == b

    @pytest.mark.parametrize("engine", ["object", "array"])
    @pytest.mark.parametrize("seed", range(3))
    def test_rewire_recovery_matches_naive(self, engine, seed):
        """Dynamic-topology perturbations: a carried-over configuration
        starts a fresh pipeline whose streams still match the naive
        reference on the rewired graph."""
        from repro.faults.injection import carry_configuration, perturb_topology

        rng = np.random.default_rng(seed)
        topology = damaged_clique(10, 2, rng, damage=0.4)
        algorithm = ThinUnison(2)
        initial = random_configuration(algorithm, topology, rng)
        warm = create_execution(
            topology,
            algorithm,
            initial,
            ShuffledRoundRobinScheduler(),
            rng=np.random.default_rng(seed + 1),
            engine=engine,
        )
        warm.run(max_steps=60)
        perturbation = perturb_topology(topology, rng, remove=2, add=2)
        carried = carry_configuration(warm.configuration, perturbation.topology)
        runs = []
        for incremental in (True, False):
            execution = create_execution(
                perturbation.topology,
                algorithm,
                carried,
                ShuffledRoundRobinScheduler(),
                rng=np.random.default_rng(seed + 2),
                engine=engine,
                incremental=incremental,
            )
            records = []
            for _ in range(60):
                records.append(execution.step())
                records.append(execution.graph_is_good())
            runs.append((records, execution.configuration))
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]

    @pytest.mark.parametrize("engine", ["object", "array"])
    def test_pokes_and_masks_re_dirty_conservatively(self, engine):
        """Out-of-band state writes (poke_states) and mask flips must
        re-dirty affected neighborhoods: the incremental pipeline stays
        in lockstep with the naive reference through all of them."""
        topology = ring(9)
        algorithm = ThinUnison(2)
        initial = random_configuration(algorithm, topology, np.random.default_rng(5))
        pair = [
            create_execution(
                topology,
                algorithm,
                initial,
                RoundRobinScheduler(),
                rng=np.random.default_rng(6),
                engine=engine,
                incremental=incremental,
            )
            for incremental in (True, False)
        ]
        for burst in range(4):
            for execution in pair:
                execution.poke_states({burst: faulty(3), (burst + 4) % 9: able(-2)})
                execution.mask_nodes((burst,))
            for step in range(12):
                records = [execution.step() for execution in pair]
                assert records[0] == records[1], (burst, step)
                assert pair[0].graph_is_good() == pair[1].graph_is_good()
                assert pair[0].enabled_count() == pair[1].enabled_count()
            for execution in pair:
                execution.mask_nodes(())
        assert pair[0].configuration == pair[1].configuration

    @pytest.mark.parametrize("engine", ["object", "array"])
    def test_enabled_view_matches_brute_force(self, engine):
        """The maintained enabled set equals the definition: support of
        δ not contained in the current state — after steps, pokes and
        masking alike."""
        topology = damaged_clique(9, 2, np.random.default_rng(3))
        algorithm = ThinUnison(2)
        initial = random_configuration(algorithm, topology, np.random.default_rng(4))
        execution = create_execution(
            topology,
            algorithm,
            initial,
            ShuffledRoundRobinScheduler(),
            rng=np.random.default_rng(5),
            engine=engine,
        )

        def brute_force():
            config = execution.configuration
            return frozenset(
                v
                for v in topology.nodes
                if v not in execution.masked_nodes
                and algorithm.successor(config[v], config.signal(v)) != config[v]
            )

        assert execution.enabled_nodes() == brute_force()
        for step in range(30):
            execution.step()
            assert execution.enabled_nodes() == brute_force(), step
            assert execution.enabled_count() == len(brute_force())
            assert execution.is_quiescent() == (not brute_force())
        execution.poke_states({0: faulty(4), 5: able(1)})
        assert execution.enabled_nodes() == brute_force()
        execution.mask_nodes((0, 2))
        assert execution.enabled_nodes() == brute_force()
        execution.mask_nodes(())
        assert execution.enabled_nodes() == brute_force()


# ----------------------------------------------------------------------
# Dynamic topology (perturb/carry) under the array engine.
# ----------------------------------------------------------------------


class TestDynamicTopologyOnArrayEngine:
    """The rewire flow — ``perturb_topology`` + ``carry_configuration``
    — was only differentially covered on the object engine; these tests
    drive it through the vectorized backend."""

    @pytest.mark.parametrize("seed", range(4))
    def test_post_rewire_step_for_step_equivalence(self, seed):
        from repro.faults.injection import carry_configuration, perturb_topology

        rng = np.random.default_rng(seed)
        topology = damaged_clique(10, 2, rng, damage=0.4)
        algorithm = ThinUnison(2)
        initial = random_configuration(algorithm, topology, rng)

        # Stabilize on the array engine first (the carried configuration
        # should be a genuinely evolved one, not a random start).
        execution = create_execution(
            topology,
            algorithm,
            initial,
            ShuffledRoundRobinScheduler(),
            rng=np.random.default_rng(seed + 1),
            engine="array",
        )
        execution.run(max_rounds=5000, until=lambda e: e.graph_is_good())
        assert execution.graph_is_good()

        perturbation = perturb_topology(topology, rng, remove=2, add=2)
        carried = carry_configuration(
            execution.configuration, perturbation.topology
        )
        assert carried.states() == execution.configuration.states()

        engines = [
            create_execution(
                perturbation.topology,
                algorithm,
                carried,
                ShuffledRoundRobinScheduler(),
                rng=np.random.default_rng(seed + 2),
                engine=engine,
            )
            for engine in ("object", "array")
        ]
        reference, vectorized = engines
        for _ in range(40):
            ref_record = reference.step()
            vec_record = vectorized.step()
            assert ref_record.activated == vec_record.activated
            assert set(ref_record.changed) == set(vec_record.changed)
            assert reference.configuration == vectorized.configuration
            assert vectorized.graph_is_good() == reference.graph_is_good()

    def test_rewire_scenario_results_identical_across_engines(self):
        from repro.campaigns import FaultPlan, Scenario, run_scenario

        measured = {}
        for engine in ("object", "array"):
            scenario = Scenario(
                campaign="test",
                index=0,
                task="au",
                graph="damaged-clique",
                graph_params=(("n", 10), ("diameter_bound", 2), ("damage", 0.4)),
                diameter_bound=2,
                scheduler="shuffled-round-robin",
                engine=engine,
                start="random",
                seed=123,
                max_rounds=20_000,
                faults=FaultPlan(kind="rewire", remove=2, add=1),
            )
            result = run_scenario(scenario)
            assert result.stabilized and result.recovered
            measured[engine] = (
                result.stabilized,
                result.rounds,
                result.steps,
                result.recovered,
                result.recovery_rounds,
                result.n,
                result.m,
            )
        assert measured["object"] == measured["array"]

    def test_carried_codes_match_object_restart(self):
        """Re-homing a configuration onto a rewired topology yields the
        same code vector the object engine would encode."""
        from repro.faults.injection import carry_configuration, perturb_topology

        rng = np.random.default_rng(7)
        topology = damaged_clique(9, 2, rng, damage=0.4)
        algorithm = ThinUnison(2)
        config = random_configuration(algorithm, topology, rng)
        perturbation = perturb_topology(topology, rng, remove=1, add=2)
        carried = carry_configuration(config, perturbation.topology)
        execution = create_execution(
            perturbation.topology,
            algorithm,
            carried,
            SynchronousScheduler(),
            rng=rng,
            engine="array",
        )
        expected = algorithm.encoding.encode_configuration(carried)
        assert np.array_equal(execution.codes, expected)
