"""RandPhase mechanics — Lemma 3.5 and Corollary 3.6 on executions.

The MIS phase structure rests on a delicate fact: once the last flagged
node resets its flag, all step counters align to D concurrently and the
final three increments (D → D+1 → D+2 → new phase) are simultaneous for
every node.  These tests watch real AlgMIS executions and assert the
paper's conditions directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.injection import uniform_configuration
from repro.graphs.generators import complete_graph, damaged_clique, ring, star
from repro.model.execution import Execution
from repro.model.scheduler import SynchronousScheduler
from repro.tasks.mis import AlgMIS, MISState


def mis_states(execution):
    config = execution.configuration
    return [config[v] for v in execution.topology.nodes]


def run_phases(topology, d, seed, rounds):
    """Run AlgMIS synchronously from q*_0; yield the state list per
    round."""
    alg = AlgMIS(d)
    rng = np.random.default_rng(seed)
    execution = Execution(
        topology,
        alg,
        uniform_configuration(alg, topology),
        SynchronousScheduler(),
        rng=rng,
    )
    history = [mis_states(execution)]
    for _ in range(rounds):
        execution.step()
        history.append(mis_states(execution))
    return alg, history


@pytest.mark.parametrize(
    "topology_factory,d",
    [
        (lambda rng: complete_graph(6), 1),
        (lambda rng: star(7), 2),
        (lambda rng: damaged_clique(8, 2, rng), 2),
        (lambda rng: ring(6), 3),
    ],
)
@pytest.mark.parametrize("seed", range(3))
class TestLemma35OnExecutions:
    def test_steps_stay_valid_and_transitions_concurrent(
        self, topology_factory, d, seed
    ):
        rng = np.random.default_rng(seed + 17)
        topology = topology_factory(rng)
        alg, history = run_phases(topology, d, seed, rounds=120)

        for states in history:
            if not all(isinstance(s, MISState) for s in states):
                continue  # a Restart may legitimately trigger (rare ties)
            # Edge validity (|step difference| <= 1 across edges).
            for u, v in topology.edges:
                assert abs(states[u].step - states[v].step) <= 1

        # Cor 3.6: whenever any node holds step = D+1 or D+2, all do.
        for states in history:
            if not all(isinstance(s, MISState) for s in states):
                continue
            steps = {s.step for s in states}
            if (d + 1) in steps:
                assert steps == {d + 1}
            if (d + 2) in steps:
                assert steps == {d + 2}

    def test_phase_boundaries_are_concurrent(self, topology_factory, d, seed):
        """All nodes reset step to 0 in the same round."""
        rng = np.random.default_rng(seed + 31)
        topology = topology_factory(rng)
        alg, history = run_phases(topology, d, seed + 5, rounds=120)
        for before, after in zip(history, history[1:]):
            if not all(isinstance(s, MISState) for s in before + after):
                continue
            resets = [
                v
                for v in topology.nodes
                if before[v].step == d + 2 and after[v].step == 0
            ]
            if resets:
                assert len(resets) == topology.n

    def test_parity_realigns_at_phase_start(self, topology_factory, d, seed):
        rng = np.random.default_rng(seed + 43)
        topology = topology_factory(rng)
        alg, history = run_phases(topology, d, seed + 9, rounds=120)
        for states in history:
            if not all(isinstance(s, MISState) for s in states):
                continue
            if {s.step for s in states} == {0} and all(s.flag for s in states):
                # A fresh phase: parity agreed everywhere.
                assert len({s.parity for s in states}) == 1


class TestPrefixLengthDistribution:
    """The random prefix is max-of-geometrics long: it grows with n."""

    def measure_prefix(self, n, seed):
        topology = complete_graph(n)
        alg = AlgMIS(1)
        rng = np.random.default_rng(seed)
        execution = Execution(
            topology,
            alg,
            uniform_configuration(alg, topology),
            SynchronousScheduler(),
            rng=rng,
        )
        rounds = 0
        while rounds < 1000:
            execution.step()
            rounds += 1
            states = mis_states(execution)
            if not all(isinstance(s, MISState) for s in states):
                return None
            if all(not s.flag for s in states):
                return rounds
        return None

    def test_prefix_grows_with_n(self):
        small = [self.measure_prefix(2, seed) for seed in range(12)]
        large = [self.measure_prefix(24, seed) for seed in range(12)]
        small = [x for x in small if x is not None]
        large = [x for x in large if x is not None]
        assert small and large
        assert np.mean(large) > np.mean(small)
