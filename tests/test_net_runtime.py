"""The asyncio message-passing deployment runtime (``repro.net``).

Four layers of coverage:

* units — the virtual-time event loop, fair-lossy link model, and
  timeout failure detectors;
* parity — under zero-delay/zero-loss links the net runtime's whole
  trajectory (activation sets, change sets, round boundaries, final
  configurations) is bit-identical to the ``array`` simulation engine;
* noise — lossy/delayed links slow stabilization boundedly but never
  prevent it, and the message counters stay consistent;
* integration — the ``net-smoke`` campaign's sim/net pairings agree on
  every measured column, elections pass the LE task oracle, and the
  runner's per-scenario wall-clock timeout guard produces deterministic
  ``status="timeout"`` rows.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.campaigns import (
    Scenario,
    aggregate_results,
    build_campaign,
    run_campaign,
    run_scenario,
    verify_engine_pairing,
)
from repro.campaigns.registry import derive_seed
from repro.core.algau import ThinUnison
from repro.faults.injection import random_configuration, uniform_configuration
from repro.graphs.biological import quorum_colony
from repro.graphs.generators import random_connected, ring
from repro.model.engine import create_execution
from repro.model.errors import ModelError
from repro.model.scheduler import (
    EnabledOnlyScheduler,
    ShuffledRoundRobinScheduler,
    SynchronousScheduler,
)
from repro.net import (
    ExcludeOnTimeout,
    FairLossyLink,
    IncreasingTimeout,
    LinkConfig,
    NetDeadlockError,
    VirtualTimeLoop,
    create_net_execution,
    elect_monarch,
    run_lcr_election,
    run_monarchical_election,
)
from repro.tasks.spec import check_le_output


class _PoisonRng:
    """A stand-in rng whose every draw fails the test."""

    def __getattr__(self, name):
        raise AssertionError(f"rng.{name} consumed on a noiseless path")


# ----------------------------------------------------------------------
# Virtual time.
# ----------------------------------------------------------------------


class TestVirtualTime:
    @pytest.mark.timeout(30)
    def test_sleep_advances_virtual_time_without_wall_clock(self):
        loop = VirtualTimeLoop()
        try:
            before = loop.time()
            loop.run_until_complete(asyncio.sleep(1000.0))
            assert loop.time() - before == pytest.approx(1000.0)
        finally:
            loop.close()

    @pytest.mark.timeout(30)
    def test_waiting_forever_raises_deadlock_instead_of_hanging(self):
        loop = VirtualTimeLoop()
        try:
            with pytest.raises(NetDeadlockError):
                loop.run_until_complete(loop.create_future())
        finally:
            loop.close()

    @pytest.mark.timeout(30)
    def test_timers_fire_in_virtual_order(self):
        loop = VirtualTimeLoop()
        fired = []
        try:
            loop.call_later(3.0, fired.append, "late")
            loop.call_later(1.0, fired.append, "early")
            loop.run_until_complete(asyncio.sleep(5.0))
            assert fired == ["early", "late"]
        finally:
            loop.close()


# ----------------------------------------------------------------------
# Links.
# ----------------------------------------------------------------------


class TestLinks:
    def test_config_validation(self):
        with pytest.raises(ModelError):
            LinkConfig(delay=-1.0)
        with pytest.raises(ModelError):
            LinkConfig(loss=1.0)
        with pytest.raises(ModelError):
            LinkConfig(duplicate=1.5)
        with pytest.raises(ModelError):
            LinkConfig(max_consecutive_loss=0)
        with pytest.raises(ModelError):
            LinkConfig.from_params({"latency": 1.0})

    def test_is_noiseless(self):
        # A fixed delay is deterministic; only jitter/loss/duplication
        # introduce randomness.
        assert LinkConfig().is_noiseless
        assert LinkConfig(delay=0.5).is_noiseless
        assert not LinkConfig(jitter=0.2).is_noiseless
        assert not LinkConfig(loss=0.1).is_noiseless
        assert not LinkConfig(duplicate=0.1).is_noiseless

    def test_noiseless_transmit_consumes_no_randomness(self):
        link = FairLossyLink(LinkConfig())
        assert link.transmit(_PoisonRng()) == (0.0,)

    def test_fair_lossy_bounds_drop_streaks(self):
        config = LinkConfig(loss=0.9, max_consecutive_loss=3)
        link = FairLossyLink(config)
        rng = np.random.default_rng(7)
        streak = worst = 0
        for _ in range(2000):
            if link.transmit(rng):
                streak = 0
            else:
                streak += 1
                worst = max(worst, streak)
        assert worst == config.max_consecutive_loss

    def test_duplicate_emits_two_latencies(self):
        link = FairLossyLink(LinkConfig(duplicate=0.999999, jitter=0.5))
        rng = np.random.default_rng(0)
        latencies = link.transmit(rng)
        assert len(latencies) == 2
        assert all(0.0 <= latency < 0.5 for latency in latencies)


# ----------------------------------------------------------------------
# Failure detectors.
# ----------------------------------------------------------------------


class TestDetectors:
    def test_exclude_on_timeout_suspects_silent_peers_permanently(self):
        detector = ExcludeOnTimeout(peers=(1, 2), timeout=3.0)
        assert detector.observe(2.0, {1: 1.0, 2: 1.5}) == frozenset()
        assert detector.observe(6.0, {1: 5.0, 2: 1.5}) == frozenset({2})
        # Even a late heartbeat does not restore an excluded peer.
        assert detector.observe(7.0, {1: 6.5, 2: 6.9}) == frozenset({2})
        assert detector.trusted() == frozenset({1})

    def test_increasing_timeout_recovers_and_backs_off(self):
        detector = IncreasingTimeout(peers=(1,), timeout=2.0, factor=2.0)
        assert detector.observe(5.0, {1: 1.0}) == frozenset({1})
        # The peer was merely slow: hearing it again restores trust and
        # doubles its timeout so the mistake is not repeated.
        assert detector.observe(6.0, {1: 5.5}) == frozenset()
        assert detector.false_suspicions == 1
        assert detector.timeouts[1] == pytest.approx(4.0)
        assert detector.observe(9.0, {1: 5.5}) == frozenset()
        assert detector.observe(10.0, {1: 5.5}) == frozenset({1})


# ----------------------------------------------------------------------
# Elections (LE oracle = thm13's checker).
# ----------------------------------------------------------------------


class TestElections:
    @pytest.mark.timeout(60)
    def test_lcr_elects_the_max_uid_on_clean_links(self):
        uids = [31, 2, 57, 11, 40]
        result = run_lcr_election(uids)
        assert result.leader == uids.index(57)
        assert check_le_output(result.outputs).valid

    @pytest.mark.timeout(60)
    def test_lcr_survives_lossy_duplicating_links(self):
        uids = [5, 9, 1, 14, 3, 8]
        clean = run_lcr_election(uids)
        noisy = run_lcr_election(
            uids,
            link_config=LinkConfig(loss=0.3, duplicate=0.2, jitter=0.5),
            seed=11,
        )
        assert noisy.leader == clean.leader == uids.index(14)
        assert check_le_output(noisy.outputs).valid
        assert noisy.slots >= clean.slots  # noise can only slow it down

    def test_elect_monarch_rule(self):
        assert elect_monarch(range(6), suspected=(5, 3)) == 4
        with pytest.raises(ModelError):
            elect_monarch((0, 1), suspected=(0, 1))

    @pytest.mark.timeout(60)
    @pytest.mark.parametrize("detector", ["exclude", "increasing"])
    def test_monarchical_election_excludes_crashed_monarch(self, detector):
        result = run_monarchical_election(
            6, crashed=(5,), timeout=4.0, detector=detector
        )
        assert result.leader == 4
        assert check_le_output(result.outputs).valid
        for node, suspected in result.suspected.items():
            assert 5 in suspected

    @pytest.mark.timeout(60)
    def test_monarchical_election_under_lossy_links(self):
        # Fair-lossy links bound heartbeat gaps, so a generous timeout
        # never false-suspects and the full clique elects its max.
        result = run_monarchical_election(
            5,
            link_config=LinkConfig(loss=0.3),
            timeout=8.0,
            seed=3,
        )
        assert result.leader == 4
        assert check_le_output(result.outputs).valid


# ----------------------------------------------------------------------
# Zero-noise parity with the array engine.
# ----------------------------------------------------------------------


def _parity_pair(topology, d, scheduler_cls, start, seed):
    algorithm = ThinUnison(d)
    if start == "uniform":
        initial = uniform_configuration(algorithm, topology)
    else:
        initial = random_configuration(
            algorithm, topology, np.random.default_rng(seed)
        )
    sim = create_execution(
        topology,
        algorithm,
        initial,
        scheduler_cls(),
        rng=np.random.default_rng(seed + 1),
        engine="array",
    )
    net = create_net_execution(
        topology,
        ThinUnison(d),
        initial,
        scheduler_cls(),
        rng=np.random.default_rng(seed + 1),
    )
    return sim, net


class TestZeroNoiseParity:
    @pytest.mark.timeout(120)
    @pytest.mark.parametrize(
        "scheduler_cls", [SynchronousScheduler, ShuffledRoundRobinScheduler]
    )
    def test_step_records_are_bit_identical(self, scheduler_cls):
        sim, net = _parity_pair(ring(10), 5, scheduler_cls, "random", seed=42)
        try:
            for _ in range(120):
                a = sim.step()
                b = net.step()
                assert a.t == b.t
                assert a.activated == b.activated
                assert sorted(a.changed) == sorted(b.changed)
                assert a.completed_round == b.completed_round
            assert sim.configuration == net.configuration
        finally:
            net.close()

    @pytest.mark.timeout(120)
    def test_stabilization_round_matches_on_gnp(self):
        topology = random_connected(12, 0.5, np.random.default_rng(5))
        sim, net = _parity_pair(
            topology, 4, SynchronousScheduler, "random", seed=9
        )
        try:
            sim.run(max_rounds=2000, until=lambda e: e.graph_is_good())
            net.run(max_rounds=2000, until=lambda e: e.graph_is_good())
            assert sim.graph_is_good() and net.graph_is_good()
            assert sim.completed_rounds == net.completed_rounds
            assert sim.configuration == net.configuration
        finally:
            net.close()

    @pytest.mark.timeout(120)
    def test_poke_and_mask_keep_parity(self):
        topology = quorum_colony(10, 2, np.random.default_rng(2))
        sim, net = _parity_pair(
            topology, 2, SynchronousScheduler, "random", seed=17
        )
        try:
            algorithm = ThinUnison(2)
            corrupt = {3: algorithm.random_state(np.random.default_rng(0))}
            for execution in (sim, net):
                execution.run_rounds(2)
                execution.poke_states(corrupt)
                execution.mask_nodes({1})
                execution.run_rounds(6)
            assert sim.configuration == net.configuration
        finally:
            net.close()


# ----------------------------------------------------------------------
# Noisy links: bounded slowdown, consistent counters.
# ----------------------------------------------------------------------


class TestNoisyLinks:
    @pytest.mark.timeout(120)
    def test_lossy_delayed_links_slow_but_do_not_break_stabilization(self):
        topology = ring(10)
        algorithm = ThinUnison(5)
        initial = random_configuration(
            algorithm, topology, np.random.default_rng(3)
        )

        def rounds_under(config):
            execution = create_net_execution(
                topology,
                ThinUnison(5),
                initial,
                SynchronousScheduler(),
                rng=np.random.default_rng(4),
                link_config=config,
                noise_seed=8,
            )
            try:
                execution.run(
                    max_rounds=2000, until=lambda e: e.graph_is_good()
                )
                assert execution.graph_is_good()
                return execution.completed_rounds, execution.stats
            finally:
                execution.close()

        clean_rounds, clean_stats = rounds_under(LinkConfig())
        noisy_rounds, noisy_stats = rounds_under(
            LinkConfig(delay=0.7, jitter=0.4, loss=0.2, duplicate=0.1)
        )
        assert clean_rounds <= noisy_rounds <= 20 * clean_rounds
        assert clean_stats.messages_dropped == 0
        assert clean_stats.messages_duplicated == 0
        assert clean_stats.messages_delivered == clean_stats.messages_sent
        assert noisy_stats.messages_dropped > 0
        assert noisy_stats.messages_duplicated > 0
        # Conservation: every sent or duplicated message is either
        # delivered or dropped (none outstanding after quiescence...
        # in-flight messages at stop time are the slack).
        assert noisy_stats.messages_delivered <= (
            noisy_stats.messages_sent + noisy_stats.messages_duplicated
        )

    @pytest.mark.timeout(120)
    def test_noise_seed_changes_trajectory_not_outcome(self):
        topology = ring(8)
        algorithm = ThinUnison(4)
        initial = random_configuration(
            algorithm, topology, np.random.default_rng(0)
        )
        rounds = []
        for noise_seed in (1, 2):
            execution = create_net_execution(
                topology,
                ThinUnison(4),
                initial,
                SynchronousScheduler(),
                rng=np.random.default_rng(1),
                link_config=LinkConfig(loss=0.3),
                noise_seed=noise_seed,
            )
            try:
                execution.run(
                    max_rounds=2000, until=lambda e: e.graph_is_good()
                )
                assert execution.graph_is_good()
                rounds.append(execution.completed_rounds)
            finally:
                execution.close()
        assert all(r >= 1 for r in rounds)


# ----------------------------------------------------------------------
# NetExecution contract edges.
# ----------------------------------------------------------------------


class TestNetExecutionContract:
    def _execution(self, **kwargs):
        topology = ring(6)
        algorithm = ThinUnison(3)
        initial = uniform_configuration(algorithm, topology)
        return create_net_execution(
            topology,
            algorithm,
            initial,
            kwargs.pop("scheduler", SynchronousScheduler()),
            rng=np.random.default_rng(0),
            **kwargs,
        )

    def test_enabled_aware_schedulers_are_rejected(self):
        with pytest.raises(ModelError, match="enabled"):
            self._execution(scheduler=EnabledOnlyScheduler())

    def test_track_enabled_is_rejected(self):
        from repro.net import NetExecution

        topology = ring(6)
        algorithm = ThinUnison(3)
        with pytest.raises(ModelError, match="track_enabled"):
            NetExecution(
                topology,
                algorithm,
                uniform_configuration(algorithm, topology),
                SynchronousScheduler(),
                rng=np.random.default_rng(0),
                track_enabled=True,
            )

    def test_poke_states_rejects_unknown_nodes(self):
        execution = self._execution()
        try:
            with pytest.raises(ModelError, match="unknown"):
                execution.poke_states({99: None})
        finally:
            execution.close()

    @pytest.mark.timeout(60)
    def test_crash_node_freezes_the_actor(self):
        execution = self._execution()
        try:
            execution.crash_node(2)
            execution.run_rounds(3)
            # A crashed node never acts, so every heard-from timestamp
            # of its neighbors excludes it after the crash slot.
            assert 2 in execution._masked
            assert execution.stats.acts > 0
        finally:
            execution.close()

    def test_close_is_idempotent(self):
        execution = self._execution()
        execution.close()
        execution.close()

    @pytest.mark.timeout(60)
    def test_virtual_time_tracks_completed_rounds(self):
        execution = self._execution()
        try:
            execution.run_rounds(4)
            assert execution.virtual_time == pytest.approx(4.0)
        finally:
            execution.close()


# ----------------------------------------------------------------------
# Campaign integration: the acceptance differential grid.
# ----------------------------------------------------------------------


class TestNetSmokeCampaign:
    @pytest.mark.timeout(300)
    def test_sim_and_net_lanes_agree_on_every_pairing(self):
        """The PR's acceptance bar: under zero-noise links every
        ``net-smoke`` pairing (ring/gnp/colony x uniform/random x
        synchronous/shuffled x none/byzantine/crash) must be
        bit-identical across the sim and net lanes."""
        scenarios = build_campaign("net-smoke", seed=0)
        results = run_campaign(scenarios, workers=1)
        payload = aggregate_results("net-smoke", scenarios, results, 0)
        rows = payload["rows"]
        assert payload["failures"] == []
        assert [r for r in rows if r["status"]] == []
        assert verify_engine_pairing(rows, allow_unpaired=True) == []
        # The grid really covers the advertised axes.
        paired = [r for r in rows if "pairing" in r["tags"]]
        assert {r["graph"] for r in paired} == {"ring", "gnp", "quorum-colony"}
        assert {r["start"] for r in paired} == {"uniform", "random"}
        kinds = {r["faults"].split("(")[0] for r in paired}
        assert {"none", "byz-frozen", "crash"} <= kinds
        assert {r["runtime"] for r in paired} == {"sim", "net"}

    def test_net_scenarios_validate_their_axes(self):
        def scenario(**overrides):
            base = dict(
                campaign="t",
                index=0,
                task="au",
                graph="ring",
                graph_params=(("n", 8),),
                diameter_bound=4,
                scheduler="synchronous",
                engine="array",
                start="random",
                seed=1,
                max_rounds=100,
                runtime="net",
            )
            base.update(overrides)
            return Scenario(**base)

        assert "+net[" in scenario(net_params=(("loss", 0.1),)).scenario_id
        with pytest.raises(ValueError):
            scenario(runtime="cloud")
        with pytest.raises(ValueError):
            scenario(scheduler="enabled-only")
        with pytest.raises(ValueError):
            scenario(net_params=(("loss", 1.5),))
        with pytest.raises(ValueError):
            scenario(net_params=(("bandwidth", 1.0),))
        with pytest.raises(ValueError):
            scenario(runtime="sim", net_params=(("loss", 0.1),))
        with pytest.raises(ValueError):
            scenario(task="le")
        round_trip = Scenario.from_dict(
            scenario(net_params=(("delay", 1.0),)).to_dict()
        )
        assert round_trip == scenario(net_params=(("delay", 1.0),))


# ----------------------------------------------------------------------
# The per-scenario wall-clock timeout guard.
# ----------------------------------------------------------------------


def _slow_scenario() -> Scenario:
    """A scenario that cannot finish within a microscopic budget (the
    random start keeps the stabilization predicate from being
    pre-satisfied, so at least one step always runs)."""
    return Scenario(
        campaign="t",
        index=0,
        task="au",
        graph="ring",
        graph_params=(("n", 12),),
        diameter_bound=6,
        scheduler="shuffled-round-robin",
        engine="array",
        start="random",
        seed=derive_seed(3, 0),
        max_rounds=100_000,
    )


class TestTimeoutGuard:
    def test_timed_out_scenario_reports_a_deterministic_row(self):
        first = run_scenario(_slow_scenario(), timeout_s=1e-9)
        second = run_scenario(_slow_scenario(), timeout_s=1e-9)
        assert first.status == "timeout"
        assert not first.stabilized
        assert "wall-clock budget" in first.detail
        # Deterministic placeholders: identical rows module wall-clock.
        for column in ("rounds", "steps", "n", "m", "detail", "status"):
            assert getattr(first, column) == getattr(second, column)

    def test_generous_budget_leaves_the_row_untouched(self):
        budgeted = run_scenario(_slow_scenario(), timeout_s=600.0)
        plain = run_scenario(_slow_scenario())
        assert budgeted.status == ""
        assert budgeted.stabilized
        assert (budgeted.rounds, budgeted.steps, budgeted.moves) == (
            plain.rounds,
            plain.steps,
            plain.moves,
        )

    def test_run_campaign_threads_the_budget(self):
        results = run_campaign([_slow_scenario()], workers=1, timeout_s=1e-9)
        assert [r.status for r in results] == ["timeout"]

    def test_timeout_rows_round_trip_through_json(self):
        row = run_scenario(_slow_scenario(), timeout_s=1e-9)
        from repro.campaigns import ScenarioResult

        assert ScenarioResult.from_dict(row.to_dict()) == row
