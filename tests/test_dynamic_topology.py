"""Dynamic topology: deltas, churn processes, engine differentials and
re-stabilization analytics.

Covers the mutable-topology substrate end to end:

* :class:`~repro.graphs.dynamic.TopologyDelta` validation and
  :class:`~repro.graphs.dynamic.DynamicTopology` incremental semantics
  (tombstoned leaves, consecutive joins, patched metrics);
* :class:`~repro.graphs.dynamic.MutableCSR` splicing against a
  from-scratch rebuild;
* :class:`~repro.faults.churn.ChurnProcess` determinism and
  internal-consistency invariants;
* engine differentials: object/array/native step-for-step under one
  churn stream, the replica-batch ensemble against solo lanes, and the
  zero-noise net runtime against the sim lanes through
  :func:`~repro.campaigns.run_scenario`;
* the ``rewire`` fault plan's incremental path against the old
  rebuild-and-carry flow, plus the exact-delivery contract of
  :func:`~repro.faults.injection.perturb_topology`;
* :mod:`repro.analysis.restabilization` unit behavior and the churn
  scenario columns (``clean_fraction``, ``churn_events``,
  ``pulse_tightness``) they feed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.restabilization import (
    RestabilizationTracker,
    churn_phase_boundary,
    pulse_tightness,
)
from repro.campaigns import FaultPlan, Scenario, run_scenario
from repro.campaigns.aggregate import MEASURED_COLUMNS, measured_payload
from repro.campaigns.registry import registry_names
from repro.core.algau import ThinUnison
from repro.core.turns import Turn
from repro.faults.churn import ChurnProcess
from repro.faults.injection import (
    carry_configuration,
    perturb_topology,
    random_configuration,
)
from repro.graphs.dynamic import (
    DynamicTopology,
    MutableCSR,
    TopologyDelta,
    TopologyError,
    canonical_edge,
)
from repro.graphs.generators import complete_graph, make_graph, ring
from repro.graphs.properties import (
    diameter,
    is_valid_diameter_bound,
    summary,
)
from repro.model.engine import create_execution
from repro.model.errors import ModelError
from repro.model.replica_engine import ReplicaBatchExecution, ReplicaSpec
from repro.model.scheduler import RoundRobinScheduler, SynchronousScheduler
from repro.viz.timeline import clock_timeline, record_snapshots, sparkline


def _delta_stream(topology, *, seed, steps, membership, algorithm=None):
    kwargs = dict(edge_add_rate=0.2, edge_remove_rate=0.2)
    if membership:
        kwargs.update(
            join_rate=0.15,
            leave_rate=0.15,
            initial_state=(algorithm or ThinUnison(2)).initial_state,
        )
    return list(ChurnProcess(topology, seed=seed, **kwargs).deltas(steps))


def _execution(engine, topology, algorithm, initial, scheduler=None, seed=0):
    return create_execution(
        topology,
        algorithm,
        initial,
        scheduler or SynchronousScheduler(),
        rng=np.random.default_rng(seed),
        engine=engine,
    )


def _states(execution):
    configuration = execution.configuration
    return tuple(configuration[v] for v in execution.topology.nodes)


class TestTopologyDelta:
    def test_edges_are_canonicalized(self):
        delta = TopologyDelta(add_edges=((3, 1),), remove_edges=((5, 2),))
        assert delta.add_edges == ((1, 3),)
        assert delta.remove_edges == ((2, 5),)

    def test_self_loops_are_rejected(self):
        with pytest.raises(TopologyError):
            canonical_edge(4, 4)
        with pytest.raises(TopologyError):
            TopologyDelta(add_edges=((2, 2),))

    def test_duplicate_and_conflicting_edges_are_rejected(self):
        with pytest.raises(TopologyError):
            TopologyDelta(add_edges=((1, 2), (2, 1)))
        with pytest.raises(TopologyError):
            TopologyDelta(remove_edges=((0, 1), (1, 0)))
        with pytest.raises(TopologyError):
            TopologyDelta(add_edges=((0, 1),), remove_edges=((1, 0),))

    def test_membership_conflicts_are_rejected(self):
        with pytest.raises(TopologyError):
            TopologyDelta(leave=(3, 3))
        with pytest.raises(TopologyError):
            TopologyDelta(
                join=((6, (0,), None), (6, (1,), None)), leave=()
            )
        with pytest.raises(TopologyError):
            TopologyDelta(join=((6, (0,), None),), leave=(6,))

    def test_emptiness(self):
        assert TopologyDelta().is_empty
        assert not TopologyDelta()
        assert TopologyDelta(add_edges=((0, 1),))


class TestDynamicTopology:
    def _dyn(self, n=6):
        return DynamicTopology(ring(n))

    def test_reads_match_the_base_topology(self):
        base = ring(6)
        dyn = self._dyn(6)
        assert dyn.n == base.n
        assert dyn.m == base.m
        assert dyn.nodes == base.nodes
        for v in base.nodes:
            assert dyn.neighbors(v) == base.neighbors(v)
            assert dyn.inclusive_neighbors(v) == base.inclusive_neighbors(v)
            assert dyn.degree(v) == base.degree(v)
        assert dyn.diameter == base.diameter
        assert dyn.version == 0

    def test_edge_add_and_remove_update_structure(self):
        dyn = self._dyn(6)
        applied = dyn.apply_delta(TopologyDelta(add_edges=((0, 3),)))
        assert applied.added_edges == ((0, 3),)
        assert applied.touched == (0, 3)
        assert dyn.has_edge(0, 3)
        assert dyn.m == 7
        assert dyn.version == 1
        dyn.apply_delta(TopologyDelta(remove_edges=((0, 3),)))
        assert not dyn.has_edge(0, 3)
        assert dyn.m == 6
        assert dyn.version == 2

    def test_leave_tombstones_without_renumbering(self):
        dyn = self._dyn(6)
        applied = dyn.apply_delta(TopologyDelta(leave=(2,)))
        assert applied.left == (2,)
        assert set(applied.removed_edges) == {(1, 2), (2, 3)}
        assert dyn.left_nodes == frozenset({2})
        assert dyn.alive_nodes == (0, 1, 3, 4, 5)
        assert dyn.n == 6  # ids never shrink
        assert dyn.degree(2) == 0
        assert dyn.inclusive_neighbors(2) == (2,)
        assert dyn.is_connected()  # the alive part is the path 1-0-5-4-3

    def test_join_semantics_and_id_discipline(self):
        dyn = self._dyn(4)
        state = object()
        applied = dyn.apply_delta(TopologyDelta(join=((4, (0, 2), state),)))
        assert applied.joined == ((4, state),)
        assert dyn.n == 5
        assert dyn.neighbors(4) == (0, 2)
        assert dyn.has_edge(0, 4) and dyn.has_edge(2, 4)
        with pytest.raises(TopologyError):  # ids must be consecutive
            dyn.apply_delta(TopologyDelta(join=((9, (0,), state),)))
        with pytest.raises(TopologyError):  # at least one attachment
            dyn.apply_delta(TopologyDelta(join=((5, (), state),)))

    def test_invalid_deltas_are_rejected_atomically(self):
        dyn = self._dyn(6)
        with pytest.raises(TopologyError):
            dyn.apply_delta(TopologyDelta(remove_edges=((0, 3),)))  # absent
        with pytest.raises(TopologyError):
            dyn.apply_delta(TopologyDelta(add_edges=((0, 1),)))  # existing
        with pytest.raises(TopologyError):
            dyn.apply_delta(
                TopologyDelta(remove_edges=((1, 2),), leave=(2,))
            )  # leave-incident edges are implicit
        dyn.apply_delta(TopologyDelta(leave=(2,)))
        with pytest.raises(TopologyError):
            dyn.apply_delta(TopologyDelta(add_edges=((2, 4),)))  # tombstone
        with pytest.raises(TopologyError):
            dyn.apply_delta(TopologyDelta(leave=(2,)))  # already left

    def test_metrics_follow_mutations(self):
        dyn = self._dyn(8)
        assert dyn.diameter == 4
        dyn.apply_delta(TopologyDelta(add_edges=((0, 4), (2, 6))))
        assert dyn.diameter == 3  # the two crossing chords shrink the ring
        assert dyn.distance(0, 4) == 1
        assert dyn.ball(0, 1) == frozenset({0, 1, 4, 7})
        with pytest.raises(TopologyError):
            dyn.check_diameter_bound(2)

    def test_csr_stays_in_sync_with_rows(self):
        dyn = self._dyn(6)
        csr = dyn.inclusive_csr()
        deltas = [
            TopologyDelta(add_edges=((0, 2), (1, 4))),
            TopologyDelta(leave=(5,)),
            TopologyDelta(join=((6, (0, 3), None),)),
            TopologyDelta(remove_edges=((0, 2),)),
        ]
        for delta in deltas:
            dyn.apply_delta(delta)
            rebuilt = MutableCSR.from_rows(
                [list(dyn.inclusive_neighbors(v)) for v in dyn.nodes]
            )
            assert csr is dyn.inclusive_csr()  # patched in place
            assert np.array_equal(csr.indptr, rebuilt.indptr)
            assert np.array_equal(csr.indices, rebuilt.indices)


class TestMutableCSR:
    def test_patch_matches_from_scratch_rebuild(self):
        rows = [[0, 1, 2], [1, 0], [2, 0, 3], [3, 2]]
        csr = MutableCSR.from_rows(rows)
        rows[1] = [1, 0, 2, 3]
        rows[3] = [3]
        rows.append([4, 0, 1])
        csr.patch({1: rows[1], 3: rows[3]}, appended=[rows[4]])
        rebuilt = MutableCSR.from_rows(rows)
        assert np.array_equal(csr.indptr, rebuilt.indptr)
        assert np.array_equal(csr.indices, rebuilt.indices)
        assert np.array_equal(csr.row_index, rebuilt.row_index)

    def test_buffer_growth_preserves_contents(self):
        rows = [[v] for v in range(4)]
        csr = MutableCSR.from_rows(rows)
        # Repeatedly widen one row far past the initial slack.
        for width in (8, 32, 128):
            rows[2] = [2] + list(range(100, 100 + width))
            csr.patch({2: rows[2]})
            rebuilt = MutableCSR.from_rows(rows)
            assert np.array_equal(csr.indptr, rebuilt.indptr)
            assert np.array_equal(csr.indices, rebuilt.indices)

    def test_empty_patch_is_a_no_op(self):
        csr = MutableCSR.from_rows([[0, 1], [1, 0]])
        indptr, indices = csr.indptr.copy(), csr.indices.copy()
        csr.patch({})
        assert np.array_equal(csr.indptr, indptr)
        assert np.array_equal(csr.indices, indices)


class TestChurnProcess:
    def test_same_seed_same_stream(self):
        algorithm = ThinUnison(2)
        topology = make_graph("hub-colony", np.random.default_rng(1), n=24)
        streams = [
            _delta_stream(
                topology, seed=55, steps=60, membership=True, algorithm=algorithm
            )
            for _ in range(2)
        ]
        def key(d):
            if d is None:
                return None
            return (
                d.add_edges,
                d.remove_edges,
                tuple((v, hood) for v, hood, _ in d.join),
                d.leave,
            )

        assert [key(d) for d in streams[0]] == [key(d) for d in streams[1]]
        assert any(d is not None for d in streams[0])

    def test_high_rate_stream_applies_cleanly(self):
        # Regression: a step's additions must never re-add an edge the
        # same step removed (the mirror already reflects the removal, so
        # only the delta-level exclusion prevents it).
        algorithm = ThinUnison(2)
        topology = make_graph("hub-colony", np.random.default_rng(2), n=20)
        churn = ChurnProcess(
            topology,
            seed=7,
            edge_add_rate=3.0,
            edge_remove_rate=3.0,
            join_rate=1.0,
            leave_rate=1.0,
            initial_state=algorithm.initial_state,
        )
        dyn = DynamicTopology(topology)
        applied_events = 0
        for delta in churn.deltas(40):
            if delta is None:
                continue
            applied = dyn.apply_delta(delta)  # raises on inconsistency
            applied_events += (
                len(delta.add_edges)
                + len(delta.remove_edges)
                + len(delta.join)
                + len(delta.leave)
            )
        assert applied_events == churn.events > 0
        assert dyn.is_connected() or dyn.left_nodes

    def test_mirror_tracks_the_applied_graph(self):
        topology = ring(10)
        churn = ChurnProcess(topology, seed=3, edge_add_rate=1.0, edge_remove_rate=1.0)
        dyn = DynamicTopology(topology)
        for delta in churn.deltas(30):
            if delta is not None:
                dyn.apply_delta(delta)
        assert churn.edge_count == dyn.m
        assert churn.alive_count == len(dyn.alive_nodes)

    def test_parameter_validation(self):
        topology = ring(5)
        with pytest.raises(ValueError):
            ChurnProcess(topology, seed=0, edge_add_rate=-1.0)
        with pytest.raises(ValueError):
            ChurnProcess(topology, seed=0, join_rate=0.5)  # no initial_state


class TestEngineChurnDifferential:
    @pytest.mark.parametrize("membership", [False, True], ids=["edges", "members"])
    def test_object_array_native_step_for_step(self, membership):
        algorithm = ThinUnison(2)
        topology = make_graph("hub-colony", np.random.default_rng(17), n=30, hubs=3)
        initial = random_configuration(algorithm, topology, np.random.default_rng(5))
        deltas = _delta_stream(
            topology, seed=23, steps=50, membership=membership, algorithm=algorithm
        )
        engines = ("object", "array", "native")
        lanes = {
            engine: _execution(engine, topology, algorithm, initial)
            for engine in engines
        }
        for step, delta in enumerate(deltas):
            for lane in lanes.values():
                if delta is not None:
                    lane.mutate_topology(delta)
                lane.step()
            reference = _states(lanes["object"])
            for engine in engines[1:]:
                assert _states(lanes[engine]) == reference, (engine, step)
        reference = lanes["object"]
        for engine in engines[1:]:
            assert lanes[engine].graph_is_good() == reference.graph_is_good()
            assert lanes[engine].topology_version == reference.topology_version
            assert lanes[engine].topology_version > 0

    @pytest.mark.parametrize("membership", [False, True], ids=["edges", "members"])
    def test_replica_ensemble_matches_solo_lanes(self, membership):
        algorithm = ThinUnison(2)
        seeds = [41, 42, 43]
        specs, solos = [], []
        for seed in seeds:
            rng = np.random.default_rng(seed)
            topology = ring(9)
            initial = random_configuration(algorithm, topology, rng)
            specs.append(
                ReplicaSpec(topology, initial, SynchronousScheduler(), rng)
            )
            solo_rng = np.random.default_rng(seed)
            solo_topology = ring(9)
            solo_initial = random_configuration(algorithm, solo_topology, solo_rng)
            solos.append(
                create_execution(
                    solo_topology,
                    algorithm,
                    solo_initial,
                    SynchronousScheduler(),
                    rng=solo_rng,
                    engine="array",
                )
            )
        batch = ReplicaBatchExecution.from_replicas(algorithm, specs)
        if membership:
            delta = TopologyDelta(
                join=((9, (0, 4), algorithm.initial_state()),), leave=(2,)
            )
        else:
            delta = TopologyDelta(add_edges=((0, 3),), remove_edges=((0, 1),))
        batch.mutate_topology(delta)
        for solo in solos:
            solo.mutate_topology(delta)
        outcomes = batch.run_ensemble(max_rounds=2000)
        for i, (solo, outcome) in enumerate(zip(solos, outcomes)):
            run = solo.run(max_rounds=2000, until=lambda e: e.graph_is_good())
            assert outcome.stabilized == run.stopped_by_predicate, i
            assert outcome.steps == solo.t, i
            assert np.array_equal(batch.replica_codes(i), solo.codes), i

    @pytest.mark.parametrize("kind", ["churn", "membership"])
    def test_all_four_scenario_lanes_agree(self, kind):
        base = dict(
            campaign="t",
            index=0,
            task="au",
            graph="complete",
            graph_params=(("n", 6),),
            diameter_bound=1,
            scheduler="synchronous",
            start="random",
            seed=11,
            max_rounds=4000,
            faults=FaultPlan(kind=kind, rate=0.6, times=(30,)),
        )
        lanes = [
            Scenario(engine="object", **base),
            Scenario(engine="array", **base),
            Scenario(engine="native", **base),
            Scenario(engine="array", runtime="net", **base),
        ]
        results = [run_scenario(scenario) for scenario in lanes]
        reference = measured_payload(results[0])
        assert results[0].stabilized
        assert results[0].churn_events > 0
        assert 0.0 <= results[0].clean_fraction <= 1.0
        assert results[0].pulse_tightness is not None
        for result in results[1:]:
            assert measured_payload(result) == reference, result.engine


class TestRewireMutatePath:
    def _stabilized_lane(self, topology, algorithm, initial, seed):
        lane = create_execution(
            topology,
            algorithm,
            initial,
            RoundRobinScheduler(),
            rng=np.random.default_rng(seed),
            engine="array",
        )
        run = lane.run(max_rounds=4000, until=lambda e: e.graph_is_good())
        assert run.stopped_by_predicate
        return lane

    def test_incremental_rewire_matches_rebuild_and_carry(self):
        """The runner's mutate_topology + poke + reset_schedule rewire
        path reproduces the old rebuild-and-carry flow bit for bit
        (same rng consumption order, same scheduler restart)."""
        algorithm = ThinUnison(2)
        topology = make_graph("hub-colony", np.random.default_rng(3), n=20, hubs=2)
        initial = random_configuration(algorithm, topology, np.random.default_rng(9))

        incremental = self._stabilized_lane(topology, algorithm, initial, seed=77)
        pre_steps = incremental.t
        perturbation = perturb_topology(topology, incremental.rng, remove=2, add=2)
        incremental.mutate_topology(
            TopologyDelta(
                add_edges=perturbation.added, remove_edges=perturbation.removed
            )
        )
        touched = sorted(
            {v for edge in perturbation.removed + perturbation.added for v in edge}
        )
        incremental.poke_states(
            {v: algorithm.random_state(incremental.rng) for v in touched}
        )
        incremental.reset_schedule(RoundRobinScheduler())
        run = incremental.run(max_rounds=4000, until=lambda e: e.graph_is_good())
        assert run.stopped_by_predicate

        reference = self._stabilized_lane(topology, algorithm, initial, seed=77)
        ref_pert = perturb_topology(topology, reference.rng, remove=2, add=2)
        assert ref_pert.removed == perturbation.removed
        assert ref_pert.added == perturbation.added
        carried = carry_configuration(reference.configuration, ref_pert.topology)
        rebuilt = create_execution(
            ref_pert.topology,
            algorithm,
            carried,
            RoundRobinScheduler(),
            rng=reference.rng,
            engine="array",
        )
        rebuilt.poke_states(
            {v: algorithm.random_state(rebuilt.rng) for v in touched}
        )
        ref_run = rebuilt.run(max_rounds=4000, until=lambda e: e.graph_is_good())
        assert ref_run.stopped_by_predicate

        assert incremental.t == pre_steps + rebuilt.t
        for v in rebuilt.topology.nodes:
            assert incremental.state_of(v) == rebuilt.state_of(v), v

    def test_perturbation_is_delivered_exactly(self):
        # Bridge-heavy graph: two hubs joined by one bridge — removals
        # must route around the bridge, never under-deliver.
        rng = np.random.default_rng(13)
        topology = make_graph("hub-colony", rng, n=18, hubs=2)
        for seed in range(5):
            perturbation = perturb_topology(
                topology, np.random.default_rng(seed), remove=2, add=2
            )
            assert len(perturbation.removed) == 2
            assert len(perturbation.added) == 2
            assert not set(perturbation.removed) & set(perturbation.added)
            assert perturbation.topology.n == topology.n

    def test_unsatisfiable_perturbations_raise(self):
        # A ring cannot lose two edges and stay connected.
        with pytest.raises(ModelError):
            perturb_topology(ring(8), np.random.default_rng(0), remove=2, add=0)
        # A complete graph has no non-edges, and the just-removed edge
        # is off limits — exact delivery must raise, not silently re-add.
        with pytest.raises(ModelError):
            perturb_topology(
                complete_graph(5), np.random.default_rng(0), remove=1, add=1
            )


class TestRestabilizationAnalytics:
    def test_tracker_episode_lifecycle(self):
        tracker = RestabilizationTracker()
        assert tracker.mean_time() is None and tracker.max_time() is None
        tracker.on_step(0, good=True)  # good steps without events: no-op
        tracker.on_event(3)
        tracker.on_event(5)  # clustered event extends the open episode
        tracker.on_step(4, good=False)
        tracker.on_step(9, good=True)
        assert tracker.episodes == [(3, 9)]
        tracker.on_event(12)
        assert tracker.unresolved
        tracker.on_step(14, good=True)
        assert not tracker.unresolved
        assert tracker.times() == [6, 2]
        assert tracker.mean_time() == 4.0
        assert tracker.max_time() == 6

    def test_pulse_tightness_limits(self):
        algorithm = ThinUnison(2)
        group = algorithm.levels.group_order

        def turn_with_clock(clock):
            level = clock - group // 2
            if level >= 0:
                level += 1
            return Turn(level=level, faulty=False)

        # Perfect pulse: every clock equal.
        assert pulse_tightness(algorithm, [turn_with_clock(3)] * 4) == 0.0
        # A surviving faulty turn means no pulse at all.
        states = [turn_with_clock(0), Turn(level=2, faulty=True)]
        assert pulse_tightness(algorithm, states) == 1.0
        # Two adjacent clocks: minimal covering arc of length 1.
        states = [turn_with_clock(0), turn_with_clock(1)]
        assert pulse_tightness(algorithm, states) == pytest.approx(1.0 / group)
        # The arc is cyclic: clocks 0 and 2k-1 are adjacent too.
        states = [turn_with_clock(0), turn_with_clock(group - 1)]
        assert pulse_tightness(algorithm, states) == pytest.approx(1.0 / group)
        # Fully smeared clocks approach (but never reach) 1.
        states = [turn_with_clock(c) for c in range(group)]
        assert pulse_tightness(algorithm, states) == pytest.approx(
            (group - 1.0) / group
        )
        # Algorithms without a level system yield no measurement.
        assert pulse_tightness(object(), states) is None

    def test_phase_boundary_extraction(self):
        sweep = [(0.1, 1.0), (0.1, 0.9), (0.5, 0.8), (2.0, 0.2), (2.0, 0.1)]
        assert churn_phase_boundary(sweep) == pytest.approx(1.25)
        assert churn_phase_boundary([(0.1, 1.0), (0.5, 0.9)]) is None
        assert churn_phase_boundary([(0.1, 0.2), (0.5, 0.1)]) == pytest.approx(0.1)
        assert churn_phase_boundary([]) is None


class TestChurnScenarioSpec:
    def test_dynamic_plans_require_rate_and_window(self):
        with pytest.raises(ValueError):
            FaultPlan(kind="churn", times=(30,))  # no rate
        with pytest.raises(ValueError):
            FaultPlan(kind="membership", rate=0.5)  # no window
        with pytest.raises(ValueError):
            FaultPlan(kind="bursts", rate=0.5)  # rate is churn-only
        plan = FaultPlan(kind="churn", rate=0.5, times=(30,))
        assert plan.label == "churn(r=0.5,w=30)"

    def test_churn_phase_campaign_is_registered(self):
        assert "churn-phase" in registry_names()

    def test_churn_columns_are_measured(self):
        assert "churn_events" in MEASURED_COLUMNS
        assert "pulse_tightness" in MEASURED_COLUMNS


class TestPropertiesAndVizUnderChurn:
    def test_property_helpers_on_a_mutated_topology(self):
        base = ring(8)
        assert diameter(base) == 4
        assert is_valid_diameter_bound(base, 4)
        assert not is_valid_diameter_bound(base, 3)
        assert "n=8 m=8" in summary(base)
        dyn = DynamicTopology(base)
        dyn.apply_delta(TopologyDelta(add_edges=((0, 4), (2, 6))))
        assert dyn.diameter == 3  # properties track incremental edits

    def test_clock_timeline_renders_a_churned_run(self):
        algorithm = ThinUnison(2)
        topology = ring(6)
        initial = random_configuration(
            algorithm, topology, np.random.default_rng(4)
        )
        execution = _execution("object", topology, algorithm, initial)
        snapshots = record_snapshots(execution, rounds=2)
        execution.mutate_topology(TopologyDelta(add_edges=((0, 3),)))
        snapshots.extend(record_snapshots(execution, rounds=1))
        rendered = clock_timeline(algorithm, snapshots)
        lines = rendered.splitlines()
        assert lines[0].startswith("round |")
        assert "v5" in lines[0]
        assert len(lines) == 2 + len(snapshots)

    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"
