"""Figure-1 rendering and the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.core.algau import ThinUnison
from repro.viz.state_diagram import (
    state_diagram,
    to_dot,
    to_text,
    verify_figure1_structure,
)


class TestStateDiagram:
    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_structure_matches_figure1(self, d):
        alg = ThinUnison(d)
        diagram = state_diagram(alg)
        assert verify_figure1_structure(diagram, alg.levels.k) == []

    def test_edge_counts(self):
        alg = ThinUnison(1)  # k = 5
        diagram = state_diagram(alg)
        assert len(diagram.aa_edges) == 10  # the 2k-cycle
        assert len(diagram.af_edges) == 8  # 2(k-1) detours in
        assert len(diagram.fa_edges) == 8  # 2(k-1) detours out
        assert diagram.edge_count == 26

    def test_dot_output_contains_styles(self):
        alg = ThinUnison(1)
        dot = to_dot(state_diagram(alg))
        assert "digraph AlgAU" in dot
        assert "style=dashed, color=red" in dot
        assert "style=dotted, color=blue" in dot

    def test_text_output_lists_families(self):
        alg = ThinUnison(1)
        text = to_text(state_diagram(alg))
        assert "AA (solid" in text
        assert "AF (dashed" in text
        assert "FA (dotted" in text

    def test_verify_detects_corruption(self):
        alg = ThinUnison(1)
        diagram = state_diagram(alg)
        broken = type(diagram)(
            turns=diagram.turns,
            aa_edges=diagram.aa_edges[:-1],  # break the cycle
            af_edges=diagram.af_edges,
            fa_edges=diagram.fa_edges,
        )
        assert verify_figure1_structure(broken, alg.levels.k) != []


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["figure1", "--diameter-bound", "1"])
        assert args.diameter_bound == 1

    def test_python_dash_m_repro_entry_point(self):
        """``python -m repro`` must behave exactly like the console
        script (the package-level __main__ delegates to the CLI)."""
        import os
        import subprocess
        import sys

        root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(root, "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro", "table1", "--diameter-bound", "1"],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert "Table 1" in result.stdout

    def test_figure1_command(self, capsys):
        assert main(["figure1", "--diameter-bound", "1"]) == 0
        out = capsys.readouterr().out
        assert "AA (solid" in out

    def test_figure1_dot(self, capsys):
        assert main(["figure1", "--diameter-bound", "1", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_table1_command(self, capsys):
        assert main(["table1", "--diameter-bound", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "AA" in out and "AF" in out and "FA" in out

    def test_figure2_command(self, capsys):
        assert main(["figure2", "--rounds", "8"]) == 0
        out = capsys.readouterr().out
        assert "LIVE-LOCK" in out

    def test_au_command(self, capsys):
        assert (
            main(
                [
                    "au",
                    "--diameter-bound",
                    "1",
                    "--nodes",
                    "6",
                    "--start",
                    "random",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stabilized" in out
