"""Analysis layer: monitors, stabilization measurement, statistics and
table rendering."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis.monitors import (
    OutputChangeMonitor,
    PredicateTimeline,
    TransitionCounter,
)
from repro.analysis.stabilization import (
    StabilizationResult,
    measure_au_stabilization,
    measure_static_task_stabilization,
    run_trials,
)
from repro.analysis.stats import (
    Summary,
    geometric_max_statistics,
    loglog_slope,
    max_geometric_sample,
    ratio_to_log,
    within_factor,
)
from repro.analysis.tables import render_table, results_dir
from repro.core.algau import ThinUnison, TransitionType
from repro.core.predicates import good_nodes
from repro.faults.injection import random_configuration, uniform_configuration
from repro.graphs.generators import complete_graph, ring
from repro.model.errors import StabilizationError
from repro.model.execution import Execution
from repro.model.scheduler import SynchronousScheduler
from repro.tasks.le import AlgLE
from repro.tasks.spec import check_le_output


class TestSummaryAndFits:
    def test_summary(self):
        s = Summary.of([1, 2, 3, 4])
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.minimum == 1 and s.maximum == 4
        assert s.count == 4

    def test_summary_single_value(self):
        s = Summary.of([7])
        assert s.std == 0.0

    def test_summary_rejects_empty(self):
        with pytest.raises(ValueError):
            Summary.of([])

    def test_loglog_slope_cubic(self):
        xs = [1, 2, 4, 8]
        ys = [x**3 for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(3.0)

    def test_loglog_slope_needs_two_points(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])

    def test_ratio_to_log(self):
        ratios = ratio_to_log([4, 16], [10, 20])
        assert ratios[0] == pytest.approx(5.0)
        assert ratios[1] == pytest.approx(5.0)

    def test_within_factor(self):
        assert within_factor(10, 5, 2.0)
        assert not within_factor(11, 5, 2.0)

    def test_max_geometric_sample_grows_with_n(self):
        rng = np.random.default_rng(0)
        small = np.mean([max_geometric_sample(4, 0.5, rng) for _ in range(300)])
        large = np.mean([max_geometric_sample(256, 0.5, rng) for _ in range(300)])
        assert large > small + 3  # roughly log2(256/4) = 6 apart

    def test_geometric_max_statistics(self):
        s = geometric_max_statistics(64, 0.5, trials=200, seed=1)
        # E[max of 64 Geom(1/2)] ≈ log2(64) ± a couple.
        assert 4 < s.mean < 10


class TestMonitors:
    def test_transition_counter_counts_pulses(self):
        rng = np.random.default_rng(0)
        alg = ThinUnison(1)
        topology = complete_graph(4)
        counter = TransitionCounter(alg)
        execution = Execution(
            topology,
            alg,
            uniform_configuration(alg, topology),
            SynchronousScheduler(),
            rng=rng,
            monitors=(counter,),
        )
        execution.run(max_rounds=5)
        assert counter.totals[TransitionType.AA] == 20  # 4 nodes × 5 rounds
        assert counter.pulses(0) == 5

    def test_output_change_monitor(self):
        rng = np.random.default_rng(0)
        alg = AlgLE(1)
        topology = complete_graph(5)
        monitor = OutputChangeMonitor(alg)
        execution = Execution(
            topology,
            alg,
            uniform_configuration(alg, topology),
            SynchronousScheduler(),
            rng=rng,
            monitors=(monitor,),
        )
        execution.run(max_rounds=400)
        assert monitor.currently_complete or monitor.current_vector is not None

    def test_output_change_monitor_sees_out_of_band_mutations(self):
        """The monitor folds its vector forward from step records, but
        pokes/replacements happen outside the records — the state-epoch
        fallback must re-snapshot so corruption is never missed."""
        rng = np.random.default_rng(1)
        alg = AlgLE(1)
        topology = complete_graph(5)
        monitor = OutputChangeMonitor(alg)
        execution = Execution(
            topology,
            alg,
            uniform_configuration(alg, topology),
            SynchronousScheduler(),
            rng=rng,
            monitors=(monitor,),
        )
        execution.run(max_rounds=400, until=lambda e: monitor.currently_complete)
        assert monitor.currently_complete
        marker = monitor.last_change_time
        # Corrupt one node out-of-band (a non-output state) and step.
        execution.poke_states({0: alg.initial_state()})
        execution.step()
        expected = execution.configuration.is_output_configuration(alg)
        assert monitor.currently_complete == expected
        assert monitor.current_vector == execution.configuration.output_vector(alg)
        if not expected:
            assert monitor.last_change_time > marker

    @pytest.mark.parametrize("engine", ["object", "array", "replica-batch"])
    def test_output_change_monitor_poke_during_step(self, engine):
        """Regression: a poke landing in the *same* step as a tracked
        delta used to vanish — the epoch fallback re-snapshotted, saw a
        net-unchanged vector (the δ undid the poke), and never advanced
        ``last_change_time`` even though the output passed through a
        different value.  Construction: on K2 with node 0 masked, node 1
        settles one clock ahead of its frozen neighbor and stops; the
        intervention pokes it back to the start turn, and the very same
        step's AA transition re-advances it — output disturbed, net
        vector unchanged."""
        from repro.model.engine import create_execution

        alg = ThinUnison(1)
        topology = complete_graph(2)
        initial = uniform_configuration(alg, topology)
        start_state = initial[1]
        poke_at = 5

        def poke(execution):
            if execution.t == poke_at:
                execution.poke_states({1: start_state})
            return None

        monitor = OutputChangeMonitor(alg)
        execution = create_execution(
            topology,
            alg,
            initial,
            SynchronousScheduler(),
            rng=np.random.default_rng(0),
            monitors=(monitor,),
            intervention=poke,
            engine=engine,
        )
        execution.mask_nodes((0,))
        records = [execution.step() for _ in range(poke_at + 3)]
        # The construction holds: node 1 moves once at t=0, idles until
        # the poke step, and the poke step's record carries the
        # counter-acting delta.
        assert records[0].changed
        assert all(not r.changed for r in records[1:poke_at])
        assert records[poke_at].changed
        assert all(not r.changed for r in records[poke_at + 1 :])
        assert monitor.last_change_time == poke_at + 1

    def test_predicate_timeline_records_rounds(self):
        rng = np.random.default_rng(0)
        alg = ThinUnison(1)
        topology = ring(5)
        timeline = PredicateTimeline(lambda config: len(good_nodes(alg, config)))
        execution = Execution(
            topology,
            alg,
            random_configuration(alg, topology, rng),
            SynchronousScheduler(),
            rng=rng,
            monitors=(timeline,),
        )
        execution.run(max_rounds=10)
        assert len(timeline.timeline) == 11  # round 0 plus 10 rounds
        rounds = [r for r, _ in timeline.timeline]
        assert rounds == sorted(rounds)


class TestStabilizationMeasurement:
    def test_au_measurement(self):
        rng = np.random.default_rng(0)
        alg = ThinUnison(1)
        topology = complete_graph(6)
        result = measure_au_stabilization(
            alg,
            topology,
            random_configuration(alg, topology, rng),
            SynchronousScheduler(),
            rng,
            max_rounds=2000,
            confirm_rounds=5,
        )
        assert result.stabilized
        assert result.rounds <= 125  # k^3 for D = 1

    def test_au_measurement_budget_exhaustion(self):
        rng = np.random.default_rng(0)
        alg = ThinUnison(1)
        topology = complete_graph(6)
        from repro.faults.injection import au_sign_split

        result = measure_au_stabilization(
            alg,
            topology,
            au_sign_split(alg, topology, rng),
            SynchronousScheduler(),
            rng,
            max_rounds=1,  # hopeless budget
        )
        assert not result.stabilized

    def test_static_measurement_le(self):
        rng = np.random.default_rng(0)
        alg = AlgLE(1)
        topology = complete_graph(6)
        result = measure_static_task_stabilization(
            alg,
            topology,
            uniform_configuration(alg, topology),
            SynchronousScheduler(),
            rng,
            lambda out: check_le_output(out).valid,
            max_rounds=30_000,
            confirm_rounds=20,
        )
        assert result.stabilized
        assert result.rounds > 0

    def test_run_trials_aggregates(self):
        calls = []

        def measure(rng):
            calls.append(1)
            return StabilizationResult(True, 5, 50)

        results = run_trials(measure, trials=3)
        assert len(results) == 3
        assert len(calls) == 3

    def test_run_trials_raises_on_failure(self):
        def measure(rng):
            return StabilizationResult(False, 0, 0, "nope")

        with pytest.raises(StabilizationError):
            run_trials(measure, trials=1)


class TestTables:
    def test_render_table(self):
        table = render_table(["a", "b"], [(1, "x"), (22, "yy")], title="T")
        assert "### T" in table
        assert "| a " in table
        assert "| 22 | yy |" in table

    def test_persist_table(self, tmp_path, monkeypatch):
        import repro.analysis.tables as tables_module

        monkeypatch.setattr(tables_module, "results_dir", lambda: str(tmp_path))
        path = tables_module.persist_table("unit-test", "content")
        assert os.path.exists(path)
        with open(path) as handle:
            assert handle.read().strip() == "content"
