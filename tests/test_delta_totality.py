"""δ-totality property tests.

The SA model requires the transition function to be total: the
adversary may put any combination of states in any neighborhood, so
``δ(state, signal)`` must return a valid next state (or distribution
over valid states) for *every* such pair — a crash is a model violation
and, practically, a self-stabilization bug.  Hypothesis drives random
(state, signal) pairs through every algorithm in the repository.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.failed_reset_au import FailedResetUnison
from repro.baselines.id_flood_le import IDFloodLE
from repro.baselines.luby_mis import IDGreedyMIS, LubyTrialMIS
from repro.baselines.min_unison import MinUnison
from repro.baselines.reset_tail_unison import ResetTailUnison
from repro.core.algau import ThinUnison
from repro.model.algorithm import Distribution
from repro.model.signal import Signal
from repro.sync.synchronizer import Synchronizer
from repro.tasks.le import AlgLE
from repro.tasks.mis import AlgMIS
from repro.tasks.restart import StandaloneRestart


def random_states(algorithm, rng, count):
    return [algorithm.random_state(rng) for _ in range(count)]


def check_delta_total(algorithm, seed, neighborhood, checker=None):
    """Drive δ with a random own-state plus random sensed set."""
    rng = np.random.default_rng(seed)
    own = algorithm.random_state(rng)
    sensed = {own} | set(random_states(algorithm, rng, neighborhood))
    result = algorithm.delta(own, Signal(sensed))
    outcomes = result.outcomes if isinstance(result, Distribution) else (result,)
    for outcome in outcomes:
        assert outcome is not None
        if checker is not None:
            assert checker(outcome), (own, sensed, outcome)
    if isinstance(result, Distribution):
        assert abs(sum(result.weights) - 1.0) < 1e-9


@settings(max_examples=150, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(0, 6))
def test_algau_total(seed, size):
    algorithm = ThinUnison(2)
    check_delta_total(algorithm, seed, size, checker=algorithm.turns.is_turn)


@settings(max_examples=150, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(0, 6))
def test_algle_total(seed, size):
    algorithm = AlgLE(2)
    from repro.tasks.le import LEState
    from repro.tasks.restart import RestartState

    check_delta_total(
        algorithm,
        seed,
        size,
        checker=lambda q: isinstance(q, (LEState, RestartState)),
    )


@settings(max_examples=150, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(0, 6))
def test_algmis_total(seed, size):
    algorithm = AlgMIS(2)
    from repro.tasks.mis import MISState
    from repro.tasks.restart import RestartState

    check_delta_total(
        algorithm,
        seed,
        size,
        checker=lambda q: isinstance(q, (MISState, RestartState)),
    )


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(0, 5))
def test_synchronized_mis_total(seed, size):
    algorithm = Synchronizer(AlgMIS(1), 1)
    from repro.sync.synchronizer import SyncState

    check_delta_total(algorithm, seed, size, checker=lambda q: isinstance(q, SyncState))


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(0, 5))
def test_synchronized_le_total(seed, size):
    algorithm = Synchronizer(AlgLE(1), 1)
    from repro.sync.synchronizer import SyncState

    check_delta_total(algorithm, seed, size, checker=lambda q: isinstance(q, SyncState))


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(0, 6))
def test_restart_total(seed, size):
    check_delta_total(StandaloneRestart(3), seed, size)


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(0, 6))
def test_failed_reset_total(seed, size):
    check_delta_total(FailedResetUnison(2, 2), seed, size)


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(0, 6))
def test_min_unison_total(seed, size):
    check_delta_total(MinUnison(), seed, size)


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(0, 6))
def test_reset_tail_total(seed, size):
    algorithm = ResetTailUnison.for_diameter_bound(2)
    states = algorithm.states()
    check_delta_total(algorithm, seed, size, checker=lambda q: q in states)


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(0, 6))
def test_luby_total(seed, size):
    check_delta_total(LubyTrialMIS(), seed, size)


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(0, 6))
def test_id_greedy_total(seed, size):
    check_delta_total(IDGreedyMIS(8), seed, size)


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(0, 6))
def test_id_flood_total(seed, size):
    check_delta_total(IDFloodLE(8), seed, size)


class TestAlgAUReachabilityCensus:
    """Every one of the 12D + 6 AlgAU states is reachable — the state
    space is tight, not padded."""

    def test_all_turns_appear_in_executions(self):
        from repro.faults.injection import au_adversarial_suite
        from repro.graphs.generators import ring
        from repro.model.execution import Execution
        from repro.model.scheduler import ShuffledRoundRobinScheduler

        algorithm = ThinUnison(1)
        seen = set()
        for seed in range(40):
            rng = np.random.default_rng(seed)
            topology = ring(6)
            for initial in au_adversarial_suite(algorithm, topology, rng).values():
                seen |= set(initial.state_set())
                execution = Execution(
                    topology,
                    algorithm,
                    initial,
                    ShuffledRoundRobinScheduler(),
                    rng=rng,
                )
                for _ in range(60):
                    execution.step()
                    seen |= set(execution.configuration.state_set())
            if seen == set(algorithm.states()):
                break
        assert seen == set(algorithm.states())
