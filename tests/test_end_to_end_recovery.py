"""End-to-end recovery of the *composed* stack under asynchrony.

The hardest integration scenario the paper supports: a synchronized
(Cor 1.2) self-stabilizing task algorithm, an adversarial asynchronous
scheduler, and repeated mid-run transient faults — the full
fault-tolerant-biological-network story in one test file.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.injection import random_configuration
from repro.graphs.biological import proneural_cluster, quorum_colony
from repro.graphs.generators import complete_graph
from repro.model.execution import Execution
from repro.model.scheduler import (
    RandomSubsetScheduler,
    ShuffledRoundRobinScheduler,
)
from repro.sync.synchronizer import Synchronizer
from repro.tasks.le import AlgLE
from repro.tasks.mis import AlgMIS
from repro.tasks.spec import check_le_output, check_mis_output


def run_until_valid(execution, algorithm, checker, budget):
    def stable(e):
        config = e.configuration
        if not config.is_output_configuration(algorithm):
            return False
        return checker(config.output_vector(algorithm)).valid

    result = execution.run(max_rounds=execution.completed_rounds + budget, until=stable)
    return result.stopped_by_predicate


def corrupt(execution, algorithm, rng, fraction):
    n = execution.topology.n
    count = max(1, int(fraction * n))
    victims = rng.choice(n, size=count, replace=False)
    execution.replace_configuration(
        execution.configuration.replace(
            {int(v): algorithm.random_state(rng) for v in victims}
        )
    )


class TestSynchronizedMISRecovery:
    @pytest.mark.parametrize("seed", range(3))
    def test_sop_pattern_survives_bursts(self, seed):
        rng = np.random.default_rng(seed)
        tissue = proneural_cluster(4, 3)
        d = tissue.diameter
        algorithm = Synchronizer(AlgMIS(d), d)
        execution = Execution(
            tissue,
            algorithm,
            random_configuration(algorithm, tissue, rng),
            ShuffledRoundRobinScheduler(),
            rng=rng,
        )

        def checker(out):
            return check_mis_output(tissue, out)

        assert run_until_valid(execution, algorithm, checker, 250_000)
        for _ in range(2):
            corrupt(execution, algorithm, rng, fraction=0.3)
            assert run_until_valid(execution, algorithm, checker, 250_000)


class TestSynchronizedLERecovery:
    @pytest.mark.parametrize("seed", range(3))
    def test_leadership_survives_bursts(self, seed):
        rng = np.random.default_rng(seed + 100)
        colony = quorum_colony(10, 2, rng)
        algorithm = Synchronizer(AlgLE(2), 2)
        execution = Execution(
            colony,
            algorithm,
            random_configuration(algorithm, colony, rng),
            RandomSubsetScheduler(0.5),
            rng=rng,
        )

        def checker(out):
            return check_le_output(out)

        assert run_until_valid(execution, algorithm, checker, 300_000)
        corrupt(execution, algorithm, rng, fraction=0.4)
        assert run_until_valid(execution, algorithm, checker, 300_000)


class TestSynchronousTaskRecovery:
    """The plain synchronous algorithms recover too (their own
    self-stabilization, without the synchronizer)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_mis_recovers_synchronously(self, seed):
        from repro.model.scheduler import SynchronousScheduler

        rng = np.random.default_rng(seed + 7)
        topology = complete_graph(8)
        algorithm = AlgMIS(1)
        execution = Execution(
            topology,
            algorithm,
            random_configuration(algorithm, topology, rng),
            SynchronousScheduler(),
            rng=rng,
        )

        def checker(out):
            return check_mis_output(topology, out)

        assert run_until_valid(execution, algorithm, checker, 60_000)
        # Plant the nastiest MIS fault: two adjacent INs.
        from repro.tasks.mis import IN, MISState

        fake = MISState(IN, False, 0, 0, False, False, 1)
        execution.replace_configuration(
            execution.configuration.replace({0: fake, 1: fake})
        )
        assert run_until_valid(execution, algorithm, checker, 60_000)
        out = execution.configuration.output_vector(algorithm)
        assert checker(out).valid

    @pytest.mark.parametrize("seed", range(3))
    def test_le_recovers_from_fake_double_leader(self, seed):
        from repro.model.scheduler import SynchronousScheduler
        from repro.tasks.le import LEState, VERIFY

        rng = np.random.default_rng(seed + 19)
        topology = complete_graph(7)
        algorithm = AlgLE(1)
        execution = Execution(
            topology,
            algorithm,
            random_configuration(algorithm, topology, rng),
            SynchronousScheduler(),
            rng=rng,
        )

        def checker(out):
            return check_le_output(out)

        assert run_until_valid(execution, algorithm, checker, 60_000)
        # Promote a second node to leader by force.
        outputs = execution.configuration.output_vector(algorithm)
        followers = [v for v, bit in enumerate(outputs) if bit == 0]
        victim = followers[0]
        state = execution.configuration[victim]
        fake = LEState(
            VERIFY,
            state.r,
            False,
            True,
            False,
            False,
            False,
            True,  # leader bit forced on
            None,
            state.seen,
        )
        execution.replace_configuration(execution.configuration.replace({victim: fake}))
        assert run_until_valid(execution, algorithm, checker, 60_000)
