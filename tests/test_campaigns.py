"""The scenario-campaign subsystem.

Covers the declarative spec (validation, JSON round-trips), the
registries (determinism, uniqueness, the smoke campaign's CI
contract), the sharded runner (worker-count-independent bit-identical
aggregates, JSONL checkpointing, kill-and-resume), the new scenario
axes (dynamic-topology perturbations, heterogeneous-degree biological
graphs), and the campaign CLI.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.campaigns import (
    FaultPlan,
    Scenario,
    ScenarioResult,
    aggregate_results,
    build_campaign,
    load_checkpoint,
    registry_names,
    run_campaign,
    run_scenario,
    write_campaign_artifact,
)
from repro.campaigns import runner as runner_module
from repro.cli import main
from repro.core.algau import ThinUnison
from repro.faults.injection import (
    carry_configuration,
    perturb_topology,
    random_configuration,
)
from repro.graphs.generators import damaged_clique, make_graph, ring
from repro.model.engine import ENGINE_NAMES, create_execution
from repro.model.errors import ModelError
from repro.model.scheduler import SynchronousScheduler


def _scenario(**overrides) -> Scenario:
    base = dict(
        campaign="test",
        index=0,
        task="au",
        graph="complete",
        graph_params=(("n", 6),),
        diameter_bound=1,
        scheduler="synchronous",
        engine="array",
        start="random",
        seed=7,
        max_rounds=10_000,
    )
    base.update(overrides)
    return Scenario(**base)


class TestSpec:
    def test_roundtrip_through_json(self):
        scenario = _scenario(
            faults=FaultPlan(kind="storm", times=(3, 9), fraction=0.5),
            tags=(("trial", "2"),),
            group="g",
        )
        data = json.loads(json.dumps(scenario.to_dict()))
        assert Scenario.from_dict(data) == scenario

    def test_permanent_fault_plan_roundtrip(self):
        scenario = _scenario(
            faults=FaultPlan(
                kind="byzantine", strategy="oscillating", density=0.1, radius=4
            ),
        )
        data = json.loads(json.dumps(scenario.to_dict()))
        assert Scenario.from_dict(data) == scenario

    def test_result_roundtrip_ignores_unknown_fields(self):
        result = ScenarioResult(
            scenario_id="x",
            index=3,
            group="g",
            stabilized=True,
            rounds=10,
            steps=60,
            n=6,
            m=15,
            tags=(("trial", "0"),),
        )
        data = result.to_dict()
        data["future_field"] = "ignored"
        assert ScenarioResult.from_dict(data) == result

    @pytest.mark.parametrize(
        "overrides",
        [
            {"task": "nope"},
            {"engine": "simd"},
            {"task": "le", "engine": "array"},
            {"scheduler": "cosmic"},
            {"start": "sideways"},
            {"task": "le", "engine": "object", "start": "sign-split"},
            {
                "task": "mis",
                "engine": "object",
                "faults": FaultPlan(kind="bursts", bursts=1),
            },
            {"diameter_bound": 0},
            {"max_rounds": 0},
            # Replica batching: AU only, fault-free, vectorized engines,
            # oblivious schedulers.
            {"batch_replicas": 0},
            {"task": "le", "engine": "object", "batch_replicas": 2},
            {
                "faults": FaultPlan(kind="bursts", bursts=1),
                "batch_replicas": 2,
            },
            {"engine": "object", "batch_replicas": 2},
            {"scheduler": "enabled-only", "batch_replicas": 2},
        ],
    )
    def test_validation_rejects(self, overrides):
        with pytest.raises(ValueError):
            _scenario(**overrides)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "warp"},
            {"kind": "bursts", "bursts": 0},
            {"kind": "storm", "times": ()},
            {"kind": "rewire"},
            {"kind": "bursts", "bursts": 1, "fraction": 0.0},
            {"kind": "byzantine", "density": 0.1},  # no strategy
            {"kind": "byzantine", "strategy": "gaslight", "density": 0.1},
            # crash-stop has its own kind (the byzantine spelling would
            # silently drop the crash time).
            {"kind": "byzantine", "strategy": "crash", "density": 0.1},
            {"kind": "byzantine", "strategy": "frozen", "density": 0.0},
            {"kind": "byzantine", "strategy": "frozen", "density": 1.0},
            {"kind": "byzantine", "strategy": "frozen", "density": 0.1, "radius": -1},
            {"kind": "crash", "density": 0.2, "times": (3, 9)},
        ],
    )
    def test_fault_plan_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_permanent_fault_plan_labels(self):
        byz = FaultPlan(kind="byzantine", strategy="frozen", density=0.2, radius=3)
        assert byz.label == "byz-frozen(d=0.20,r=3)"
        crash = FaultPlan(kind="crash", density=0.125, times=(40,), radius=2)
        assert crash.label == "crash(d=0.12,t=40,r=2)"


class TestRegistry:
    def test_every_registry_builds_unique_deterministic_ids(self):
        for name in registry_names():
            first = build_campaign(name, seed=3)
            second = build_campaign(name, seed=3)
            assert first == second
            ids = [s.scenario_id for s in first]
            assert len(set(ids)) == len(ids)
            assert [s.index for s in first] == list(range(len(first)))

    def test_seed_changes_scenario_seeds_only(self):
        a = build_campaign("micro", seed=0)
        b = build_campaign("micro", seed=1)
        assert [s.seed for s in a] != [s.seed for s in b]

        def strip(s):
            return (s.task, s.graph, s.scheduler, s.start, s.faults)

        assert [strip(s) for s in a] == [strip(s) for s in b]

    def test_smoke_meets_the_ci_contract(self):
        scenarios = build_campaign("smoke")
        assert len(scenarios) >= 50
        assert {s.task for s in scenarios} == {"au", "le", "mis"}
        assert {s.engine for s in scenarios} == set(ENGINE_NAMES)
        kinds = {s.faults.kind for s in scenarios}
        assert kinds == {"none", "bursts", "storm", "rewire"}
        assert "hub-colony" in {s.graph for s in scenarios}

    def test_unknown_registry_lists_valid_names(self):
        with pytest.raises(ValueError, match="smoke"):
            build_campaign("nope")

    def test_byzantine_registry_is_engine_paired(self):
        scenarios = build_campaign("byzantine")
        assert all(s.faults.kind in ("byzantine", "crash") for s in scenarios)
        strategies = {
            s.faults.strategy for s in scenarios if s.faults.kind == "byzantine"
        }
        assert strategies == {"frozen", "random", "oscillating", "noisy", "targeted"}
        assert len({s.graph for s in scenarios}) >= 2
        pairs = {}
        for s in scenarios:
            pairs.setdefault(s.tag("pairing"), []).append(s)
        for paired in pairs.values():
            assert sorted(p.engine for p in paired) == ["array", "object"]
            assert len({p.seed for p in paired}) == 1  # shared derived seed
            assert len({p.graph for p in paired}) == 1
            assert len({p.faults for p in paired}) == 1


class TestRunner:
    def test_micro_campaign_all_stabilize(self):
        scenarios = build_campaign("micro")
        results = run_campaign(scenarios, workers=1)
        assert [r.index for r in results] == [s.index for s in scenarios]
        assert all(r.stabilized for r in results)
        by_kind = {s.faults.kind: r for s, r in zip(scenarios, results)}
        assert by_kind["bursts"].recovered
        assert by_kind["rewire"].recovered
        assert by_kind["rewire"].recovery_rounds > 0

    def test_error_scenarios_fold_into_failed_results(self):
        # regular(n=7, degree=3): odd n * odd degree is unrealizable.
        scenario = _scenario(graph="regular", graph_params=(("n", 7), ("degree", 3)))
        result = run_scenario(scenario)
        assert not result.stabilized
        assert "error:" in result.detail

    def test_aggregates_identical_across_worker_counts(self):
        scenarios = build_campaign("smoke")[:14]
        serial = run_campaign(scenarios, workers=1)
        sharded = run_campaign(scenarios, workers=2, shard_size=3)
        a = aggregate_results("smoke", scenarios, serial, 0)
        b = aggregate_results("smoke", scenarios, sharded, 0)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_checkpoint_resume_skips_completed_scenarios(self, tmp_path, monkeypatch):
        scenarios = build_campaign("micro")
        checkpoint = str(tmp_path / "progress.jsonl")
        reference = aggregate_results(
            "micro", scenarios, run_campaign(scenarios, workers=1), 0
        )

        # First run "dies" after three scenarios (checkpoint survives).
        run_campaign(scenarios[:3], workers=1, checkpoint_path=checkpoint)
        assert len(load_checkpoint(checkpoint)) == 3

        calls = []
        real_run = run_scenario

        def counting_run(scenario, timeout_s=None):
            calls.append(scenario.scenario_id)
            return real_run(scenario, timeout_s)

        monkeypatch.setattr(runner_module, "run_scenario", counting_run)
        resumed = run_campaign(
            scenarios, workers=1, checkpoint_path=checkpoint, resume=True
        )
        assert len(calls) == len(scenarios) - 3  # completed work not redone
        assert len(load_checkpoint(checkpoint)) == len(scenarios)
        merged = aggregate_results("micro", scenarios, resumed, 0)
        assert json.dumps(merged, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    def test_recovery_failure_fails_the_campaign(self):
        import dataclasses

        scenarios = build_campaign("micro")
        results = run_campaign(scenarios, workers=1)
        broken = [
            dataclasses.replace(r, recovered=False) if r.recovered else r
            for r in results
        ]
        aggregates = aggregate_results("micro", scenarios, broken, 0)
        # bursts + rewire scenarios: a recovery regression must surface
        # as campaign failures even though stabilization succeeded.
        assert aggregates["failure_count"] == 2
        assert len(aggregates["failures"]) == 2

    def test_fold_worst_rounds_requires_the_tag(self):
        from repro.campaigns import fold_worst_rounds

        scenarios = build_campaign("micro")
        results = run_campaign(scenarios, workers=1)
        aggregates = aggregate_results("micro", scenarios, results, 0)
        with pytest.raises(ValueError, match="trial"):
            fold_worst_rounds(aggregates["rows"])

    def test_byzantine_slice_pairs_and_worker_counts_agree(self):
        """The acceptance property on a fast slice: containment results
        are engine-paired bit-identical and worker-count independent
        (the nightly CI shard re-verifies the full registry)."""
        from repro.campaigns import verify_engine_pairing

        scenarios = build_campaign("byzantine")[:4]  # two engine pairs
        serial = run_campaign(scenarios, workers=1)
        sharded = run_campaign(scenarios, workers=2, shard_size=1)
        a = aggregate_results("byzantine", scenarios, serial, 0)
        b = aggregate_results("byzantine", scenarios, sharded, 0)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert a["failure_count"] == 0
        assert verify_engine_pairing(a["rows"]) == []
        for row in a["rows"]:
            assert row["containment_radius"] is not None
            assert 0.0 <= row["clean_fraction"] <= 1.0
            assert row["recovered"] is None  # containment, not recovery

    def test_verify_engine_pairing_raises_on_unpaired_rows(self):
        from repro.campaigns import verify_engine_pairing

        scenarios = build_campaign("micro")[:1]
        results = run_campaign(scenarios, workers=1)
        rows = aggregate_results("micro", scenarios, results, 0)["rows"]
        with pytest.raises(ValueError, match="pairing"):
            verify_engine_pairing(rows)

    def test_verify_engine_pairing_flags_mismatches(self):
        from repro.campaigns import verify_engine_pairing

        scenarios = build_campaign("byzantine")[:2]  # one pair
        results = run_campaign(scenarios, workers=1)
        rows = aggregate_results("byzantine", scenarios, results, 0)["rows"]
        assert verify_engine_pairing(rows) == []
        rows[1]["rounds"] += 1
        mismatches = verify_engine_pairing(rows)
        assert len(mismatches) == 1 and "rounds" in mismatches[0]

    def test_checkpoint_tolerates_truncated_tail(self, tmp_path):
        scenarios = build_campaign("micro")[:2]
        checkpoint = str(tmp_path / "progress.jsonl")
        run_campaign(scenarios, workers=1, checkpoint_path=checkpoint)
        with open(checkpoint, "a", encoding="utf-8") as handle:
            handle.write('{"scenario_id": "half-written')  # killed mid-write
        assert len(load_checkpoint(checkpoint)) == 2

    def test_fresh_run_invalidates_stale_checkpoint(self, tmp_path):
        scenarios = build_campaign("micro")[:2]
        checkpoint = str(tmp_path / "progress.jsonl")
        run_campaign(scenarios, workers=1, checkpoint_path=checkpoint)
        run_campaign(scenarios, workers=1, checkpoint_path=checkpoint)
        assert len(load_checkpoint(checkpoint)) == 2  # not appended twice

    def test_resume_after_kill_mid_write_is_bit_identical(self, tmp_path):
        """Regression: a shard checkpoint killed mid-write leaves a
        truncated, newline-less tail; the resumed run used to append its
        first row onto that garbage, silently destroying both rows (so a
        later resume re-ran — and duplicated — the scenario).  The
        append path now repairs the tail and the loader dedupes by
        index, so a kill-and-resume cycle aggregates bit-identically
        with an uninterrupted run."""
        scenarios = build_campaign("micro")
        reference = aggregate_results(
            "micro", scenarios, run_campaign(scenarios, workers=1), 0
        )
        checkpoint = str(tmp_path / "progress.jsonl")
        run_campaign(scenarios[:3], workers=1, checkpoint_path=checkpoint)
        with open(checkpoint, "a", encoding="utf-8") as handle:
            # killed mid-shard, mid-write: no trailing newline
            handle.write('{"scenario_id": "half", "index": 3, "stabilized"')
        resumed = run_campaign(
            scenarios, workers=1, checkpoint_path=checkpoint, resume=True
        )
        merged = aggregate_results("micro", scenarios, resumed, 0)
        assert json.dumps(merged, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )
        # Every scenario kept exactly one parseable row (the first row
        # appended after the kill did not merge into the garbage tail).
        done = load_checkpoint(checkpoint)
        assert len(done) == len(scenarios)
        parsed_indices = []
        with open(checkpoint, "r", encoding="utf-8") as handle:
            for line in handle:
                try:
                    parsed_indices.append(json.loads(line)["index"])
                except ValueError:
                    continue
        assert sorted(parsed_indices) == [s.index for s in scenarios]

    def test_checkpoint_duplicate_rows_keep_the_last_write(self, tmp_path):
        """Duplicate rows for one scenario index (a re-run after an
        interrupted write) resolve last-write-wins on load."""
        import dataclasses

        scenarios = build_campaign("micro")[:2]
        checkpoint = str(tmp_path / "progress.jsonl")
        results = run_campaign(scenarios, workers=1, checkpoint_path=checkpoint)
        stale = dataclasses.replace(
            results[0], rounds=999, detail="stale interrupted write"
        )
        renamed = dataclasses.replace(stale, scenario_id="some-older-spelling")
        with open(checkpoint, "r", encoding="utf-8") as handle:
            real_rows = handle.read()
        with open(checkpoint, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(renamed.to_dict(), sort_keys=True) + "\n")
            handle.write(json.dumps(stale.to_dict(), sort_keys=True) + "\n")
            handle.write(real_rows)
        done = load_checkpoint(checkpoint)
        assert len(done) == len(scenarios)  # one row per index survives
        assert done[scenarios[0].scenario_id].rounds == results[0].rounds
        assert "some-older-spelling" not in done

    def test_failed_scenarios_keep_a_traceback(self):
        """Regression: the error fold kept only ``str(exc)``, losing the
        raising frame; the detail now carries a truncated traceback and
        still aggregates bit-identically across worker counts."""
        scenarios = [
            _scenario(
                index=i,
                seed=i,
                graph="regular",
                graph_params=(("n", 7), ("degree", 3)),
            )
            for i in range(3)
        ]
        result = run_scenario(scenarios[0])
        assert not result.stabilized
        assert result.detail.startswith("error: NetworkXError")
        # The raising frame survives truncation (that is the point of
        # carrying the traceback at all)...
        assert 'raise nx.NetworkXError("n * d must be even")' in result.detail
        # ...but deep stacks stay bounded.
        assert len(result.detail) < runner_module.TRACEBACK_LIMIT + 200
        serial = run_campaign(scenarios, workers=1)
        sharded = run_campaign(scenarios, workers=2, shard_size=1)
        a = aggregate_results("test", scenarios, serial, 0)
        b = aggregate_results("test", scenarios, sharded, 0)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert a["failure_count"] == 3


class TestNewAxes:
    def test_perturb_topology_keeps_connectivity_and_nodes(self):
        rng = np.random.default_rng(0)
        topology = damaged_clique(10, 2, rng, damage=0.4)
        perturbation = perturb_topology(
            topology, rng, remove=2, add=2, diameter_bound=3
        )
        assert perturbation.topology.n == topology.n
        assert perturbation.topology.diameter <= 3
        assert len(perturbation.removed) == 2
        assert len(perturbation.added) == 2
        for u, v in perturbation.removed:
            assert not perturbation.topology.has_edge(u, v)
        for u, v in perturbation.added:
            assert perturbation.topology.has_edge(u, v)

    def test_perturb_topology_rejects_impossible_requests(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ModelError):
            # A ring cannot lose an edge and keep diameter <= 4.
            perturb_topology(ring(8), rng, remove=1, add=0, diameter_bound=4)

    def test_perturb_topology_never_under_delivers(self):
        rng = np.random.default_rng(0)
        # A complete graph has no non-edges: add=1 must raise instead of
        # silently returning the graph unchanged (which would make the
        # rewire recovery measurement vacuous).
        from repro.graphs.generators import complete_graph

        with pytest.raises(ModelError):
            perturb_topology(complete_graph(6), rng, remove=0, add=1)
        # An added edge may never be one of the just-removed edges.
        for seed in range(5):
            rng = np.random.default_rng(seed)
            topology = damaged_clique(10, 2, rng, damage=0.4)
            perturbation = perturb_topology(topology, rng, remove=2, add=2)
            assert len(perturbation.removed) == 2
            assert len(perturbation.added) == 2
            assert not set(perturbation.removed) & set(perturbation.added)

    def test_carry_configuration_preserves_states(self):
        rng = np.random.default_rng(1)
        topology = damaged_clique(8, 2, rng, damage=0.4)
        algorithm = ThinUnison(2)
        configuration = random_configuration(algorithm, topology, rng)
        perturbation = perturb_topology(topology, rng, remove=1, add=1)
        carried = carry_configuration(configuration, perturbation.topology)
        assert carried.states() == configuration.states()
        with pytest.raises(ModelError):
            carry_configuration(configuration, ring(5))

    def test_hub_colony_is_heterogeneous(self):
        rng = np.random.default_rng(0)
        topology = make_graph("hub-colony", rng, n=30, hubs=2)
        degrees = sorted(topology.degree(v) for v in topology.nodes)
        assert degrees[-1] == topology.n - 1  # a true broadcast hub
        assert degrees[0] <= 6  # while most cells stay sparse
        assert topology.diameter <= 2

    def test_make_graph_unknown_family_lists_names(self):
        with pytest.raises(ValueError, match="hub-colony"):
            make_graph("klein-bottle", np.random.default_rng(0))

    def test_create_execution_unknown_engine_is_value_error(self):
        rng = np.random.default_rng(0)
        topology = ring(6)
        algorithm = ThinUnison(3)
        initial = random_configuration(algorithm, topology, rng)
        with pytest.raises(ValueError, match="'object', 'array'"):
            create_execution(
                topology,
                algorithm,
                initial,
                SynchronousScheduler(),
                engine="simd",
            )


class TestCampaignCLI:
    def test_list(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "micro" in out

    def test_run_and_report(self, capsys, tmp_path):
        artifact = str(tmp_path / "BENCH_campaign_micro.json")
        assert (
            main(
                [
                    "campaign",
                    "run",
                    "--registry",
                    "micro",
                    "--workers",
                    "1",
                    "--output",
                    artifact,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "6/6 scenarios stabilized" in out
        assert os.path.exists(artifact)
        with open(artifact, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["aggregates"]["failure_count"] == 0
        assert payload["meta"]["workers"] == 1

        assert main(["campaign", "report", "--input", artifact]) == 0
        assert "micro" in capsys.readouterr().out

    def test_run_resume_needs_checkpoint(self):
        assert (main(["campaign", "run", "--registry", "micro", "--resume"]) == 2)

    def test_engine_flag_rejects_typos(self):
        with pytest.raises(SystemExit):
            main(["au", "--engine", "simd"])

    def test_artifact_writer_is_deterministic(self, tmp_path):
        scenarios = build_campaign("micro")[:2]
        results = run_campaign(scenarios, workers=1)
        aggregates = aggregate_results("micro", scenarios, results, 0)
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        write_campaign_artifact(aggregates, a, meta={"workers": 1})
        write_campaign_artifact(aggregates, b, meta={"workers": 1})
        with open(a, "rb") as fa, open(b, "rb") as fb:
            assert fa.read() == fb.read()


class TestReplicaBatching:
    """The replica-batched campaign path: seed ensembles fused into one
    ReplicaBatchExecution run with per-scenario results bit-identical to
    solo and sharded execution."""

    def test_smoke_ensemble_aggregates_identical_across_strategies(self):
        scenarios = [s for s in build_campaign("smoke") if s.batch_replicas > 1]
        assert len(scenarios) >= 2  # the smoke registry ships ensembles
        # Two fused ensembles: the replica-batch one and the native-
        # engine one (batch_key includes the engine).
        assert len({s.batch_key() for s in scenarios}) == 2
        assert {s.engine for s in scenarios} == {"replica-batch", "native"}
        batched = run_campaign(scenarios, workers=1)
        solo = run_campaign(scenarios, workers=1, batch=False)
        sharded = run_campaign(scenarios, workers=2, shard_size=3)
        a = aggregate_results("smoke", scenarios, batched, 0)
        b = aggregate_results("smoke", scenarios, solo, 0)
        c = aggregate_results("smoke", scenarios, sharded, 0)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert json.dumps(a, sort_keys=True) == json.dumps(c, sort_keys=True)
        assert a["failure_count"] == 0

    def test_thm11_slice_batches_and_stays_bit_identical(self):
        scenarios = build_campaign("thm11-scaling")[:24]  # D=1: 6 trials x 4 starts
        jobs = runner_module._make_jobs(scenarios, batch=True)
        assert sorted(len(job) for job in jobs) == [6, 6, 6, 6]
        assert runner_module._make_jobs(scenarios, batch=False) == [
            [s] for s in scenarios
        ]
        batched = run_campaign(scenarios, workers=1)
        solo = run_campaign(scenarios, workers=1, batch=False)
        a = aggregate_results("thm11-scaling", scenarios, batched, 0)
        b = aggregate_results("thm11-scaling", scenarios, solo, 0)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_batch_chunks_respect_the_declared_width(self):
        scenarios = [
            _scenario(index=i, seed=10 + i, batch_replicas=2, scheduler="round-robin")
            for i in range(5)
        ]
        jobs = runner_module._make_jobs(scenarios, batch=True)
        assert [len(job) for job in jobs] == [2, 2, 1]
        # Jobs keep the campaign order: leaders sit at their first
        # member's position.
        assert [job[0].index for job in jobs] == [0, 2, 4]

    def test_run_scenario_batch_rejects_mixed_keys(self):
        from repro.campaigns import run_scenario_batch

        a = _scenario(index=0, seed=1, batch_replicas=2)
        b = _scenario(index=1, seed=2, batch_replicas=2, start="all-faulty")
        with pytest.raises(ValueError, match="batch key"):
            run_scenario_batch([a, b])

    def test_batch_member_error_folds_without_sinking_the_batch(self, monkeypatch):
        """A replica whose graph sample raises folds into a failed row;
        the rest of the ensemble still runs batched and stays
        bit-identical to solo runs."""
        from repro.campaigns import run_scenario_batch

        scenarios = [
            _scenario(
                index=i,
                seed=100 + i,
                graph="damaged-clique",
                graph_params=(("n", 8), ("diameter_bound", 2), ("damage", 0.4)),
                diameter_bound=2,
                batch_replicas=3,
                scheduler="round-robin",
            )
            for i in range(3)
        ]
        solos = [run_scenario(s) for s in scenarios]
        real_make_graph = runner_module.make_graph
        calls = {"count": 0}

        def flaky(family, rng, **params):
            calls["count"] += 1
            # Calls 1-3 build the members in order; call 4 is the failed
            # member's solo delegation.  Member 1 raises in both, so it
            # fails deterministically while the others stay healthy.
            if calls["count"] in (2, 4):
                raise RuntimeError("synthetic unusable sample")
            return real_make_graph(family, rng, **params)

        monkeypatch.setattr(runner_module, "make_graph", flaky)
        results = run_scenario_batch(scenarios)
        assert [r.index for r in results] == [0, 1, 2]
        assert not results[1].stabilized
        assert results[1].detail.startswith("error: RuntimeError")
        assert "synthetic unusable sample" in results[1].detail
        # The failure row is byte-identical to what a solo (--no-batch)
        # run would record: the delegation routes it through
        # run_scenario, so the traceback frames in `detail` (which
        # enters the aggregates) match exactly.
        calls["count"] = 1  # re-arm: the next make_graph call raises
        solo_failure = run_scenario(scenarios[1])
        assert results[1].detail == solo_failure.detail
        for batched, solo in ((results[0], solos[0]), (results[2], solos[2])):
            assert (
                batched.stabilized,
                batched.rounds,
                batched.steps,
                batched.n,
                batched.m,
                batched.detail,
            ) == (solo.stabilized, solo.rounds, solo.steps, solo.n, solo.m, solo.detail)

    def test_batch_run_failure_falls_back_to_solo_runs(self, monkeypatch):
        """If the fused ensemble itself dies, the group degrades to
        per-scenario execution instead of sinking every member."""
        from repro.campaigns import run_scenario_batch
        from repro.model.replica_engine import ReplicaBatchExecution

        scenarios = [
            _scenario(index=i, seed=50 + i, batch_replicas=2, scheduler="round-robin")
            for i in range(2)
        ]
        expected = [run_scenario(s) for s in scenarios]

        def boom(self, max_rounds, max_steps=None):
            raise RuntimeError("fused pass died")

        monkeypatch.setattr(ReplicaBatchExecution, "run_ensemble", boom)
        results = run_scenario_batch(scenarios)
        for got, want in zip(results, expected):
            assert (got.stabilized, got.rounds, got.steps) == (
                want.stabilized,
                want.rounds,
                want.steps,
            )

    def test_cli_no_batch_flag_matches_batched_run(self, tmp_path):
        batched_path = str(tmp_path / "batched.json")
        solo_path = str(tmp_path / "solo.json")
        for path, extra in ((batched_path, []), (solo_path, ["--no-batch"])):
            assert (
                main(
                    [
                        "campaign",
                        "run",
                        "--registry",
                        "micro",
                        "--output",
                        path,
                    ]
                    + extra
                )
                == 0
            )
        with open(batched_path) as fa, open(solo_path) as fb:
            a, b = json.load(fa), json.load(fb)
        assert json.dumps(a["aggregates"], sort_keys=True) == json.dumps(
            b["aggregates"], sort_keys=True
        )
        assert a["meta"]["batched"] is True
        assert b["meta"]["batched"] is False
