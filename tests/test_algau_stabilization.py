"""Integration tests for Theorem 1.1 — AlgAU self-stabilization.

From arbitrary adversarial initial configurations, under synchronous and
asynchronous fair schedulers, the graph must become good within
``O(k^3)`` rounds, stay good, and then satisfy the AU safety/liveness
conditions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.monitors import GoodGraphMonitor, TransitionCounter
from repro.analysis.stabilization import measure_au_stabilization
from repro.core.algau import ThinUnison
from repro.core.clock import CyclicClock
from repro.core.predicates import is_good_graph
from repro.faults.injection import (
    au_adversarial_suite,
    au_all_faulty,
    au_clock_tear,
    au_sign_split,
    random_configuration,
)
from repro.graphs.generators import (
    caterpillar,
    complete_graph,
    damaged_clique,
    dumbbell,
    path,
    ring,
    star,
)
from repro.graphs.topology import single_node_topology
from repro.model.execution import Execution
from repro.model.scheduler import (
    LaggardScheduler,
    RandomSubsetScheduler,
    RotatingScheduler,
    RoundRobinScheduler,
    ShuffledRoundRobinScheduler,
    SynchronousScheduler,
)
from repro.tasks.spec import check_au_safety, check_au_update_is_pulse


def stabilize(topology, d, scheduler, initial_factory, seed=0, max_factor=200):
    rng = np.random.default_rng(seed)
    alg = ThinUnison(d)
    initial = initial_factory(alg, topology, rng)
    result = measure_au_stabilization(
        alg,
        topology,
        initial,
        scheduler,
        rng,
        max_rounds=max_factor * (3 * d + 2) ** 3,
        confirm_rounds=10,
    )
    assert result.stabilized, result.detail
    return result


GRAPHS = [
    (lambda rng: complete_graph(6), 1),
    (lambda rng: star(7), 2),
    (lambda rng: damaged_clique(10, 2, rng), 2),
    (lambda rng: dumbbell(4, 2), 4),
    (lambda rng: ring(8), 4),
    (lambda rng: path(6), 5),
    (lambda rng: caterpillar(4, 1), 5),
]

SCHEDULERS = [
    SynchronousScheduler,
    RoundRobinScheduler,
    ShuffledRoundRobinScheduler,
    lambda: RandomSubsetScheduler(0.5),
    lambda: LaggardScheduler(victim=0, period=6),
]


class TestStabilizationMatrix:
    @pytest.mark.parametrize("graph_factory,d", GRAPHS)
    @pytest.mark.parametrize("scheduler_factory", SCHEDULERS)
    def test_random_start(self, graph_factory, d, scheduler_factory):
        rng = np.random.default_rng(1)
        topology = graph_factory(rng)
        stabilize(topology, d, scheduler_factory(), random_configuration, seed=2)

    @pytest.mark.parametrize(
        "initial_factory",
        [au_sign_split, au_clock_tear, au_all_faulty],
        ids=["sign-split", "clock-tear", "all-faulty"],
    )
    @pytest.mark.parametrize("graph_factory,d", GRAPHS[:5])
    def test_adversarial_starts(self, graph_factory, d, initial_factory):
        rng = np.random.default_rng(3)
        topology = graph_factory(rng)
        stabilize(
            topology,
            d,
            ShuffledRoundRobinScheduler(),
            initial_factory,
            seed=4,
        )

    def test_single_node(self):
        topology = single_node_topology()
        stabilize(topology, 1, SynchronousScheduler(), random_configuration)

    def test_oversized_diameter_bound_is_fine(self):
        """Running with D far above diam(G) still stabilizes (the bound
        is only an upper bound)."""
        topology = complete_graph(5)
        stabilize(topology, 6, SynchronousScheduler(), random_configuration)


class TestStabilizationBound:
    """The measured stabilization stays well inside the paper's O(k^3)
    budget on every instance we try (constants unspecified in the
    paper; we check against 1·k^3 which empirically leaves huge slack).
    """

    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_rounds_within_k_cubed(self, d):
        rng = np.random.default_rng(5)
        topology = complete_graph(8) if d == 1 else damaged_clique(10, d, rng)
        alg = ThinUnison(d)
        k = alg.levels.k
        for name, initial in au_adversarial_suite(alg, topology, rng).items():
            result = measure_au_stabilization(
                alg,
                topology,
                initial,
                ShuffledRoundRobinScheduler(),
                rng,
                max_rounds=k**3,
            )
            assert result.stabilized, (d, name)
            assert result.rounds <= k**3


class TestPostStabilizationBehavior:
    """After stabilization: safety (neighbor clocks adjacent), updates
    are +1 pulses, and every node keeps pulsing (liveness)."""

    def test_safety_and_pulses(self):
        rng = np.random.default_rng(6)
        d = 2
        topology = damaged_clique(9, d, rng)
        alg = ThinUnison(d)
        group = CyclicClock(alg.levels.group_order)
        execution = Execution(
            topology,
            alg,
            random_configuration(alg, topology, rng),
            ShuffledRoundRobinScheduler(),
            rng=rng,
        )
        execution.run(
            max_rounds=50_000,
            until=lambda e: is_good_graph(alg, e.configuration),
        )
        assert is_good_graph(alg, execution.configuration)
        counter = TransitionCounter(alg)
        execution.monitors = (counter,)
        counter.on_start(execution)
        window = topology.diameter + 12
        previous = execution.configuration
        for _ in range(window * topology.n):
            record = execution.step()
            config = execution.configuration
            clocks = [alg.output(config[v]) for v in topology.nodes]
            assert check_au_safety(topology, clocks, group).valid
            for node, old, new in record.changed:
                assert check_au_update_is_pulse(
                    group, alg.output(old), alg.output(new)
                ).valid
            previous = config
        for v in topology.nodes:
            assert counter.pulses(v) >= 1  # everyone advanced

    def test_good_graph_monitor_detects_stabilization(self):
        rng = np.random.default_rng(7)
        alg = ThinUnison(1)
        topology = complete_graph(5)
        monitor = GoodGraphMonitor(alg, check_every_step=True)
        execution = Execution(
            topology,
            alg,
            random_configuration(alg, topology, rng),
            SynchronousScheduler(),
            rng=rng,
            monitors=(monitor,),
        )
        execution.run(max_rounds=2000)
        assert monitor.first_good_time is not None
        assert monitor.goodness_lost_at is None  # Lem 2.10


class TestAdversarialRotatingScheduler:
    """AlgAU stabilizes even under the rotating adversary that
    live-locks the Appendix-A algorithm on the same ring."""

    def test_stabilizes_on_livelock_instance(self):
        from repro.baselines.failed_reset_au import livelock_witness

        witness = livelock_witness(2, 2)
        topology = witness.topology
        rng = np.random.default_rng(8)
        alg = ThinUnison(topology.diameter)
        scheduler = RotatingScheduler(witness.base_order, shift=witness.shift)
        execution = Execution(
            topology,
            alg,
            random_configuration(alg, topology, rng),
            scheduler,
            rng=rng,
        )
        result = execution.run(
            max_rounds=50_000,
            until=lambda e: is_good_graph(alg, e.configuration),
        )
        assert result.stopped_by_predicate


class TestDeterminism:
    """AlgAU is deterministic: same initial configuration + schedule
    give identical executions."""

    def test_reproducible_runs(self):
        rng = np.random.default_rng(9)
        topology = ring(6)
        alg = ThinUnison(3)
        initial = random_configuration(alg, topology, rng)
        trajectories = []
        for _ in range(2):
            execution = Execution(
                topology,
                alg,
                initial,
                RoundRobinScheduler(),
                rng=np.random.default_rng(0),
            )
            states = []
            for _ in range(100):
                execution.step()
                states.append(execution.configuration.states())
            trajectories.append(states)
        assert trajectories[0] == trajectories[1]
