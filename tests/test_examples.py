"""Every example script must run to completion as a subprocess.

The examples are the library's executable documentation — a broken
example is a broken deliverable, so each one is exercised end to end
(they all have internal assertions of their own).
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "examples"
)

EXAMPLES = [
    "quickstart.py",
    "campaign_quickstart.py",
    "biological_quorum_clock.py",
    "fly_sop_selection.py",
    "async_leader_election.py",
    "livelock_demo.py",
    "adversarial_stress.py",
    "byzantine_containment.py",
    "sparse_activation.py",
    "native_frontier.py",
    "pareto_zoo.py",
]


def test_every_example_is_covered():
    """No example file exists without a test entry."""
    on_disk = {name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")}
    assert on_disk == set(EXAMPLES)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n--- stdout ---\n{result.stdout[-2000:]}"
        f"\n--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


class TestExampleContent:
    """Spot-check the narratives the examples must deliver."""

    def run(self, script):
        result = subprocess.run(
            [sys.executable, os.path.join(EXAMPLES_DIR, script)],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0
        return result.stdout

    def test_quickstart_reports_stabilization(self):
        out = self.run("quickstart.py")
        assert "stabilized after" in out
        assert "safety holds" in out

    def test_campaign_quickstart_recovers_from_rewires(self):
        out = self.run("campaign_quickstart.py")
        assert "scenarios stabilized" in out
        assert "every rewired network recovered" in out

    def test_livelock_demo_contrasts_both(self):
        out = self.run("livelock_demo.py")
        assert "never" in out  # the failed algorithm never stabilizes
        assert "AlgAU stabilized" in out

    def test_sop_selection_recovers(self):
        out = self.run("fly_sop_selection.py")
        assert "re-selected a valid pattern" in out

    def test_adversarial_stress_climbs_ladder(self):
        out = self.run("adversarial_stress.py")
        assert "GOOD" in out
        assert "good graph reached" in out
