"""Differential validation of the compiled native kernel tier.

The ``native`` engine reroutes three kernel seams of the array tier —
batched δ, the pair-goodness fold, the full goodness scan — to the
CSR-walking kernels of :mod:`repro.core.algau_native`.  Everything
here checks the same contract the array engine owes the object model:
*bit identity*.  Three layers:

* kernel lanes — the pure-Python reference lane, the resolved compiled
  backend, the numpy :class:`VectorKernel`, and the scalar
  ``delta_one`` must agree pointwise (property-tested on random codes
  over random inclusive-CSR neighborhoods);
* engines — :class:`NativeExecution` must reproduce
  :class:`ArrayExecution` step for step across graphs, schedulers,
  and every fault regime (storms, Byzantine pokes, crash masks), and
  the record-free ``advance()`` bulk path must land on the same state
  as the step loop;
* plumbing — registry, CLI, fallback-when-unavailable, the frontier
  CSR builders, and the replica-batch lane.

Compiled-backend tests skip when no backend resolves (no numba, no C
compiler); the Python lane keeps the kernel logic covered regardless.
"""

from __future__ import annotations

import itertools
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import algau_native
from repro.core.algau import ThinUnison
from repro.core.algau_native import (
    NativeBackendError,
    NativeKernel,
    _PythonBackend,
    native_backend,
    native_backend_name,
)
from repro.core.turns import able, faulty
from repro.faults.injection import TransientFaultInjector, random_configuration
from repro.graphs.csr import CSRAdjacency
from repro.graphs.frontier import (
    FRONTIER_FAMILIES,
    frontier_colony,
    frontier_gnm,
    frontier_ring,
)
from repro.graphs.generators import damaged_clique, random_connected, ring
from repro.model.array_engine import ArrayExecution
from repro.model.engine import ENGINE_NAMES, create_execution
from repro.model.errors import TopologyError
from repro.model.native_engine import (
    NativeExecution,
    NativeReplicaBatchExecution,
    native_execution_class,
    replica_batch_execution_class,
)
from repro.model.replica_engine import ReplicaBatchExecution, ReplicaSpec
from repro.model.scheduler import (
    LaggardScheduler,
    RandomSubsetScheduler,
    RoundRobinScheduler,
    ShuffledRoundRobinScheduler,
    SynchronousScheduler,
)

needs_backend = pytest.mark.skipif(
    native_backend() is None,
    reason="no native backend (numba not installed, no C compiler)",
)


# ----------------------------------------------------------------------
# Kernel-lane agreement (property-tested).
# ----------------------------------------------------------------------


def _random_inclusive_csr(rng: np.random.Generator, n: int) -> CSRAdjacency:
    """An arbitrary symmetric inclusive-CSR adjacency (connectivity not
    required — the kernels are row-local)."""
    upper = rng.random((n, n)) < rng.uniform(0.15, 0.7)
    adj = np.triu(upper, k=1)
    adj = adj | adj.T
    indptr = [0]
    indices = []
    for v in range(n):
        row = [v] + sorted(int(u) for u in np.flatnonzero(adj[v]))
        indices.extend(row)
        indptr.append(len(indices))
    return CSRAdjacency(
        np.asarray(indptr, dtype=np.int64), np.asarray(indices, dtype=np.int64)
    )


def _lanes(kernel):
    lanes = {"python": NativeKernel(kernel, backend=_PythonBackend)}
    if native_backend() is not None:
        lanes[native_backend_name()] = NativeKernel(kernel)
    return lanes


@settings(max_examples=60, deadline=None)
@given(
    d=st.integers(min_value=1, max_value=3),
    n=st.integers(min_value=1, max_value=11),
    cautious=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_delta_lanes_agree_property(d, n, cautious, seed):
    """delta_one == delta_batch == python lane == compiled lane on
    random codes over random inclusive neighborhoods."""
    rng = np.random.default_rng(seed)
    algorithm = ThinUnison(d, cautious_af=cautious)
    kernel = algorithm.vector_kernel()
    csr = _random_inclusive_csr(rng, n)
    codes = rng.integers(0, algorithm.encoding.size, n)
    scalar = np.array(
        [kernel.delta_one(codes, row) for row in csr.neighbor_lists()],
        dtype=np.int64,
    )
    batched = kernel.delta_batch(codes, kernel.signal_presence(codes, csr))
    assert np.array_equal(scalar, batched)
    for name, lane in _lanes(kernel).items():
        assert np.array_equal(lane.delta_rows(codes, csr), scalar), name
        # Partial row sets too — the incremental engines' call shape.
        rows = np.flatnonzero(rng.random(n) < 0.5).astype(np.int64)
        if len(rows):
            assert np.array_equal(
                lane.delta_rows(codes, csr, rows), scalar[rows]
            ), name


@settings(max_examples=40, deadline=None)
@given(
    d=st.integers(min_value=1, max_value=3),
    n=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_goodness_and_fold_lanes_agree_property(d, n, seed):
    """goodness_counts and the pair fold agree across lanes, and the
    fold equals the brute-force goodness difference of the step."""
    rng = np.random.default_rng(seed)
    algorithm = ThinUnison(d)
    kernel = algorithm.vector_kernel()
    csr = _random_inclusive_csr(rng, n)
    codes = rng.integers(0, algorithm.encoding.size, n)
    expected_counts = kernel.goodness_counts(codes, csr)
    for name, lane in _lanes(kernel).items():
        assert lane.goodness_counts(codes, csr) == tuple(expected_counts), name

    # A synthetic step: activate a random subset, take its δ.
    new = kernel.delta_batch(codes, kernel.signal_presence(codes, csr))
    new = np.where(rng.random(n) < 0.5, new, codes)
    diff = np.flatnonzero(new != codes).astype(np.int64)
    if not len(diff):
        return
    old_diff, new_diff = codes[diff], new[diff]
    new_code_of = codes.copy()
    new_code_of[diff] = new_diff
    in_diff = np.zeros(n, dtype=bool)
    cols, counts, delta, col_changed = kernel.pair_deltas(
        codes, csr, diff, old_diff, new_diff, in_diff, new_code_of
    )
    vec_fold = int(delta.sum()) + int(delta[~col_changed].sum())
    bad_before = kernel.goodness_counts(codes, csr)[1]
    bad_after = kernel.goodness_counts(new, csr)[1]
    assert vec_fold == bad_after - bad_before
    for name, lane in _lanes(kernel).items():
        scratch = np.zeros(n, dtype=bool)
        fold = lane.fold_pair_delta(
            codes, csr, diff, old_diff, new_diff, scratch, new_code_of
        )
        assert fold == vec_fold, name
        assert not scratch.any(), name  # restored on exit


# ----------------------------------------------------------------------
# Backend resolution and graceful degradation.
# ----------------------------------------------------------------------


@pytest.fixture
def fresh_resolution(monkeypatch):
    """Reset the memoized backend so env overrides take effect, and
    restore the real resolution afterwards."""
    monkeypatch.setattr(algau_native, "_RESOLVED", algau_native._UNRESOLVED)
    yield monkeypatch


class TestBackendResolution:
    def test_resolved_name_is_known(self):
        assert native_backend_name() in (None, "numba", "cc", "python")

    def test_python_lane_forced_by_env(self, fresh_resolution):
        fresh_resolution.setenv("REPRO_NATIVE_BACKEND", "python")
        assert native_backend_name() == "python"

    def test_env_none_disables_the_tier(self, fresh_resolution):
        fresh_resolution.setenv("REPRO_NATIVE_BACKEND", "none")
        assert native_backend() is None
        with pytest.raises(NativeBackendError):
            NativeKernel(ThinUnison(1).vector_kernel())

    def test_fallback_to_array_engine_warns(self, monkeypatch):
        monkeypatch.setattr(algau_native, "_RESOLVED", None)
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert native_execution_class() is ArrayExecution
        with pytest.warns(RuntimeWarning, match="fall back"):
            cls = replica_batch_execution_class("native")
        assert cls is ReplicaBatchExecution
        # create_execution(engine="native") rides the same fallback.
        topology = ring(6)
        algorithm = ThinUnison(1)
        initial = random_configuration(
            algorithm, topology, np.random.default_rng(0)
        )
        with pytest.warns(RuntimeWarning):
            execution = create_execution(
                topology,
                algorithm,
                initial,
                SynchronousScheduler(),
                rng=np.random.default_rng(1),
                engine="native",
            )
        assert type(execution) is ArrayExecution
        execution.step()

    @needs_backend
    def test_available_backend_selects_native_classes(self):
        assert native_execution_class() is NativeExecution
        assert replica_batch_execution_class("native") is NativeReplicaBatchExecution
        assert replica_batch_execution_class("replica-batch") is ReplicaBatchExecution


# ----------------------------------------------------------------------
# Engine differential: native vs array, step for step.
# ----------------------------------------------------------------------

GRAPHS = {
    "ring9": lambda seed: ring(9),
    "damaged10": lambda seed: damaged_clique(10, 2, np.random.default_rng(seed)),
    "gnp12": lambda seed: random_connected(12, 0.35, np.random.default_rng(seed)),
}

SCHEDULERS = {
    "sync": lambda topo: SynchronousScheduler(),
    "shuffled-rr": lambda topo: ShuffledRoundRobinScheduler(),
    "random-subset": lambda topo: RandomSubsetScheduler(0.4),
    "laggard": lambda topo: LaggardScheduler(victim=1, period=5),
}

FAULT_KINDS = ("none", "storm", "byz-frozen", "byz-random", "byz-oscillating", "crash")

CASES = [
    (graph, sched, FAULT_KINDS[i % len(FAULT_KINDS)], 7000 + 13 * i)
    for i, (graph, sched) in enumerate(
        itertools.product(sorted(GRAPHS), sorted(SCHEDULERS))
    )
]


def _make_variant(topology, initial, sched_key, fault_kind, seed, engine):
    from repro.resilience.adversary import PermanentFaultAdversary
    from repro.resilience.strategies import Crash, make_strategy

    algorithm = ThinUnison(2)
    intervention = None
    if fault_kind == "storm":
        intervention = TransientFaultInjector(
            algorithm,
            times=(3, 9, 21),
            fraction=0.3,
            rng=np.random.default_rng(seed + 2),
        )
    elif fault_kind.startswith("byz-") or fault_kind == "crash":
        if fault_kind == "crash":
            strategy = Crash(at=7)
        else:
            strategy = make_strategy(fault_kind[len("byz-") :])
        nodes = (1, topology.n - 2)
        intervention = PermanentFaultAdversary(
            strategy, nodes, rng=np.random.default_rng(seed + 2)
        )
    return create_execution(
        topology,
        algorithm,
        initial,
        SCHEDULERS[sched_key](topology),
        rng=np.random.default_rng(seed + 3),
        intervention=intervention,
        engine=engine,
    )


@needs_backend
class TestNativeEngineDifferential:
    @pytest.mark.parametrize(
        "graph_key, sched_key, fault_kind, seed",
        CASES,
        ids=[f"{g}-{s}-{f}" for g, s, f, _ in CASES],
    )
    def test_step_for_step_equivalence(self, graph_key, sched_key, fault_kind, seed):
        topology = GRAPHS[graph_key](seed)
        initial = random_configuration(
            ThinUnison(2), topology, np.random.default_rng(seed + 1)
        )
        reference = _make_variant(
            topology, initial, sched_key, fault_kind, seed, "array"
        )
        native = _make_variant(
            topology, initial, sched_key, fault_kind, seed, "native"
        )
        assert type(native) is NativeExecution
        for step in range(45):
            ref_record = reference.step()
            nat_record = native.step()
            assert nat_record == ref_record, step
            assert native.graph_is_good() == reference.graph_is_good(), step
            assert native.enabled_count() == reference.enabled_count(), step
        assert np.array_equal(native.codes, reference.codes)
        assert native.masked_nodes == reference.masked_nodes
        assert native.rounds.boundaries == reference.rounds.boundaries

    def test_pokes_and_masks_stay_in_lockstep(self):
        topology = ring(9)
        algorithm = ThinUnison(2)
        initial = random_configuration(algorithm, topology, np.random.default_rng(5))
        pair = [
            create_execution(
                topology,
                algorithm,
                initial,
                RoundRobinScheduler(),
                rng=np.random.default_rng(6),
                engine=engine,
            )
            for engine in ("array", "native")
        ]
        for burst in range(4):
            for execution in pair:
                execution.poke_states({burst: faulty(3), (burst + 4) % 9: able(-2)})
                execution.mask_nodes((burst,))
            for step in range(12):
                records = [execution.step() for execution in pair]
                assert records[0] == records[1], (burst, step)
                assert pair[0].graph_is_good() == pair[1].graph_is_good()
                assert pair[0].enabled_count() == pair[1].enabled_count()
            for execution in pair:
                execution.mask_nodes(())
        assert np.array_equal(pair[0].codes, pair[1].codes)

    @pytest.mark.parametrize("engine", ["array", "native"])
    def test_advance_equals_the_step_loop(self, engine):
        """The record-free bulk path must land on exactly the state the
        step loop reaches — codes, time, and round boundaries."""
        topology = damaged_clique(10, 2, np.random.default_rng(11))
        algorithm = ThinUnison(2)
        initial = random_configuration(algorithm, topology, np.random.default_rng(12))
        bulk, looped = [
            create_execution(
                topology,
                algorithm,
                initial,
                ShuffledRoundRobinScheduler(),
                rng=np.random.default_rng(13),
                engine=engine,
            )
            for _ in range(2)
        ]
        bulk.advance(37)
        for _ in range(37):
            looped.step()
        assert bulk.t == looped.t == 37
        assert np.array_equal(bulk.codes, looped.codes)
        assert bulk.rounds.boundaries == looped.rounds.boundaries
        assert bulk.completed_rounds == looped.completed_rounds
        assert bulk.graph_is_good() == looped.graph_is_good()
        # advance composes with step() afterwards.
        assert bulk.step() == looped.step()

    def test_advance_with_intervention_takes_the_recording_path(self):
        """Monitored/intervened runs cannot drop StepRecords; advance
        must still be equivalent (it degrades to the step loop)."""
        topology = ring(9)
        algorithm = ThinUnison(2)
        initial = random_configuration(algorithm, topology, np.random.default_rng(1))

        def build(engine):
            return create_execution(
                topology,
                algorithm,
                initial,
                SynchronousScheduler(),
                rng=np.random.default_rng(2),
                intervention=TransientFaultInjector(
                    algorithm,
                    times=(4, 11),
                    fraction=0.3,
                    rng=np.random.default_rng(3),
                ),
                engine=engine,
            )

        bulk, looped = build("native"), build("native")
        bulk.advance(30)
        for _ in range(30):
            looped.step()
        assert np.array_equal(bulk.codes, looped.codes)
        assert bulk.rounds.boundaries == looped.rounds.boundaries

    def test_stabilization_measurements_agree(self):
        from repro.analysis.stabilization import measure_au_stabilization

        d = 2
        algorithm = ThinUnison(d)
        topology = damaged_clique(12, d, np.random.default_rng(7))
        initial = random_configuration(algorithm, topology, np.random.default_rng(8))
        results = [
            measure_au_stabilization(
                algorithm,
                topology,
                initial,
                ShuffledRoundRobinScheduler(),
                np.random.default_rng(9),
                max_rounds=100_000,
                engine=engine,
            )
            for engine in ("array", "native")
        ]
        assert results[0].stabilized and results[1].stabilized
        assert results[0].rounds == results[1].rounds
        assert results[0].steps == results[1].steps


@needs_backend
class TestNativeReplicaBatch:
    def test_ensemble_outcomes_match_numpy_ensemble(self):
        algorithm = ThinUnison(2)
        families = [
            lambda rng: ring(9),
            lambda rng: damaged_clique(10, 2, rng, damage=0.4),
        ]
        batches = []
        for cls in (ReplicaBatchExecution, NativeReplicaBatchExecution):
            specs = []
            for i in range(6):
                rng = np.random.default_rng(4000 + 11 * i)
                topology = families[i % 2](rng)
                initial = random_configuration(algorithm, topology, rng)
                scheduler = (
                    SynchronousScheduler()
                    if i % 3 == 0
                    else ShuffledRoundRobinScheduler()
                )
                specs.append(ReplicaSpec(topology, initial, scheduler, rng))
            batches.append(cls.from_replicas(algorithm, specs))
        numpy_outcomes = batches[0].run_ensemble(max_rounds=4000)
        native_outcomes = batches[1].run_ensemble(max_rounds=4000)
        assert native_outcomes == numpy_outcomes

    def test_runner_selects_the_native_batch_class(self):
        from repro.campaigns.registry import build_campaign
        from repro.campaigns.runner import run_campaign

        scenarios = [
            s
            for s in build_campaign("smoke")
            if s.engine == "native" and s.batch_replicas > 1
        ]
        assert scenarios, "smoke must carry a native replica ensemble"
        solo = run_campaign(scenarios, workers=1, batch=False)
        batched = run_campaign(scenarios, workers=1, batch=True)
        assert [r.stabilized for r in solo] == [r.stabilized for r in batched]
        assert [r.rounds for r in solo] == [r.rounds for r in batched]
        assert [r.steps for r in solo] == [r.steps for r in batched]


# ----------------------------------------------------------------------
# Frontier CSR builders.
# ----------------------------------------------------------------------


class TestFrontierTopologies:
    def test_ring_matches_the_networkx_build(self):
        reference = ring(12).inclusive_csr()
        frontier = frontier_ring(12).inclusive_csr()
        assert np.array_equal(reference.indptr, frontier.indptr)
        assert np.array_equal(reference.indices, frontier.indices)

    @pytest.mark.parametrize(
        "build",
        [
            lambda: frontier_ring(50),
            lambda: frontier_gnm(60, 90, seed=5),
            lambda: frontier_colony(55, hubs=3),
        ],
        ids=["ring", "gnm", "colony"],
    )
    def test_csr_invariants(self, build):
        """Self-first rows, ascending open neighborhoods, symmetry, and
        an edge count consistent with the row lengths."""
        topology = build()
        csr = topology.inclusive_csr()
        neighbor_sets = {}
        for v in range(topology.n):
            row = csr.neighborhood(v)
            assert row[0] == v
            rest = [int(u) for u in row[1:]]
            assert rest == sorted(set(rest)) and v not in rest
            neighbor_sets[v] = set(rest)
        for v, peers in neighbor_sets.items():
            for u in peers:
                assert v in neighbor_sets[u], (u, v)
        assert sum(len(s) for s in neighbor_sets.values()) == 2 * topology.m
        assert topology.nodes is topology.nodes  # identity-stable
        assert len(topology) == topology.n
        assert topology.inclusive_neighbors(1)[0] == 1
        assert topology.degree(1) == len(topology.neighbors(1))

    def test_colony_shape(self):
        colony = frontier_colony(100, hubs=2)
        assert colony.degree(0) == 99 and colony.degree(1) == 99
        assert colony.degree(50) == 4  # ring + both hubs

    def test_small_n_rejected(self):
        with pytest.raises(TopologyError):
            frontier_ring(2)
        with pytest.raises(TopologyError):
            frontier_colony(4, hubs=0)

    def test_families_registry(self):
        assert set(FRONTIER_FAMILIES) == {"ring", "gnm", "colony"}
        for build in FRONTIER_FAMILIES.values():
            assert build(40, seed=1).n == 40

    @needs_backend
    def test_engines_agree_on_frontier_graphs(self):
        algorithm = ThinUnison(2)
        for family, build in sorted(FRONTIER_FAMILIES.items()):
            topology = build(300, seed=17)
            rng = np.random.default_rng(18)
            codes = rng.integers(0, algorithm.encoding.size, topology.n)
            initial = algorithm.encoding.decode_configuration(topology, codes)
            pair = [
                create_execution(
                    topology,
                    algorithm,
                    initial,
                    SynchronousScheduler(),
                    rng=np.random.default_rng(19),
                    engine=engine,
                )
                for engine in ("array", "native")
            ]
            pair[0].advance(25)
            pair[1].advance(25)
            assert np.array_equal(pair[0].codes, pair[1].codes), family
            assert pair[0].graph_is_good() == pair[1].graph_is_good(), family


# ----------------------------------------------------------------------
# Registry / CLI plumbing.
# ----------------------------------------------------------------------


class TestNativePlumbing:
    def test_native_is_a_registered_engine(self):
        assert "native" in ENGINE_NAMES

    def test_native_pairing_registry_is_engine_paired(self):
        from repro.campaigns.registry import build_campaign

        scenarios = build_campaign("native-pairing")
        kinds = {s.faults.kind for s in scenarios}
        assert {"none", "storm", "rewire", "byzantine", "crash"} <= kinds
        pairs = {}
        for s in scenarios:
            pairs.setdefault(s.tag("pairing"), []).append(s)
        for paired in pairs.values():
            assert sorted(p.engine for p in paired) == ["array", "native"]
            assert len({p.seed for p in paired}) == 1
            assert len({p.graph for p in paired}) == 1
            assert len({p.faults for p in paired}) == 1

    @needs_backend
    def test_native_pairing_slice_verifies(self):
        from repro.campaigns.aggregate import aggregate_results, verify_engine_pairing
        from repro.campaigns.registry import build_campaign
        from repro.campaigns.runner import run_campaign

        scenarios = build_campaign("native-pairing")[:8]
        results = run_campaign(scenarios, workers=1)
        rows = aggregate_results("native-pairing", scenarios, results, 0)["rows"]
        assert verify_engine_pairing(rows) == []

    def test_engines_cli_subcommand(self, capsys):
        from repro.cli import main

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in ENGINE_NAMES:
            assert name in out
        assert "available" in out
