"""Module Restart — Theorem 3.1 and Lemmas 3.9-3.11."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.injection import random_configuration
from repro.graphs.generators import (
    complete_graph,
    dumbbell,
    path,
    ring,
    star,
)
from repro.model.configuration import Configuration
from repro.model.execution import Execution
from repro.model.scheduler import SynchronousScheduler
from repro.model.signal import Signal
from repro.tasks.restart import (
    RESTART_EXIT,
    IdleState,
    RestartMixin,
    RestartState,
    StandaloneRestart,
)


class TestRestartRules:
    """The three rules, probed directly on the mixin."""

    @pytest.fixture
    def module(self) -> RestartMixin:
        return RestartMixin(diameter_bound=3)  # states σ(0..6)

    def test_no_restart_sensed_returns_none(self, module):
        assert module.restart_transition(IdleState(), Signal((IdleState(),))) is None

    def test_rule1_mixed_neighborhood_enters(self, module):
        # A main-state node sensing a σ-state is pulled to σ(0)...
        result = module.restart_transition(
            IdleState(), Signal((IdleState(), RestartState(4)))
        )
        assert result == RestartState(0)
        # ...and a σ-node sensing a main state restarts to σ(0) too.
        result = module.restart_transition(
            RestartState(4), Signal((IdleState(), RestartState(4)))
        )
        assert result == RestartState(0)

    def test_rule2_follows_minimum(self, module):
        result = module.restart_transition(
            RestartState(5),
            Signal((RestartState(5), RestartState(2), RestartState(3))),
        )
        assert result == RestartState(3)  # i_min + 1 = 3

    def test_rule2_can_move_backwards(self, module):
        """Synchronizing down to the minimum may decrease the index."""
        result = module.restart_transition(
            RestartState(6), Signal((RestartState(6), RestartState(0)))
        )
        assert result == RestartState(1)

    def test_rule3_exit(self, module):
        result = module.restart_transition(RestartState(6), Signal((RestartState(6),)))
        assert result is RESTART_EXIT

    def test_rule2_at_exit_minus_one(self, module):
        result = module.restart_transition(
            RestartState(5), Signal((RestartState(5), RestartState(6)))
        )
        assert result == RestartState(6)

    def test_state_count(self, module):
        assert len(module.restart_states()) == 2 * 3 + 1


def run_until_exit(topology, d, initial, max_steps=None):
    """Run synchronously until the *full* concurrent exit: the step in
    which all ``n`` nodes leave Restart together.

    From adversarial initial configurations a node whose whole
    neighborhood happens to sit at σ(2D) may exit early and alone —
    Thm 3.1 allows this: rule 1 pulls it straight back in, and the
    theorem's concurrent exit is the one this helper waits for.
    Returns (full_exit_time, partial_exit_times).
    """
    alg = StandaloneRestart(d)
    rng = np.random.default_rng(0)
    execution = Execution(topology, alg, initial, SynchronousScheduler(), rng=rng)
    budget = max_steps if max_steps is not None else 10 * d + 20
    partial = []
    for _ in range(budget):
        record = execution.step()
        exits = [
            v
            for v, old, new in record.changed
            if isinstance(old, RestartState) and isinstance(new, IdleState)
        ]
        if len(exits) == topology.n:
            return record.t + 1, partial
        if exits:
            partial.append(record.t + 1)
    return None, partial


class TestTheorem31:
    """If some node is in a Restart state at t0 = 0, all nodes exit
    Restart concurrently by t0 + O(D): the proof gives ≤ 2D+1 rounds
    until σ(0) appears (or an exit happens) plus ≤ 4D for the σ(0)
    wave — we assert the combined ≤ 6D + 4."""

    @pytest.mark.parametrize(
        "topology_factory,d",
        [
            (lambda: complete_graph(6), 1),
            (lambda: star(8), 2),
            (lambda: ring(8), 4),
            (lambda: path(6), 5),
            (lambda: dumbbell(4, 2), 4),
        ],
    )
    @pytest.mark.parametrize("seed", range(6))
    def test_concurrent_exit_within_bound(self, topology_factory, d, seed):
        topology = topology_factory()
        alg = StandaloneRestart(d)
        rng = np.random.default_rng(seed)
        initial = random_configuration(alg, topology, rng)
        if not any(isinstance(initial[v], RestartState) for v in topology.nodes):
            initial = initial.replace({0: RestartState(0)})
        exit_time, partial = run_until_exit(topology, d, initial)
        assert exit_time is not None, "full concurrent exit never happened"
        assert exit_time <= 6 * d + 4
        # Early partial exits may only happen from garbage configs, and
        # only before the full exit.
        assert all(t < exit_time for t in partial)

    def test_single_entry_pulls_everyone(self):
        """One node at σ(0) in an otherwise idle path: the wave spreads
        and everyone exits concurrently."""
        topology = path(5)
        d = 4
        alg = StandaloneRestart(d)
        initial = Configuration.uniform(topology, IdleState()).replace(
            {0: RestartState(0)}
        )
        exit_time, partial = run_until_exit(topology, d, initial)
        assert exit_time is not None
        assert not partial

    def test_all_at_exit_state_leave_immediately(self):
        topology = complete_graph(4)
        d = 2
        alg = StandaloneRestart(d)
        initial = Configuration.uniform(topology, alg.restart_exit_state())
        exit_time, partial = run_until_exit(topology, d, initial)
        assert exit_time == 1
        assert not partial

    def test_idle_graph_stays_idle(self):
        topology = ring(5)
        alg = StandaloneRestart(2)
        rng = np.random.default_rng(0)
        initial = Configuration.uniform(topology, IdleState())
        execution = Execution(topology, alg, initial, SynchronousScheduler(), rng=rng)
        execution.run(max_rounds=10)
        assert execution.configuration == initial


class TestLemma39:
    """From q_t(v) = σ(0), nodes within distance d sit in {σ(0..d)} at
    time t + d."""

    def test_wavefront_bound(self):
        topology = path(6)
        d = 5
        alg = StandaloneRestart(d)
        rng = np.random.default_rng(0)
        initial = Configuration.uniform(topology, IdleState()).replace(
            {0: RestartState(0)}
        )
        execution = Execution(topology, alg, initial, SynchronousScheduler(), rng=rng)
        for elapsed in range(1, d + 1):
            execution.step()
            for v in topology.nodes:
                if topology.distance(0, v) <= elapsed:
                    state = execution.configuration[v]
                    assert isinstance(state, RestartState)
                    assert state.index <= elapsed


class TestLemma311:
    """Once all nodes are in σ-states with indices <= D, after D more
    rounds all nodes share a single σ-state."""

    @pytest.mark.parametrize("seed", range(5))
    def test_synchronization_to_single_state(self, seed):
        topology = ring(6)
        d = 3
        alg = StandaloneRestart(d)
        rng = np.random.default_rng(seed)
        initial = Configuration.from_function(
            topology,
            lambda v: RestartState(int(rng.integers(d + 1))),
        )
        execution = Execution(topology, alg, initial, SynchronousScheduler(), rng=rng)
        for _ in range(d):
            execution.step()
        states = {execution.configuration[v] for v in topology.nodes}
        assert len(states) == 1
        (state,) = states
        assert isinstance(state, RestartState)


class TestStandaloneAlgorithmContract:
    def test_state_space(self):
        alg = StandaloneRestart(3)
        assert alg.state_space_size() == 8
        assert len(alg.states()) == 8

    def test_outputs(self):
        alg = StandaloneRestart(2)
        assert alg.is_output_state(IdleState())
        assert not alg.is_output_state(RestartState(0))

    def test_random_state_hits_both_kinds(self):
        alg = StandaloneRestart(2)
        rng = np.random.default_rng(0)
        kinds = {type(alg.random_state(rng)) for _ in range(100)}
        assert kinds == {IdleState, RestartState}
