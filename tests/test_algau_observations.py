"""The paper's proved invariants (Obs 2.1–2.9, Lem 2.10/2.11/2.16),
checked mechanically on randomized executions.

These are the load-bearing facts of the stabilization proof; a violation
in simulation would mean the implementation diverges from the paper.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.monitors import AlgAUInvariantMonitor, TransitionCounter
from repro.core.algau import ThinUnison
from repro.core.predicates import (
    edge_protected,
    is_good_graph,
    is_level_out_protected,
    is_out_protected_graph,
    is_protected_graph,
    protected_edges,
    unjustifiably_faulty_nodes,
)
from repro.core.turns import able, faulty
from repro.faults.injection import random_configuration
from repro.graphs.generators import complete_graph, damaged_clique, path, ring
from repro.model.configuration import Configuration
from repro.model.execution import Execution
from repro.model.scheduler import (
    RandomSubsetScheduler,
    ShuffledRoundRobinScheduler,
    SynchronousScheduler,
)


def run_with_invariant_monitor(topology, d, seed, rounds, scheduler):
    rng = np.random.default_rng(seed)
    alg = ThinUnison(d)
    initial = random_configuration(alg, topology, rng)
    monitor = AlgAUInvariantMonitor(alg)
    execution = Execution(
        topology, alg, initial, scheduler, rng=rng, monitors=(monitor,)
    )
    execution.run(max_rounds=rounds)
    return alg, execution


class TestInvariantMonitorOnExecutions:
    """Obs 2.3 (out-protection is closed), Lem 2.16 (no new
    unjustifiably faulty nodes after out-protection), Lem 2.10 (goodness
    is closed) on random executions.  The monitor raises on violation.
    """

    @pytest.mark.parametrize("seed", range(5))
    def test_sync_on_ring(self, seed):
        run_with_invariant_monitor(ring(6), 3, seed, 40, SynchronousScheduler())

    @pytest.mark.parametrize("seed", range(5))
    def test_async_on_clique(self, seed):
        run_with_invariant_monitor(
            complete_graph(5), 1, seed, 40, ShuffledRoundRobinScheduler()
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_random_subsets_on_path(self, seed):
        run_with_invariant_monitor(path(5), 4, seed, 40, RandomSubsetScheduler(0.6))


class TestObservation21:
    """Obs 2.1: a protected edge (not the {−k, k} seam) stays protected."""

    @pytest.mark.parametrize("seed", range(8))
    def test_protected_edges_persist(self, seed):
        rng = np.random.default_rng(seed)
        alg = ThinUnison(2)
        topology = damaged_clique(8, 2, rng)
        config = random_configuration(alg, topology, rng)
        execution = Execution(topology, alg, config, SynchronousScheduler(), rng=rng)
        k = alg.levels.k
        for _ in range(30):
            before = execution.configuration
            persisting = {
                (u, v)
                for (u, v) in protected_edges(alg, before)
                if {before[u].level, before[v].level} != {-k, k}
            }
            execution.step()
            after_protected = protected_edges(alg, execution.configuration)
            assert persisting <= after_protected


class TestObservation25:
    """Obs 2.5: endpoints of a non-protected edge move towards each
    other (lower endpoint never decreases, higher never increases,
    and they never cross)."""

    @pytest.mark.parametrize("seed", range(8))
    def test_gap_narrows(self, seed):
        rng = np.random.default_rng(seed)
        alg = ThinUnison(2)
        topology = damaged_clique(8, 2, rng)
        config = random_configuration(alg, topology, rng)
        execution = Execution(topology, alg, config, SynchronousScheduler(), rng=rng)
        for _ in range(30):
            before = execution.configuration
            watched = [
                (u, v)
                for (u, v) in topology.edges
                if not edge_protected(alg, before, u, v)
                and before[u].level < before[v].level
            ]
            execution.step()
            after = execution.configuration
            for u, v in watched:
                assert before[u].level <= after[u].level
                assert after[u].level < after[v].level
                assert after[v].level <= before[v].level


class TestObservation26:
    """Obs 2.6: ℓ-out-protectedness is closed under steps."""

    @pytest.mark.parametrize("seed", range(6))
    def test_level_out_protection_persists(self, seed):
        rng = np.random.default_rng(seed)
        alg = ThinUnison(1)
        topology = ring(5)
        config = random_configuration(alg, topology, rng)
        execution = Execution(
            topology, alg, config, ShuffledRoundRobinScheduler(), rng=rng
        )
        for _ in range(60):
            before = execution.configuration
            held = [
                level
                for level in alg.levels.levels
                if abs(level) >= 2
                and is_level_out_protected(alg, before, level)
            ]
            execution.step()
            after = execution.configuration
            for level in held:
                assert is_level_out_protected(alg, after, level), (
                    f"{level}-out-protection lost"
                )


class TestObservation28:
    """Obs 2.8: a fully protected graph occupies a contiguous φ-window
    of width ≤ D."""

    @pytest.mark.parametrize("seed", range(10))
    def test_protected_graph_is_contiguous(self, seed):
        rng = np.random.default_rng(seed)
        alg = ThinUnison(2)
        topology = damaged_clique(8, 2, rng)
        execution = Execution(
            topology,
            alg,
            random_configuration(alg, topology, rng),
            SynchronousScheduler(),
            rng=rng,
        )
        execution.run(
            max_rounds=5000,
            until=lambda e: is_protected_graph(alg, e.configuration),
        )
        config = execution.configuration
        assert is_protected_graph(alg, config)
        levels_present = {config[v].level for v in topology.nodes}
        # Some level ℓ reaches every other present level within D
        # forward steps.
        ls = alg.levels
        assert any(
            all(
                other in {ls.forward(base, j) for j in range(ls.diameter_bound + 1)}
                for other in levels_present
            )
            for base in levels_present
        )


class TestLemma210AND211:
    """Lem 2.10: goodness is closed.  Lem 2.11: after goodness, every
    node performs ≥ i AA transitions within D + i rounds."""

    @pytest.mark.parametrize(
        "topology_factory, d",
        [
            (lambda: complete_graph(6), 1),
            (lambda: ring(6), 3),
            (lambda: path(4), 3),
        ],
    )
    def test_liveness_after_goodness(self, topology_factory, d):
        rng = np.random.default_rng(99)
        topology = topology_factory()
        alg = ThinUnison(d)
        execution = Execution(
            topology,
            alg,
            random_configuration(alg, topology, rng),
            ShuffledRoundRobinScheduler(),
            rng=rng,
        )
        result = execution.run(
            max_rounds=20_000,
            until=lambda e: is_good_graph(alg, e.configuration),
        )
        assert result.stopped_by_predicate
        counter = TransitionCounter(alg)
        execution.monitors = (counter,)
        counter.on_start(execution)
        window = topology.diameter + 10
        execution.run_rounds(window)
        assert is_good_graph(alg, execution.configuration)  # Lem 2.10
        # Lem 2.11 with i = window - D; one round of slack because the
        # counting window starts mid-round (the ϱ operator from an
        # arbitrary time t reaches the next boundary late).
        for v in topology.nodes:
            assert counter.pulses(v) >= window - d - 1


class TestLemma218:
    """Lem 2.18: once justified, protected implies good — verified as:
    any protected configuration reached from far along an execution has
    no faulty nodes."""

    @pytest.mark.parametrize("seed", range(6))
    def test_protected_implies_good_eventually(self, seed):
        rng = np.random.default_rng(seed)
        alg = ThinUnison(2)
        topology = damaged_clique(7, 2, rng)
        execution = Execution(
            topology,
            alg,
            random_configuration(alg, topology, rng),
            SynchronousScheduler(),
            rng=rng,
        )
        execution.run(
            max_rounds=20_000,
            until=lambda e: is_protected_graph(alg, e.configuration)
            and is_out_protected_graph(alg, e.configuration)
            and not unjustifiably_faulty_nodes(alg, e.configuration),
        )
        config = execution.configuration
        if is_protected_graph(alg, config):
            assert is_good_graph(alg, config)


class TestHandCraftedScenarios:
    """Targeted micro-scenarios for the closing-the-gap mechanics."""

    def test_two_node_discrepancy_resolves_inwards(self):
        """A torn edge (levels 2 vs -2) must meet at {−1, 1}."""
        import networkx as nx
        from repro.graphs.topology import Topology

        topology = Topology(nx.path_graph(2))
        alg = ThinUnison(1)
        config = Configuration(topology, {0: able(3), 1: able(-3)})
        rng = np.random.default_rng(0)
        execution = Execution(topology, alg, config, SynchronousScheduler(), rng=rng)
        result = execution.run(
            max_rounds=200,
            until=lambda e: is_good_graph(alg, e.configuration),
        )
        assert result.stopped_by_predicate

    def test_faulty_relay_propagates_inwards(self):
        """Sensing ψ-1(ℓ)̂ pulls a node into the detour (Lem 2.12's
        relay): 2̂ at one end of a path infects the 3-level node."""
        import networkx as nx
        from repro.graphs.topology import Topology

        topology = Topology(nx.path_graph(2))
        alg = ThinUnison(1)
        config = Configuration(topology, {0: faulty(2), 1: able(3)})
        rng = np.random.default_rng(0)
        execution = Execution(topology, alg, config, SynchronousScheduler(), rng=rng)
        execution.step()
        assert execution.configuration[1] == faulty(3)
