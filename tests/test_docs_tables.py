"""The docs tables must never drift from the registries.

``docs/algorithms.md`` and ``docs/engines.md`` each carry a markdown
table that mirrors a code registry (``ALGORITHM_FACTORIES``,
``ENGINE_FACTORIES``).  Docs rot silently; registries do not — so the
tables are re-derived here cell by cell and compared.  Adding an
algorithm or an engine without updating its docs page fails this test,
as does editing a capability declaration without touching the docs.
"""

from __future__ import annotations

import os
import re

from repro.campaigns.spec import ALGORITHM_FACTORIES, algorithm_names
from repro.model.engine import ENGINE_FACTORIES, engine_class

DOCS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "docs")


def _read(page):
    with open(os.path.join(DOCS_DIR, page), encoding="utf-8") as handle:
        return handle.read()


def _split_row(line):
    """Split one ``| a | b |`` table line into cells.

    Pipes escaped as ``\\|`` (literal ``|Q|`` expressions) stay inside
    their cell and are unescaped in the returned values.
    """
    cells = re.split(r"(?<!\\)\|", line.strip())
    return [cell.strip().replace("\\|", "|") for cell in cells[1:-1]]


def _parse_table(text, first_header):
    """The (header, rows) of the table whose first column is named
    ``first_header``."""
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if not line.startswith("|"):
            continue
        header = _split_row(line)
        if header and header[0] == first_header:
            rows = []
            for row_line in lines[i + 2 :]:
                if not row_line.startswith("|"):
                    break
                rows.append(_split_row(row_line))
            return header, rows
    raise AssertionError(f"no table with first column {first_header!r}")


def _code(cell):
    """Strip inline-code backticks (and quotes) from a cell."""
    return cell.strip("`").strip('"')


class TestAlgorithmZooTable:
    """docs/algorithms.md mirrors ALGORITHM_FACTORIES cell for cell."""

    def table(self):
        header, rows = _parse_table(_read("algorithms.md"), "algorithm")
        assert header == [
            "algorithm",
            "task",
            "engines",
            "starts",
            "fault kinds",
            "self-stabilizing",
            "state bits",
            "bits @ D=2, n=16",
            "description",
        ]
        return rows

    def test_every_registry_entry_has_a_row_and_vice_versa(self):
        names = [_code(row[0]) for row in self.table()]
        assert names == list(algorithm_names())

    def test_cells_match_the_capability_declarations(self):
        for row in self.table():
            spec = ALGORITHM_FACTORIES[_code(row[0])]
            assert row[1] == spec.task, row[0]
            assert row[2] == "+".join(spec.engines), row[0]
            assert row[3] == "+".join(spec.starts), row[0]
            assert row[4] == "+".join(spec.fault_kinds), row[0]
            assert row[5] == ("yes" if spec.self_stabilizing else "no"), row[0]
            assert _code(row[6]) == spec.state_bits_formula, row[0]

    def test_bit_counts_match_the_declared_state_spaces(self):
        for row in self.table():
            spec = ALGORITHM_FACTORIES[_code(row[0])]
            bits = spec.state_bits(2, n_hint=16)
            expected = "unbounded" if bits is None else f"{bits:.2f}"
            assert row[7] == expected, row[0]

    def test_descriptions_match_the_registry_summaries(self):
        for row in self.table():
            assert row[8] == ALGORITHM_FACTORIES[_code(row[0])].summary, row[0]


class TestEngineTable:
    """docs/engines.md mirrors ENGINE_FACTORIES and engine_class."""

    def table(self):
        header, rows = _parse_table(_read("engines.md"), "engine")
        assert header[:2] == ["engine", "class"]
        return rows

    def test_every_engine_has_a_row_and_vice_versa(self):
        names = [_code(row[0]) for row in self.table()]
        assert names == list(ENGINE_FACTORIES)

    def test_class_column_names_the_real_engine_classes(self):
        for row in self.table():
            assert _code(row[1]) == engine_class(_code(row[0])).__name__, row[0]


class TestNavCoverage:
    """Every docs page is reachable from the mkdocs nav (mkdocs is not
    installed in the test environment, so ``mkdocs build --strict`` can
    only run in CI — this keeps the nav honest locally too)."""

    def _pages(self):
        return {name for name in os.listdir(DOCS_DIR) if name.endswith(".md")}

    def test_nav_and_docs_dir_agree(self):
        with open(
            os.path.join(DOCS_DIR, "..", "mkdocs.yml"), encoding="utf-8"
        ) as handle:
            config = handle.read()
        in_nav = set(re.findall(r":\s*([\w-]+\.md)\s*$", config, re.MULTILINE))
        assert in_nav == self._pages()

    def test_intra_doc_links_resolve(self):
        pages = self._pages()
        for page in sorted(pages):
            targets = re.findall(r"\]\(([\w-]+\.md)(?:#[\w-]+)?\)", _read(page))
            for target in targets:
                assert target in pages, f"{page} links to missing {target}"


class TestBenchmarkInventory:
    """The docs/benchmarks.md artifact inventory names real files: every
    listed benchmark exists under ``benchmarks/`` and writes the listed
    artifact (the artifact name appears verbatim in its source)."""

    BENCH_DIR = os.path.join(DOCS_DIR, "..", "benchmarks")

    def table(self):
        header, rows = _parse_table(_read("benchmarks.md"), "artifact")
        assert header[:2] == ["artifact", "benchmark"]
        return rows

    def test_every_listed_benchmark_exists(self):
        for row in self.table():
            path = os.path.join(self.BENCH_DIR, _code(row[1]))
            assert os.path.isfile(path), row[1]

    def test_every_listed_artifact_is_written_by_its_benchmark(self):
        for row in self.table():
            path = os.path.join(self.BENCH_DIR, _code(row[1]))
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            artifact = _code(row[0])
            # Campaign-driven benchmarks persist through the conftest
            # helper, which derives ``BENCH_campaign_<registry>.json``
            # from the registry name — look for that name instead.
            match = re.fullmatch(r"BENCH_campaign_(.+)\.json", artifact)
            needle = match.group(1) if match else artifact
            assert needle in source, artifact
