"""Baseline algorithms: min-rule unison, long-tail reset unison, and
the non-SA-model MIS/LE comparators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.id_flood_le import FloodState, IDFloodLE
from repro.baselines.luby_mis import (
    IDGreedyMIS,
    IDState,
    LubyTrialMIS,
    UNDECIDED,
)
from repro.baselines.min_unison import Counter, MinUnison, min_unison_stable
from repro.baselines.reset_tail_unison import (
    ResetTailUnison,
    TailClock,
    reset_tail_stable,
)
from repro.faults.injection import random_configuration
from repro.graphs.generators import complete_graph, damaged_clique, path, ring
from repro.model.configuration import Configuration
from repro.model.execution import Execution
from repro.model.scheduler import (
    ShuffledRoundRobinScheduler,
    SynchronousScheduler,
)
from repro.model.signal import Signal
from repro.tasks.spec import check_le_output, check_mis_output


class TestMinUnison:
    def test_local_minimum_increments(self):
        alg = MinUnison()
        state = Counter(3)
        assert alg.delta(state, Signal((state, Counter(3)))) == Counter(4)
        assert alg.delta(state, Signal((state, Counter(5)))) == Counter(4)

    def test_non_minimum_waits(self):
        alg = MinUnison()
        state = Counter(3)
        assert alg.delta(state, Signal((state, Counter(1)))) == state

    @pytest.mark.parametrize("seed", range(5))
    def test_stabilizes_from_random_counters(self, seed):
        rng = np.random.default_rng(seed)
        alg = MinUnison(initial_spread=20)
        topology = ring(8)
        execution = Execution(
            topology,
            alg,
            random_configuration(alg, topology, rng),
            ShuffledRoundRobinScheduler(),
            rng=rng,
        )
        result = execution.run(
            max_rounds=2000,
            until=lambda e: min_unison_stable(e.configuration),
        )
        assert result.stopped_by_predicate
        # And it keeps running (liveness: min always moves).
        before = [execution.configuration[v].value for v in topology.nodes]
        execution.run_rounds(20)
        after = [execution.configuration[v].value for v in topology.nodes]
        assert min(after) > min(before)
        assert min_unison_stable(execution.configuration)

    def test_unbounded_state_space(self):
        with pytest.raises(NotImplementedError):
            MinUnison().state_space_size()


class TestResetTailUnison:
    def test_for_diameter_bound_matches_algau_period(self):
        alg = ResetTailUnison.for_diameter_bound(2)
        assert alg.ring.order == 16  # 2k with k = 8
        assert alg.tail_length == 6

    def test_incoherent_ring_node_resets(self):
        alg = ResetTailUnison(8, 4)
        state = TailClock(0)
        assert alg.delta(state, Signal((state, TailClock(3)))) == TailClock(-4)

    def test_ring_node_in_landing_zone_tolerates_tail(self):
        alg = ResetTailUnison(8, 4)
        state = TailClock(1)
        assert alg.delta(state, Signal((state, TailClock(-1)))) == state

    def test_ring_node_outside_landing_zone_resets_on_tail(self):
        alg = ResetTailUnison(8, 4)
        state = TailClock(5)
        assert alg.delta(state, Signal((state, TailClock(-2)))) == TailClock(-4)

    def test_tail_climbs_when_minimum(self):
        alg = ResetTailUnison(8, 4)
        state = TailClock(-3)
        assert alg.delta(state, Signal((state, TailClock(-2)))) == TailClock(-2)

    def test_tail_waits_for_deeper(self):
        alg = ResetTailUnison(8, 4)
        state = TailClock(-2)
        assert alg.delta(state, Signal((state, TailClock(-4)))) == state

    def test_tail_exits_to_ring_zero(self):
        alg = ResetTailUnison(8, 4)
        state = TailClock(-1)
        assert alg.delta(state, Signal((state, TailClock(0)))) == TailClock(0)

    @pytest.mark.parametrize("seed", range(5))
    def test_stabilizes_on_bounded_diameter_graphs(self, seed):
        rng = np.random.default_rng(seed)
        alg = ResetTailUnison.for_diameter_bound(2)
        topology = damaged_clique(10, 2, rng)
        execution = Execution(
            topology,
            alg,
            random_configuration(alg, topology, rng),
            ShuffledRoundRobinScheduler(),
            rng=rng,
        )
        result = execution.run(
            max_rounds=20_000,
            until=lambda e: reset_tail_stable(alg, e.configuration),
        )
        assert result.stopped_by_predicate

    def test_state_count(self):
        assert ResetTailUnison(16, 6).state_space_size() == 22


class TestIDGreedyMIS:
    def test_clean_start_gives_valid_mis(self):
        rng = np.random.default_rng(0)
        for topology in (complete_graph(7), ring(8), path(6)):
            alg = IDGreedyMIS(topology.n)
            execution = Execution(
                topology,
                alg,
                alg.initial_configuration(topology),
                SynchronousScheduler(),
                rng=rng,
            )
            execution.run(
                max_rounds=topology.n + 5,
                until=lambda e: e.configuration.is_output_configuration(alg),
            )
            verdict = check_mis_output(
                topology, execution.configuration.output_vector(alg)
            )
            assert verdict.valid, verdict.reason

    def test_corrupted_start_never_recovers(self):
        """Two adjacent IN nodes stay broken forever: no detection."""
        rng = np.random.default_rng(1)
        topology = ring(6)
        alg = IDGreedyMIS(topology.n)
        broken = Configuration.from_function(
            topology,
            lambda v: IDState("I" if v in (0, 1) else "O", v),
        )
        execution = Execution(topology, alg, broken, SynchronousScheduler(), rng=rng)
        execution.run(max_rounds=100)
        out = execution.configuration.output_vector(alg)
        assert not check_mis_output(topology, out).valid

    def test_greedy_matches_max_id_structure(self):
        """On a path with increasing IDs, greedy selects from the top."""
        topology = path(4)
        alg = IDGreedyMIS(4)
        execution = Execution(
            topology,
            alg,
            alg.initial_configuration(topology),
            SynchronousScheduler(),
            rng=np.random.default_rng(0),
        )
        execution.run(
            max_rounds=10,
            until=lambda e: e.configuration.is_output_configuration(alg),
        )
        out = execution.configuration.output_vector(alg)
        assert out[3] == 1  # the max-ID node always wins


class TestLubyTrialMIS:
    def test_tie_blindness_breaks_k2_sometimes(self):
        """Two anonymous nodes tossing the same coin both join IN: the
        classical algorithm is unsound under set-broadcast signals."""
        topology = complete_graph(2)
        alg = LubyTrialMIS()
        broken = 0
        for seed in range(100):
            rng = np.random.default_rng(seed)
            execution = Execution(
                topology,
                alg,
                Configuration.uniform(topology, alg.initial_state()),
                SynchronousScheduler(),
                rng=rng,
            )
            execution.run(
                max_rounds=200,
                until=lambda e: e.configuration.is_output_configuration(alg),
            )
            out = execution.configuration.output_vector(alg)
            if not check_mis_output(topology, out).valid:
                broken += 1
        # Both-heads on the deciding trial gives 1/3 of ties broken;
        # anything clearly positive demonstrates the unsoundness.
        assert broken >= 10

    def test_out_join_is_sound(self):
        alg = LubyTrialMIS()
        from repro.baselines.luby_mis import LubyState

        mine = LubyState(UNDECIDED, False, 0)
        winner = LubyState("I", False, 0)
        assert alg.delta(mine, Signal((mine, winner))).membership == "O"


class TestIDFloodLE:
    def test_clean_start_elects_max_id(self):
        rng = np.random.default_rng(0)
        topology = damaged_clique(10, 2, rng)
        alg = IDFloodLE(topology.n)
        execution = Execution(
            topology,
            alg,
            alg.initial_configuration(topology),
            SynchronousScheduler(),
            rng=rng,
        )
        execution.run(max_rounds=topology.diameter + 2)
        out = execution.configuration.output_vector(alg)
        assert check_le_output(out).valid
        assert out[topology.n - 1] == 1

    def test_spurious_identifier_breaks_forever(self):
        """A transient fault planting a 'best' beyond every real
        identifier floods everywhere and elects nobody, permanently —
        the baseline has no recovery mechanism."""
        rng = np.random.default_rng(1)
        topology = complete_graph(6)
        alg = IDFloodLE(7)  # identifier range 0..6; real ids are 0..5
        planted = Configuration.from_function(
            topology,
            lambda v: FloodState(v, 6 if v == 0 else v),
        )
        execution = Execution(topology, alg, planted, SynchronousScheduler(), rng=rng)
        execution.run(max_rounds=50)
        out = execution.configuration.output_vector(alg)
        assert not check_le_output(out).valid  # zero leaders, forever
        # And it stays broken arbitrarily long.
        execution.run(max_rounds=100)
        assert not check_le_output(execution.configuration.output_vector(alg)).valid
