"""Round-trip and invariant coverage for ``analysis/trace`` and ``sync/``.

The trace layer must persist an execution faithfully enough to replay
it (schedule fidelity) and to answer per-node history queries; the
synchronizer's product state must preserve the inner algorithm's output
discipline while its pulse instrumentation counts exactly the type-AA
clock advances.
"""

from __future__ import annotations

import numpy as np

from repro.core.algau import ThinUnison
from repro.faults.injection import random_configuration
from repro.graphs.generators import complete_graph, ring
from repro.model.execution import Execution
from repro.model.scheduler import (
    ShuffledRoundRobinScheduler,
    SynchronousScheduler,
)
from repro.analysis.trace import (
    ScheduleRecorder,
    Trace,
    TraceRecorder,
    load_trace,
    save_trace,
)
from repro.sync.pulses import PulseMonitor
from repro.sync.synchronizer import SyncState, Synchronizer


def _traced_run(steps=40, seed=5):
    algorithm = ThinUnison(2)
    topology = complete_graph(6)
    rng = np.random.default_rng(seed)
    recorder = TraceRecorder()
    schedule = ScheduleRecorder()
    execution = Execution(
        topology,
        algorithm,
        random_configuration(algorithm, topology, rng),
        ShuffledRoundRobinScheduler(),
        rng=rng,
        monitors=(recorder, schedule),
    )
    execution.run(max_steps=steps)
    return execution, recorder.trace, schedule


class TestTraceRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        _, trace, _ = _traced_run()
        clone = Trace.from_json(trace.to_json())
        assert clone == trace
        assert clone.length == trace.length == 40
        assert clone.rounds() == trace.rounds()

    def test_save_and_load(self, tmp_path):
        _, trace, _ = _traced_run()
        path = str(tmp_path / "trace.json")
        save_trace(trace, path)
        assert load_trace(path) == trace

    def test_initial_and_final_configurations_are_recorded(self):
        execution, trace, _ = _traced_run()
        assert trace.initial != trace.final
        assert trace.final == tuple(
            str(execution.configuration[v]) for v in execution.topology.nodes
        )

    def test_changes_of_reconstructs_per_node_history(self):
        _, trace, _ = _traced_run()
        node = 0
        history = trace.changes_of(node)
        # Consecutive changes chain: each old state is the previous new.
        for (_, _, prev_new), (_, old, _) in zip(history, history[1:]):
            assert old == prev_new
        # The chain starts at the recorded initial state.
        if history:
            assert history[0][1] == trace.initial[node]

    def test_activation_counts_total_matches_steps(self):
        _, trace, _ = _traced_run()
        counts = trace.activation_counts()
        assert sum(counts.values()) == sum(
            len(step.activated) for step in trace.steps
        )
        # Shuffled round-robin is one node per step, fair per round.
        assert max(counts.values()) - min(counts.values()) <= 1


class TestScheduleReplay:
    def test_replay_reproduces_the_trajectory_exactly(self):
        execution, trace, schedule = _traced_run(steps=30, seed=11)
        algorithm = ThinUnison(2)
        topology = complete_graph(6)
        rng = np.random.default_rng(11)
        initial = random_configuration(algorithm, topology, rng)
        recorder = TraceRecorder()
        replay = Execution(
            topology,
            algorithm,
            initial,
            schedule.as_scheduler(),
            rng=rng,
            monitors=(recorder,),
        )
        replay.run(max_steps=30)
        assert recorder.trace == trace
        # (Configuration equality is topology-identity-aware, and the
        # replay holds a fresh Topology instance — the recorded final
        # state vectors are the right cross-run comparison.)
        assert recorder.trace.final == trace.final


class TestSynchronizerInvariants:
    def _sync_execution(self, seed=0):
        inner = ThinUnison(1)
        synchronizer = Synchronizer(inner, diameter_bound=2)
        topology = ring(6)
        rng = np.random.default_rng(seed)
        initial = random_configuration(synchronizer, topology, rng)
        monitor = PulseMonitor(synchronizer)
        execution = Execution(
            topology,
            synchronizer,
            initial,
            SynchronousScheduler(),
            rng=rng,
            monitors=(monitor,),
        )
        return synchronizer, execution, monitor

    def test_state_space_is_inner_squared_times_unison(self):
        synchronizer, _, _ = self._sync_execution()
        inner = synchronizer.inner.state_space_size()
        assert synchronizer.state_space_size() == (
            inner * inner * synchronizer.unison.state_space_size()
        )

    def test_output_discipline_follows_the_inner_algorithm(self):
        synchronizer, execution, _ = self._sync_execution()
        for v in execution.topology.nodes:
            state = execution.configuration[v]
            assert isinstance(state, SyncState)
            if synchronizer.is_output_state(state):
                assert state.turn.able
                assert synchronizer.output(state) == (
                    synchronizer.inner.output(state.current)
                )

    def test_pulse_monitor_counts_only_aa_transitions(self):
        synchronizer, execution, monitor = self._sync_execution(seed=3)
        execution.run_rounds(60)
        # Pulses happened and the recorded times match the counters.
        assert monitor.max_pulses() > 0
        assert len(monitor.pulse_times) == sum(monitor.pulse_counts.values())
        assert monitor.min_pulses() <= monitor.max_pulses()

    def test_au_layer_stabilizes_and_pulses_keep_flowing(self):
        synchronizer, execution, monitor = self._sync_execution(seed=7)
        execution.run_rounds(80)
        assert monitor.first_good_round is not None
        before = monitor.min_pulses()
        execution.run_rounds(10)
        # Liveness: after AU stabilization every node keeps pulsing
        # (the paper's AU condition delivers i pulses by round D + i).
        assert monitor.min_pulses() > before
