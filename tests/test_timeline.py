"""ASCII timeline rendering (repro.viz.timeline)."""

from __future__ import annotations

import numpy as np

from repro.core.algau import ThinUnison
from repro.core.turns import able, faulty
from repro.faults.injection import uniform_configuration
from repro.graphs.generators import complete_graph, ring
from repro.model.configuration import Configuration
from repro.model.execution import Execution
from repro.model.scheduler import SynchronousScheduler
from repro.tasks.le import AlgLE
from repro.tasks.restart import RestartState
from repro.viz.timeline import (
    clock_timeline,
    output_timeline,
    record_snapshots,
    sparkline,
)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_uses_range(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_length_matches(self):
        assert len(sparkline(list(range(17)))) == 17


class TestClockTimeline:
    def test_renders_rounds_and_nodes(self):
        alg = ThinUnison(1)
        topology = ring(4)
        rng = np.random.default_rng(0)
        execution = Execution(
            topology,
            alg,
            Configuration.uniform(topology, able(1)),
            SynchronousScheduler(),
            rng=rng,
        )
        snapshots = record_snapshots(execution, rounds=3)
        text = clock_timeline(alg, snapshots)
        lines = text.splitlines()
        assert lines[0].startswith("round")
        assert len(lines) == 2 + 4  # header + rule + 4 snapshots
        assert "v3" in lines[0]

    def test_faulty_turns_marked(self):
        alg = ThinUnison(1)
        topology = ring(4)
        config = Configuration.uniform(topology, able(1)).replace({0: faulty(3)})
        text = clock_timeline(alg, [config])
        assert "^3" in text

    def test_empty_snapshots(self):
        alg = ThinUnison(1)
        assert clock_timeline(alg, []) == ""


class TestOutputTimeline:
    def test_marks_outputs_undecided_and_restart(self):
        alg = AlgLE(1)
        topology = complete_graph(3)
        base = uniform_configuration(alg, topology)
        mixed = base.replace({1: RestartState(0)})
        text = output_timeline(alg, [mixed])
        # Node 0/2: main states with output 0; node 1: restart.
        assert "0R0" in text

    def test_timeline_over_execution(self):
        alg = AlgLE(1)
        topology = complete_graph(4)
        rng = np.random.default_rng(1)
        execution = Execution(
            topology,
            alg,
            uniform_configuration(alg, topology),
            SynchronousScheduler(),
            rng=rng,
        )
        snapshots = record_snapshots(execution, rounds=5)
        text = output_timeline(alg, snapshots)
        assert len(text.splitlines()) == 6
