"""The round operator ``ϱ`` of the paper.

Given an asynchronous schedule ``{A_t}``, the paper defines ``ϱ(t)`` as
the earliest time such that every node is activated at least once during
``[t, ϱ(t))``, iterates it to ``ϱ^i(t)``, and sets ``R(i) = ϱ^i(0)``.
Stabilization times are expressed as the smallest ``i`` with the
execution stabilized by ``R(i)``.

:class:`RoundTracker` maintains the boundaries ``R(0) = 0 < R(1) < ...``
incrementally: a round completes once the set of nodes not yet activated
since the previous boundary becomes empty.  Under a synchronous schedule
``R(i) = i`` falls out automatically.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, List, Sequence, Set


class RoundTracker:
    """Incrementally computes the boundaries ``R(i) = ϱ^i(0)``."""

    __slots__ = ("_nodes", "_pending", "_boundaries", "_time")

    def __init__(self, nodes: Sequence[int]):
        self._nodes: Sequence[int] = tuple(nodes)
        self._pending: Set[int] = set(self._nodes)
        self._boundaries: List[int] = [0]
        self._time = 0

    @property
    def time(self) -> int:
        """Steps observed so far."""
        return self._time

    @property
    def completed_rounds(self) -> int:
        """The largest ``i`` with ``R(i)`` already determined."""
        return len(self._boundaries) - 1

    @property
    def boundaries(self) -> Sequence[int]:
        """``[R(0), R(1), ..., R(completed_rounds)]``."""
        return tuple(self._boundaries)

    def observe(self, activated: Iterable[int]) -> bool:
        """Record the activation set of the current step.

        Returns ``True`` iff this step completed a round, i.e. a new
        boundary ``R(i) = time + 1`` was appended.
        """
        if isinstance(activated, (set, frozenset)) and len(activated) == len(
            self._nodes
        ):
            # Full activation (synchronous regime): skip the O(n) set
            # difference — the round completes unconditionally.
            return self.observe_all()
        self._pending.difference_update(activated)
        self._time += 1
        if not self._pending:
            self._boundaries.append(self._time)
            self._pending = set(self._nodes)
            return True
        return False

    def observe_all(self) -> bool:
        """Record a step that activated *every* node — always completes
        a round, in O(1) when the previous step did too (the pending
        set is only rebuilt when a partial step had drained it)."""
        self._time += 1
        self._boundaries.append(self._time)
        if len(self._pending) != len(self._nodes):
            self._pending = set(self._nodes)
        return True

    def add_nodes(self, nodes: Iterable[int]) -> None:
        """Extend the tracked node set mid-execution (dynamic joins).

        A joined node must be activated before the *current* round can
        complete — a round is "every node activated at least once", and
        the node exists now — so it enters both the node tuple and the
        pending set of the in-progress round.
        """
        known = set(self._nodes)
        new = tuple(v for v in nodes if v not in known)
        if not new:
            return
        self._nodes = tuple(self._nodes) + new
        self._pending.update(new)

    def boundary(self, i: int) -> int:
        """``R(i)`` for an already-completed round index ``i``."""
        return self._boundaries[i]

    def round_of_time(self, t: int) -> int:
        """The smallest ``i`` with ``R(i) ≥ t`` (the paper's unit for
        "stabilized by time ``R(i)``").

        Raises :class:`IndexError` if ``t`` lies beyond the last known
        boundary (the execution has not yet completed enough rounds).
        """
        if t > self._boundaries[-1]:
            raise IndexError(
                f"time {t} lies beyond the last completed round boundary "
                f"{self._boundaries[-1]}"
            )
        # First index with boundary >= t.
        return bisect_right(self._boundaries, t - 1)

    def __repr__(self) -> str:
        return (
            f"<RoundTracker t={self._time} rounds={self.completed_rounds} "
            f"pending={len(self._pending)}>"
        )
