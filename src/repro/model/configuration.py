"""Configurations ``C : V → Q`` of a stone age execution."""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, Mapping, Tuple, TypeVar

from repro.graphs.topology import Topology
from repro.model.errors import ConfigurationError
from repro.model.signal import Signal

Q = TypeVar("Q")


class Configuration(Generic[Q]):
    """An immutable assignment of one state to every node of a topology.

    The class also computes the set-broadcast signals the model derives
    from a configuration: :meth:`signal` for a single node,
    :meth:`signals` for all nodes at once.  Because configurations are
    immutable, signals are memoized on first computation; functional
    updates (:meth:`replace`) forward the memoized signals of every node
    whose inclusive neighborhood is untouched by the update, so sparse
    schedulers (round-robin and friends) pay only for the signals that
    actually changed.
    """

    __slots__ = ("_topology", "_states", "_signals")

    def __init__(self, topology: Topology, states: Mapping[int, Q]):
        nodes = topology.nodes
        known = set(nodes)
        missing = [v for v in nodes if v not in states]
        if missing:
            raise ConfigurationError(f"configuration misses nodes {missing}")
        extra = [v for v in states if v not in known]
        if extra:
            raise ConfigurationError(f"configuration has unknown nodes {extra}")
        self._topology = topology
        self._states: Tuple[Q, ...] = tuple(states[v] for v in nodes)
        self._signals: Dict[int, Signal[Q]] = {}

    # ------------------------------------------------------------------
    # Constructors.
    # ------------------------------------------------------------------

    @classmethod
    def uniform(cls, topology: Topology, state: Q) -> "Configuration[Q]":
        """All nodes share ``state`` (e.g. the designated ``q*_0``)."""
        return cls(topology, {v: state for v in topology.nodes})

    @classmethod
    def from_function(
        cls, topology: Topology, fn: Callable[[int], Q]
    ) -> "Configuration[Q]":
        return cls(topology, {v: fn(v) for v in topology.nodes})

    @classmethod
    def _from_state_tuple(
        cls, topology: Topology, states: Tuple[Q, ...]
    ) -> "Configuration[Q]":
        """Unvalidated fast constructor for internal callers that already
        hold a correctly ordered state tuple (``replace``, the array
        engine's decoder)."""
        new = object.__new__(cls)
        new._topology = topology
        new._states = states
        new._signals = {}
        return new

    # ------------------------------------------------------------------
    # Accessors.
    # ------------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        return self._topology

    def __getitem__(self, v: int) -> Q:
        return self._states[v]

    def items(self) -> Iterator[Tuple[int, Q]]:
        return iter(enumerate(self._states))

    def states(self) -> Tuple[Q, ...]:
        """States in node order ``0 .. n-1``."""
        return self._states

    def state_set(self) -> frozenset:
        """The set of states present anywhere in the configuration."""
        return frozenset(self._states)

    # ------------------------------------------------------------------
    # Signals.
    # ------------------------------------------------------------------

    def signal(self, v: int) -> Signal[Q]:
        """The signal of node ``v`` under this configuration (memoized)."""
        cached = self._signals.get(v)
        if cached is None:
            cached = Signal(
                self._states[u] for u in self._topology.inclusive_neighbors(v)
            )
            self._signals[v] = cached
        return cached

    def signals(self) -> Dict[int, Signal[Q]]:
        """Signals of every node (memoized; the returned dict is a copy
        and may be mutated by the caller)."""
        signal = self.signal
        return {v: signal(v) for v in self._topology.nodes}

    # ------------------------------------------------------------------
    # Updates (functional).
    # ------------------------------------------------------------------

    def replace(self, updates: Mapping[int, Q]) -> "Configuration[Q]":
        """A new configuration with ``updates`` applied.

        Memoized signals of nodes whose inclusive neighborhood contains
        no updated node are carried over to the new configuration.
        """
        if not updates:
            return self
        states = list(self._states)
        for v, q in updates.items():
            if not 0 <= v < len(states):
                raise ConfigurationError(f"unknown node {v}")
            states[v] = q
        new = Configuration._from_state_tuple(self._topology, tuple(states))
        if self._signals:
            affected = set(updates)
            for v in updates:
                affected.update(self._topology.neighbors(v))
            new._signals = {
                v: sig for v, sig in self._signals.items() if v not in affected
            }
        return new

    # ------------------------------------------------------------------
    # Output views.
    # ------------------------------------------------------------------

    def is_output_configuration(self, algorithm) -> bool:
        """Whether every node occupies an output state of ``algorithm``."""
        return all(algorithm.is_output_state(q) for q in self._states)

    def output_vector(self, algorithm) -> Tuple[object, ...]:
        """``ω ∘ C`` where defined; ``None`` for non-output states."""
        return tuple(
            algorithm.output(q) if algorithm.is_output_state(q) else None
            for q in self._states
        )

    # ------------------------------------------------------------------
    # Dunder conveniences.
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._states)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._topology is other._topology and self._states == other._states

    def __hash__(self) -> int:
        return hash((id(self._topology), self._states))

    def __repr__(self) -> str:
        preview = ", ".join(f"{v}:{q!r}" for v, q in list(self.items())[:6])
        suffix = ", ..." if len(self) > 6 else ""
        return f"Configuration({{{preview}{suffix}}})"
