"""The formal algorithm interface of the stone age model.

An algorithm is the 4-tuple ``Π = ⟨Q, Q_O, ω, δ⟩`` of the paper:

* ``Q`` — a set of states (:meth:`Algorithm.states`, enumerable for the
  algorithms whose state space we account for exactly);
* ``Q_O ⊆ Q`` — output states (:meth:`Algorithm.is_output_state`);
* ``ω : Q_O → O`` — the surjective output map (:meth:`Algorithm.output`);
* ``δ : Q × {0,1}^Q → 2^Q`` — the transition function
  (:meth:`Algorithm.delta`).

The paper's ``δ`` returns a *set* of candidate states from which the
next state is picked uniformly at random.  We generalize marginally and
let :meth:`Algorithm.delta` return either a single state (deterministic
transition) or a finite :class:`Distribution`; a uniform distribution
over a set reproduces the paper's semantics exactly, and biased coins
with rational probabilities correspond to uniform choices over multisets
of states.  All randomness is sampled by the execution engine, keeping
``delta`` a pure function of ``(state, signal)`` — this makes transition
functions unit-testable and lets property tests inspect supports.
"""

from __future__ import annotations

import itertools
import math
from abc import ABC, abstractmethod
from typing import (
    Callable,
    Generic,
    Iterable,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

import numpy as np

from repro.model.errors import ModelError
from repro.model.signal import Signal

Q = TypeVar("Q")
Out = TypeVar("Out")


class Distribution(Generic[Q]):
    """A finite probability distribution over next states.

    Outcomes are deduplicated (weights of equal outcomes are merged) and
    weights are normalized to sum to one.
    """

    __slots__ = ("_outcomes", "_weights")

    def __init__(
        self, outcomes: Sequence[Q], weights: Optional[Sequence[float]] = None
    ):
        if not outcomes:
            raise ModelError("a Distribution needs at least one outcome")
        if weights is None:
            weights = [1.0] * len(outcomes)
        if len(weights) != len(outcomes):
            raise ModelError("outcomes and weights must have equal length")
        if any(w < 0 for w in weights):
            raise ModelError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ModelError("weights must not all be zero")
        merged: dict = {}
        for outcome, weight in zip(outcomes, weights):
            merged[outcome] = merged.get(outcome, 0.0) + weight / total
        self._outcomes: Tuple[Q, ...] = tuple(merged.keys())
        self._weights: Tuple[float, ...] = tuple(merged.values())

    @classmethod
    def uniform(cls, outcomes: Iterable[Q]) -> "Distribution[Q]":
        """Uniform distribution over ``outcomes`` — the paper's ``δ`` set."""
        return cls(tuple(outcomes))

    @classmethod
    def bernoulli(cls, if_true: Q, if_false: Q, p_true: float) -> "Distribution[Q]":
        """Two-point distribution: ``if_true`` with probability ``p_true``."""
        if not 0.0 <= p_true <= 1.0:
            raise ModelError(f"p_true must lie in [0, 1], got {p_true}")
        return cls((if_true, if_false), (p_true, 1.0 - p_true))

    @property
    def outcomes(self) -> Tuple[Q, ...]:
        return self._outcomes

    @property
    def weights(self) -> Tuple[float, ...]:
        return self._weights

    @property
    def support(self) -> frozenset:
        """The set of outcomes with non-zero probability."""
        return frozenset(o for o, w in zip(self._outcomes, self._weights) if w > 0)

    def probability(self, outcome: Q) -> float:
        """Probability mass assigned to ``outcome`` (0.0 if absent)."""
        for candidate, weight in zip(self._outcomes, self._weights):
            if candidate == outcome:
                return weight
        return 0.0

    def sample(self, rng: np.random.Generator) -> Q:
        """Draw one outcome using ``rng``."""
        if len(self._outcomes) == 1:
            return self._outcomes[0]
        index = rng.choice(len(self._outcomes), p=self._weights)
        return self._outcomes[int(index)]

    def map(self, fn: Callable[[Q], "Q"]) -> "Distribution":
        """Push the distribution forward through ``fn``."""
        return Distribution([fn(o) for o in self._outcomes], self._weights)

    def is_deterministic(self) -> bool:
        return len(self._outcomes) == 1

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{o!r}: {w:.4g}" for o, w in zip(self._outcomes, self._weights)
        )
        return f"Distribution({{{pairs}}})"


TransitionResult = Union[Q, Distribution]


def product_distribution(
    choices: Sequence[Tuple[Sequence, Sequence[float]]],
    combine: Callable[..., Q],
) -> Distribution:
    """Build the joint distribution of independent choices.

    ``choices`` is a sequence of ``(options, weights)`` pairs describing
    independent random draws (e.g. a biased flag coin and a fair
    candidate coin); ``combine`` maps one option per choice to a state.
    This realizes the compound coin tosses of AlgLE/AlgMIS as a single
    ``δ`` distribution, as required by the model.
    """
    option_lists = [list(options) for options, _ in choices]
    weight_lists = [list(weights) for _, weights in choices]
    outcomes = []
    weights = []
    for combo in itertools.product(*[range(len(o)) for o in option_lists]):
        picked = [option_lists[i][j] for i, j in enumerate(combo)]
        weight = math.prod(weight_lists[i][j] for i, j in enumerate(combo))
        if weight <= 0:
            continue
        outcomes.append(combine(*picked))
        weights.append(weight)
    return Distribution(outcomes, weights)


class Algorithm(ABC, Generic[Q, Out]):
    """A stone age algorithm ``Π = ⟨Q, Q_O, ω, δ⟩``.

    Subclasses must implement the transition function, the output
    predicate/map, the designated initial state ``q*_0`` (used after a
    Restart exit and for fault-free starts) and a ``random_state``
    sampler used by the adversary and by fault injection.
    """

    #: Human-readable algorithm name (used in reports and tables).
    name: str = "algorithm"

    #: Whether ``delta`` always returns a single state (never a
    #: :class:`Distribution`) so that :meth:`resolve` never consumes
    #: randomness.  Deterministic algorithms are eligible for the
    #: engines' incremental step pipeline, which caches each node's
    #: pending action until its closed neighborhood changes — replaying
    #: a cached action is only sound when no coin would have been
    #: tossed.  Defaults to ``False`` (safe for every subclass).
    deterministic: bool = False

    # ------------------------------------------------------------------
    # The 4-tuple.
    # ------------------------------------------------------------------

    def states(self) -> Optional[frozenset]:
        """The full state set ``Q``, or ``None`` when enumeration is
        impractical (the set is always finite; see
        :meth:`state_space_size` for exact accounting)."""
        return None

    @abstractmethod
    def is_output_state(self, state: Q) -> bool:
        """Whether ``state ∈ Q_O``."""

    @abstractmethod
    def output(self, state: Q) -> Out:
        """The output map ``ω``; only defined on output states."""

    @abstractmethod
    def delta(self, state: Q, signal: Signal[Q]) -> TransitionResult:
        """The transition function ``δ`` (pure; randomness is returned,
        not sampled)."""

    # ------------------------------------------------------------------
    # Auxiliary contract.
    # ------------------------------------------------------------------

    @abstractmethod
    def initial_state(self) -> Q:
        """The designer-chosen uniform initial state ``q*_0``."""

    @abstractmethod
    def random_state(self, rng: np.random.Generator) -> Q:
        """Sample an arbitrary state — the adversary's prerogative."""

    def state_space_size(self) -> int:
        """Exact size of ``Q``.  Defaults to enumerating :meth:`states`."""
        enumerated = self.states()
        if enumerated is None:
            raise NotImplementedError(f"{self.name} does not enumerate its state space")
        return len(enumerated)

    # ------------------------------------------------------------------
    # Convenience helpers.
    # ------------------------------------------------------------------

    def output_states(self) -> Optional[frozenset]:
        """``Q_O``, when the state set is enumerable."""
        enumerated = self.states()
        if enumerated is None:
            return None
        return frozenset(q for q in enumerated if self.is_output_state(q))

    def resolve(self, state: Q, signal: Signal[Q], rng: np.random.Generator) -> Q:
        """Apply ``δ`` and sample the next state."""
        result = self.delta(state, signal)
        if isinstance(result, Distribution):
            return result.sample(rng)
        return result

    def support(self, state: Q, signal: Signal[Q]) -> frozenset:
        """The support of ``δ(state, signal)`` — handy for property tests."""
        result = self.delta(state, signal)
        if isinstance(result, Distribution):
            return result.support
        return frozenset((result,))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
