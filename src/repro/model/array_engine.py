"""The array-backed vectorized execution engine.

:class:`ArrayExecution` is the scale backend of the simulator: it keeps
the configuration as a dense integer code vector (see
:mod:`repro.core.encoding`), computes every activated node's signal at
once as a boolean presence matrix scattered over the topology's CSR
neighborhoods (:mod:`repro.graphs.csr`), and applies the batched
Table 1 kernel of :mod:`repro.core.algau_vec` — turning one step into a
handful of numpy passes instead of ``|A_t|`` Python-level transition
evaluations.

The engine implements the exact contract of
:class:`~repro.model.engine.ExecutionBase`:

* identical ``StepRecord`` streams (activation sets, change tuples with
  real :class:`~repro.core.turns.Turn` objects, round completion flags)
  for the same seeds — verified step for step by the differential test
  suite;
* monitors and interventions see a real
  :class:`~repro.model.configuration.Configuration` via the
  :attr:`configuration` property, which is decoded lazily and cached
  until the codes change, so monitor-free runs never materialize Turn
  objects except for the changed nodes of each record;
* any scheduler works: the activation set is translated to an index
  array, and sparse activations take a fast path that only gathers the
  activated rows of the presence matrix.

Requirements: the algorithm must expose the vectorized backend
(``encoding``, ``vector_kernel()``, ``delta_batch``) and be
deterministic — currently :class:`~repro.core.algau.ThinUnison` (both
the paper's variant and the ``cautious_af=False`` ablation).
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.graphs.topology import Topology
from repro.model.algorithm import Algorithm
from repro.model.configuration import Configuration
from repro.model.engine import ExecutionBase, Intervention, Monitor
from repro.model.errors import ModelError
from repro.model.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (avoids
    # the repro.core <-> repro.model import cycle at package init)
    from repro.core.turns import Turn


def supports_array_engine(algorithm: Algorithm) -> bool:
    """Whether ``algorithm`` exposes the vectorized backend."""
    return (
        hasattr(algorithm, "encoding")
        and hasattr(algorithm, "vector_kernel")
        and hasattr(algorithm, "delta_batch")
    )


class ArrayExecution(ExecutionBase["Turn"]):
    """Vectorized engine: dense codes + CSR signals + batched δ."""

    #: Below this activated fraction the engine gathers only the
    #: activated rows of the presence matrix instead of scattering the
    #: full ``(n, |Q|)`` signal.
    SPARSE_ACTIVATION_FRACTION = 0.5

    def __init__(
        self,
        topology: Topology,
        algorithm: Algorithm,
        initial_configuration: Configuration,
        scheduler: Scheduler,
        rng: Optional[np.random.Generator] = None,
        monitors: Tuple[Monitor, ...] = (),
        intervention: Optional[Intervention] = None,
    ):
        if not supports_array_engine(algorithm):
            raise ModelError(
                f"{algorithm.name} does not expose the vectorized backend "
                "(encoding/vector_kernel/delta_batch); use the object engine"
            )
        self._encoding = algorithm.encoding
        self._kernel = algorithm.vector_kernel()
        self._csr = topology.inclusive_csr()
        super().__init__(
            topology,
            algorithm,
            initial_configuration,
            scheduler,
            rng=rng,
            monitors=monitors,
            intervention=intervention,
        )

    # ------------------------------------------------------------------
    # Engine hooks.
    # ------------------------------------------------------------------

    def _load_configuration(self, configuration: Configuration) -> None:
        self._codes = self._encoding.encode_configuration(configuration)
        self._config_cache: Optional[Configuration] = configuration

    @property
    def configuration(self) -> Configuration:
        """The current configuration, decoded lazily and cached until
        the next state change."""
        if self._config_cache is None:
            self._config_cache = self._encoding.decode_configuration(
                self.topology, self._codes
            )
        return self._config_cache

    def state_of(self, v: int) -> Turn:
        return self._encoding.turn_table[int(self._codes[v])]

    @property
    def codes(self) -> np.ndarray:
        """A read-only snapshot of the current code vector.

        The engine rebinds its internal array on every step, so the
        returned view is *not* updated by subsequent steps — re-read
        the property to observe new state."""
        view = self._codes.view()
        view.flags.writeable = False
        return view

    def poke_states(self, updates) -> None:
        """Sparse state overwrite without decoding the configuration.

        The permanent-fault fast path: only the poked code lanes are
        written (O(|updates|) encode calls plus one code-vector copy to
        preserve the snapshot semantics of :attr:`codes`); the batched
        step kernel never sees a Python-level configuration.
        """
        if not updates:
            return
        encode = self._encoding.encode
        n = len(self._codes)
        new_codes = self._codes.copy()
        for v, state in updates.items():
            v = int(v)
            if not 0 <= v < n:
                raise ModelError(f"cannot poke unknown node {v}")
            new_codes[v] = encode(state)
        self._codes = new_codes
        self._config_cache = None

    def _apply(self, activated: FrozenSet[int]) -> Tuple[Tuple[int, Turn, Turn], ...]:
        codes = self._codes
        n = len(codes)
        kernel = self._kernel
        if len(activated) == n:
            presence = kernel.signal_presence(codes, self._csr)
            new_active = kernel.delta_batch(codes, presence)
            rows = None
        else:
            rows = np.fromiter(activated, dtype=np.int64, count=len(activated))
            rows.sort()
            if len(rows) <= self.SPARSE_ACTIVATION_FRACTION * n:
                presence = kernel.signal_presence(codes, self._csr, rows=rows)
            else:
                presence = kernel.signal_presence(codes, self._csr)[rows]
            new_active = kernel.delta_batch(codes[rows], presence)

        if rows is None:
            diff = np.nonzero(new_active != codes)[0]
            new_diff = new_active[diff]
        else:
            moved = new_active != codes[rows]
            diff = rows[moved]
            new_diff = new_active[moved]
        if diff.size == 0:
            return ()
        table = self._encoding.turn_table
        changed = tuple(
            zip(
                diff.tolist(),
                [table[c] for c in codes[diff].tolist()],
                [table[c] for c in new_diff.tolist()],
            )
        )
        new_codes = codes.copy()
        new_codes[diff] = new_diff
        self._codes = new_codes
        self._config_cache = None
        return changed

    # ------------------------------------------------------------------
    # Vectorized analysis fast paths.
    # ------------------------------------------------------------------

    def graph_is_good(self) -> bool:
        """Vectorized stabilization predicate: equivalent to
        ``is_good_graph(algorithm, execution.configuration)`` without
        decoding the configuration."""
        return self._kernel.is_good(self._codes, self._csr)
