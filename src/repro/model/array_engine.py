"""The array-backed vectorized execution engine.

:class:`ArrayExecution` is the scale backend of the simulator: it keeps
the configuration as a dense integer code vector (see
:mod:`repro.core.encoding`), computes activated nodes' signals as a
boolean presence matrix scattered over the topology's CSR neighborhoods
(:mod:`repro.graphs.csr`), and applies the batched Table 1 kernel of
:mod:`repro.core.algau_vec` — turning one step into a handful of numpy
passes instead of ``|A_t|`` Python-level transition evaluations.

On top of the batched kernel the engine runs the incremental step
pipeline of :class:`~repro.model.engine.ExecutionBase`: a pending-code
vector guarded by a dirty mask.  A step only pays kernel work for the
``activated ∩ dirty`` lane subset; clean activated lanes replay their
cached pending code, and a state change re-dirties exactly its CSR
neighborhood.  Tiny activation sets (round-robin and friends)
additionally take a scalar fast path (:meth:`VectorKernel.delta_one`)
that bypasses numpy dispatch entirely, which is what makes sparse
schedules scale with *activity* instead of ``n``.  The engine also
keeps incremental goodness counts (faulty nodes + unprotected ordered
pairs), so the AlgAU stabilization predicate answers in O(changes)
amortized instead of rescanning the configuration.
``incremental=False`` restores the naive full-recompute reference
(bit-identical trajectories; the differential suite compares the two).

The engine implements the exact contract of
:class:`~repro.model.engine.ExecutionBase`:

* identical ``StepRecord`` streams (activation sets, change tuples with
  real :class:`~repro.core.turns.Turn` objects, round completion flags)
  for the same seeds — verified step for step by the differential test
  suite;
* monitors and interventions see a real
  :class:`~repro.model.configuration.Configuration` via the
  :attr:`configuration` property, which is decoded lazily and cached
  until the codes change, so monitor-free runs never materialize Turn
  objects except for the changed nodes of each record;
* any scheduler works: the activation set is translated to an index
  array, and sparse activations take a fast path that only gathers the
  activated rows of the presence matrix.

Requirements: the algorithm must expose the vectorized backend
(``encoding``, ``vector_kernel()``, ``delta_batch``) and be
deterministic — currently :class:`~repro.core.algau.ThinUnison` (both
the paper's variant and the ``cautious_af=False`` ablation).
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.graphs.topology import Topology
from repro.model.algorithm import Algorithm
from repro.model.configuration import Configuration
from repro.model.engine import ExecutionBase, Intervention, Monitor
from repro.model.errors import ModelError
from repro.model.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (avoids
    # the repro.core <-> repro.model import cycle at package init)
    from repro.core.turns import Turn


_EMPTY_ROWS = np.empty(0, dtype=np.int64)


def supports_array_engine(algorithm: Algorithm) -> bool:
    """Whether ``algorithm`` exposes the vectorized backend."""
    return (
        hasattr(algorithm, "encoding")
        and hasattr(algorithm, "vector_kernel")
        and hasattr(algorithm, "delta_batch")
    )


class ArrayExecution(ExecutionBase["Turn"]):
    """Vectorized engine: dense codes + CSR signals + batched δ."""

    #: Below this activated fraction the engine gathers only the
    #: activated rows of the presence matrix instead of scattering the
    #: full ``(n, |Q|)`` signal.
    SPARSE_ACTIVATION_FRACTION = 0.5

    #: At most this many activated nodes, the incremental pipeline
    #: evaluates δ scalar-by-scalar (no numpy dispatch at all) — the
    #: round-robin/rotating regime.
    SCALAR_ACTIVATION_MAX = 4

    def __init__(
        self,
        topology: Topology,
        algorithm: Algorithm,
        initial_configuration: Configuration,
        scheduler: Scheduler,
        rng: Optional[np.random.Generator] = None,
        monitors: Tuple[Monitor, ...] = (),
        intervention: Optional[Intervention] = None,
        incremental: bool = True,
        track_enabled: bool = False,
    ):
        if not supports_array_engine(algorithm):
            raise ModelError(
                f"{algorithm.name} does not expose the vectorized backend "
                "(encoding/vector_kernel/delta_batch); use the object engine"
            )
        self._encoding = algorithm.encoding
        self._kernel = algorithm.vector_kernel()
        self._csr = topology.inclusive_csr()
        self._hoods = None  # Python-list CSR view, built on first scalar use
        super().__init__(
            topology,
            algorithm,
            initial_configuration,
            scheduler,
            rng=rng,
            monitors=monitors,
            intervention=intervention,
            incremental=incremental,
            track_enabled=track_enabled,
        )

    # ------------------------------------------------------------------
    # Engine hooks.
    # ------------------------------------------------------------------

    def _load_configuration(self, configuration: Configuration) -> None:
        self._codes = self._encoding.encode_configuration(configuration)
        self._config_cache: Optional[Configuration] = configuration
        n = len(self._codes)
        # Incremental-pipeline state: everything dirty, nothing cached.
        self._dirty = np.ones(n, dtype=bool)
        self._dirty_count = n
        self._pending = self._codes.copy()
        self._enabled_mask = np.zeros(n, dtype=bool)
        self._enabled_count = 0
        self._goodness: Optional[Tuple[int, int]] = None
        self._in_diff = np.zeros(n, dtype=bool)  # scratch for goodness
        self._new_code_of = np.zeros(n, dtype=np.int64)  # scratch

    @property
    def configuration(self) -> Configuration:
        """The current configuration, decoded lazily and cached until
        the next state change."""
        if self._config_cache is None:
            self._config_cache = self._encoding.decode_configuration(
                self.topology, self._codes
            )
        return self._config_cache

    def state_of(self, v: int) -> Turn:
        return self._encoding.turn_table[int(self._codes[v])]

    @property
    def codes(self) -> np.ndarray:
        """A read-only snapshot of the current code vector.

        The engine mutates its internal array in place, so the returned
        copy is *not* updated by subsequent steps — re-read the property
        to observe new state."""
        snapshot = self._codes.copy()
        snapshot.flags.writeable = False
        return snapshot

    def poke_states(self, updates) -> None:
        """Sparse state overwrite without decoding the configuration.

        The permanent-fault fast path: only the poked code lanes are
        written (O(|updates|) encode calls), and only the poked
        neighborhoods are re-dirtied; the batched step kernel never sees
        a Python-level configuration.
        """
        if not updates:
            return
        encode = self._encoding.encode
        codes = self._codes
        n = len(codes)
        poked = []
        for v, state in updates.items():
            v = int(v)
            if not 0 <= v < n:
                raise ModelError(f"cannot poke unknown node {v}")
            code = encode(state)
            if code != codes[v]:
                poked.append((v, int(codes[v]), code))
        self._state_epoch += 1
        if not poked:
            return
        rows = np.fromiter((v for v, _, _ in poked), dtype=np.int64, count=len(poked))
        old_codes = np.fromiter(
            (c for _, c, _ in poked), dtype=np.int64, count=len(poked)
        )
        new_codes = np.fromiter(
            (c for _, _, c in poked), dtype=np.int64, count=len(poked)
        )
        self._update_goodness(rows, old_codes, new_codes)
        codes[rows] = new_codes
        self._config_cache = None
        self._mark_dirty_rows(rows)

    def _apply(self, activated: FrozenSet[int]) -> Tuple[Tuple[int, Turn, Turn], ...]:
        if not self.incremental:
            return self._apply_naive(activated)
        codes = self._codes
        n = len(codes)
        count = len(activated)
        if count <= self.SCALAR_ACTIVATION_MAX and count < n:
            return self._apply_scalar(activated)

        dirty = self._dirty
        if count == n:
            # Full activation: the stale set is exactly the dirty set,
            # so the dense-step decision needs no index materialization.
            if 2 * self._dirty_count >= count:
                return self._apply_dense(None)
            rows = None
            stale = np.nonzero(dirty)[0] if self._dirty_count else _EMPTY_ROWS
        else:
            rows = np.fromiter(activated, dtype=np.int64, count=count)
            rows.sort()
            stale = rows[dirty[rows]] if self._dirty_count else _EMPTY_ROWS
            if 4 * count >= n and 2 * stale.size >= count:
                # Dense step over a mostly-dirty activation: the cache
                # cannot save kernel work, so skip its maintenance too
                # and invalidate wholesale — the naive cost, never more.
                return self._apply_dense(rows)
        if stale.size:
            self._refresh_rows(stale)

        pending = self._pending
        if rows is None:
            diff = np.nonzero(pending != codes)[0]
            new_diff = pending[diff]
        else:
            new_active = pending[rows]
            moved = new_active != codes[rows]
            diff = rows[moved]
            new_diff = new_active[moved]
        if diff.size == 0:
            return ()
        changed = self._commit(diff, new_diff)
        self._mark_dirty_rows(diff)
        return changed

    def advance(self, steps: int) -> None:
        """Record-free bulk stepping (see :meth:`ExecutionBase.advance`).

        The fast path drops everything a discarded ``StepRecord`` would
        have carried — the per-change Turn tuples, the activation
        frozenset copy, the enabled stamp — while running the *same*
        ``_apply`` pipeline on the same scheduler draws, so state
        trajectories stay bit-identical to ``steps`` :meth:`step` calls.
        Anything that needs the per-step protocol (monitors,
        interventions, masks, enabled-aware daemons, enabled tracking)
        falls back to the generic loop.
        """
        if (
            self.monitors
            or self.intervention is not None
            or self._track_enabled
            or self._masked
            or self.scheduler.uses_enabled_view
        ):
            super().advance(steps)
            return
        self._notify_start()
        scheduler = self.scheduler
        nodes = self.topology.nodes
        rounds = self._rounds
        self._record_changes = False
        sched_t0 = self._sched_t0
        try:
            for _ in range(steps):
                activated = scheduler.activations(self._t - sched_t0, nodes, self.rng)
                if activated:
                    self._apply(activated)
                rounds.observe(activated)
                self._t += 1
        finally:
            self._record_changes = True

    def _commit(
        self, diff: np.ndarray, new_diff: np.ndarray
    ) -> Tuple[Tuple[int, Turn, Turn], ...]:
        """Apply the moved lanes: build the change tuples, fold the
        goodness counts (which must read pre-write codes), then write in
        place and drop the decoded-configuration cache.  Callers handle
        their own dirty-set bookkeeping."""
        codes = self._codes
        old_diff = codes[diff]
        if self._record_changes:
            table = self._encoding.turn_table
            changed = tuple(
                zip(
                    diff.tolist(),
                    [table[c] for c in old_diff.tolist()],
                    [table[c] for c in new_diff.tolist()],
                )
            )
        else:
            changed = ()
        self._update_goodness(diff, old_diff, new_diff)
        codes[diff] = new_diff
        self._config_cache = None
        return changed

    def _evaluate(
        self, codes: np.ndarray, rows: Optional[np.ndarray], csr
    ) -> np.ndarray:
        """δ for the ``rows`` lanes of ``codes`` (all lanes when
        ``None``), returned in row order.

        This is the single kernel seam of the array tier: every batched
        evaluation — dense steps, stale-lane refreshes, the naive
        reference, the replica-batch fused pass — funnels through it.
        The base implementation is the presence-matrix gather + batched
        numpy kernel; the native tier overrides it with a compiled
        CSR-walking kernel (O(n + m) memory, no presence matrix).
        """
        kernel = self._kernel
        if rows is None:
            presence = kernel.signal_presence(codes, csr)
            return kernel.delta_batch(codes, presence)
        if len(rows) <= self.SPARSE_ACTIVATION_FRACTION * len(codes):
            presence = kernel.signal_presence(codes, csr, rows=rows)
        else:
            presence = kernel.signal_presence(codes, csr)[rows]
        return kernel.delta_batch(codes[rows], presence)

    def _apply_dense(
        self, rows: Optional[np.ndarray]
    ) -> Tuple[Tuple[int, Turn, Turn], ...]:
        """Dense-activation step: batch-recompute the activated lanes
        like the naive reference (writes in place) and wholesale-dirty
        the pipeline afterwards."""
        codes = self._codes
        if rows is None:
            new_active = self._evaluate(codes, None, self._csr)
            diff = np.nonzero(new_active != codes)[0]
            new_diff = new_active[diff]
        else:
            new_active = self._evaluate(codes, rows, self._csr)
            moved = new_active != codes[rows]
            diff = rows[moved]
            new_diff = new_active[moved]
        if diff.size == 0:
            return ()
        changed = self._commit(diff, new_diff)
        self._invalidate_all()
        return changed

    def _invalidate_all(self) -> None:
        """Wholesale cache invalidation: every lane dirty, no enabled
        flags (the invariant ``dirty ⇒ enabled flag False`` that
        :meth:`_refresh_rows` relies on)."""
        self._dirty[:] = True
        self._dirty_count = len(self._dirty)
        self._enabled_mask[:] = False
        self._enabled_count = 0

    # ------------------------------------------------------------------
    # The scalar fast path (|A_t| tiny — round-robin and friends).
    # ------------------------------------------------------------------

    def _hood_lists(self):
        if self._hoods is None:
            self._hoods = self._csr.neighbor_lists()
        return self._hoods

    def _apply_scalar(
        self, activated: FrozenSet[int]
    ) -> Tuple[Tuple[int, Turn, Turn], ...]:
        codes = self._codes
        dirty = self._dirty
        pending = self._pending
        hoods = self._hood_lists()
        kernel = self._kernel
        verts = sorted(activated)
        for v in verts:
            if dirty[v]:
                new = kernel.delta_one(codes, hoods[v])
                pending[v] = new
                dirty[v] = False
                self._dirty_count -= 1
                if new != codes[v]:
                    self._enabled_mask[v] = True
                    self._enabled_count += 1
        moved = [v for v in verts if pending[v] != codes[v]]
        if not moved:
            return ()
        old_codes = [int(codes[v]) for v in moved]
        new_codes = [int(pending[v]) for v in moved]
        if self._record_changes:
            table = self._encoding.turn_table
            changed = tuple(
                (v, table[o], table[c]) for v, o, c in zip(moved, old_codes, new_codes)
            )
        else:
            changed = ()
        self._update_goodness_scalar(moved, old_codes, new_codes)
        enabled_mask = self._enabled_mask
        for v, code in zip(moved, new_codes):
            codes[v] = code
            hood = self._csr.neighborhood(v)
            newly = hood[~dirty[hood]]
            if newly.size:
                self._enabled_count -= int(enabled_mask[newly].sum())
                self._dirty_count += newly.size
                enabled_mask[newly] = False
                dirty[newly] = True
        self._config_cache = None
        return changed

    # ------------------------------------------------------------------
    # Dynamic topology.
    # ------------------------------------------------------------------

    def _ensure_dynamic_topology(self):
        """Convert the shared frozen topology into a private
        :class:`~repro.graphs.dynamic.DynamicTopology` (and its
        :class:`~repro.graphs.dynamic.MutableCSR`) on first mutation.
        Copy-on-first-mutate matters: the construction-time CSR is
        cached on the topology and shared across executions
        (differential pairs), so it must never be patched in place."""
        from repro.graphs.dynamic import DynamicTopology

        top = self.topology
        if not isinstance(top, DynamicTopology):
            top = DynamicTopology(top)
            self.topology = top
            self._csr = top.inclusive_csr()
            self._hoods = None
        return top

    def _apply_topology_delta(self, delta):
        dyn = self._ensure_dynamic_topology()
        old_n = len(self._codes)
        applied = dyn.apply_delta(delta)  # patches self._csr in place
        n = dyn.n
        if n > old_n:
            grow = n - old_n
            self._codes = np.concatenate(
                [self._codes, np.zeros(grow, dtype=np.int64)]
            )
            self._pending = np.concatenate(
                [self._pending, np.zeros(grow, dtype=np.int64)]
            )
            self._dirty = np.concatenate([self._dirty, np.zeros(grow, dtype=bool)])
            self._enabled_mask = np.concatenate(
                [self._enabled_mask, np.zeros(grow, dtype=bool)]
            )
            self._in_diff = np.zeros(n, dtype=bool)
            self._new_code_of = np.zeros(n, dtype=np.int64)
        encode = self._encoding.encode
        codes = self._codes
        if applied.left:
            rest = encode(self.algorithm.initial_state())
            for v in applied.left:
                codes[v] = rest
                self._pending[v] = rest
        for v, state in applied.joined:
            code = encode(state)
            codes[v] = code
            self._pending[v] = code
        # Fold the delta into the dirty set: exactly the rows whose
        # inclusive neighborhood (or state) changed — no wholesale
        # invalidation.
        affected = sorted(
            set(applied.touched)
            | set(applied.left)
            | {v for v, _ in applied.joined}
        )
        if affected:
            self._dirty_exact_rows(
                np.fromiter(affected, dtype=np.int64, count=len(affected))
            )
        self._goodness = None  # lazily recounted on the mutated graph
        self._config_cache = None
        return applied

    def _dirty_exact_rows(self, rows: np.ndarray) -> None:
        """Dirty exactly ``rows`` (no neighborhood gather): the
        structural-delta variant of :meth:`_mark_dirty_rows` — the delta
        already names every row whose signal changed."""
        dirty = self._dirty
        newly = rows[~dirty[rows]]
        if newly.size:
            self._enabled_count -= int(self._enabled_mask[newly].sum())
            self._enabled_mask[newly] = False
            self._dirty_count += newly.size
            dirty[newly] = True

    # ------------------------------------------------------------------
    # Dirty-set maintenance.
    # ------------------------------------------------------------------

    def _refresh_rows(self, stale: np.ndarray) -> None:
        """Re-evaluate δ for the (sorted) ``stale`` lanes."""
        codes = self._codes
        new = self._evaluate(codes, stale, self._csr)
        self._pending[stale] = new
        self._dirty[stale] = False
        self._dirty_count -= stale.size
        now_enabled = new != codes[stale]
        # Dirty lanes always carry a False enabled flag (the dirty-mark
        # step cleared it), so the count moves by exactly the new trues.
        self._enabled_mask[stale] = now_enabled
        self._enabled_count += int(now_enabled.sum())

    def _mark_dirty_rows(self, moved: np.ndarray) -> None:
        """Re-dirty the CSR neighborhoods of the moved lanes.

        Dense change sets (synchronous-style steps) skip the per-lane
        gather: wholesale invalidation is a memset, and the next step
        re-evaluates everything anyway — exactly the naive cost, so the
        pipeline never loses to the reference on dense schedules."""
        n = len(self._dirty)
        if 4 * moved.size >= n:
            self._invalidate_all()
            return
        hood, _ = self._csr.gather(moved)
        hood = np.unique(hood)
        dirty = self._dirty
        newly = hood[~dirty[hood]]
        if newly.size:
            self._enabled_count -= int(self._enabled_mask[newly].sum())
            self._enabled_mask[newly] = False
            self._dirty_count += newly.size
            dirty[newly] = True

    def _refresh_pending(self) -> None:
        if not self.incremental:
            # Naive reference: recompute the whole pending vector.
            self._pending = self._evaluate(self._codes, None, self._csr)
            self._enabled_mask = self._pending != self._codes
            self._enabled_count = int(self._enabled_mask.sum())
            self._dirty[:] = False
            self._dirty_count = 0
            return
        if self._dirty_count:
            self._refresh_rows(np.nonzero(self._dirty)[0])

    def _enabled_snapshot(self) -> FrozenSet[int]:
        # Materializing the set costs one vectorized mask scan plus
        # O(enabled) set construction; the count-based API
        # (enabled_count / is_quiescent) stays O(dirty) amortized.
        if not self._enabled_count:
            return frozenset()
        return frozenset(np.nonzero(self._enabled_mask)[0].tolist())

    def enabled_count(self) -> int:
        """O(dirty)-amortized enabled count (no set materialization)."""
        self._refresh_pending()
        count = self._enabled_count
        if self._masked:
            masked = np.fromiter(self._masked, dtype=np.int64, count=len(self._masked))
            count -= int(self._enabled_mask[masked].sum())
        return count

    # ------------------------------------------------------------------
    # The naive full-recompute reference (pre-pipeline behavior).
    # ------------------------------------------------------------------

    def _apply_naive(
        self, activated: FrozenSet[int]
    ) -> Tuple[Tuple[int, Turn, Turn], ...]:
        codes = self._codes
        n = len(codes)
        if len(activated) == n:
            rows = None
        else:
            rows = np.fromiter(activated, dtype=np.int64, count=len(activated))
            rows.sort()
        new_active = self._evaluate(codes, rows, self._csr)

        if rows is None:
            diff = np.nonzero(new_active != codes)[0]
            new_diff = new_active[diff]
        else:
            moved = new_active != codes[rows]
            diff = rows[moved]
            new_diff = new_active[moved]
        if diff.size == 0:
            return ()
        changed = self._commit(diff, new_diff)
        # Keep the enabled bookkeeping conservative: everything dirty.
        self._invalidate_all()
        return changed

    # ------------------------------------------------------------------
    # Incremental AlgAU goodness accounting.
    # ------------------------------------------------------------------

    def _update_goodness(
        self, diff: np.ndarray, old_diff: np.ndarray, new_diff: np.ndarray
    ) -> None:
        """Fold one change set into the cached ``(faulty nodes,
        unprotected ordered pairs)`` counts — O(deg(diff)) instead of a
        full rescan.  Must run *before* the codes are written (the
        neighbor gather reads pre-step codes)."""
        if self._goodness is None:
            return
        if 4 * diff.size >= len(self._codes):
            # Dense change set: a lazy full recount (one vectorized
            # O(n + m) pass on the next query) beats per-pair deltas.
            self._goodness = None
            return
        k2 = self._kernel.num_clocks
        n_faulty, bad = self._goodness
        n_faulty += int((new_diff >= k2).sum()) - int((old_diff >= k2).sum())
        bad += self._pair_fold(diff, old_diff, new_diff)
        self._goodness = (n_faulty, bad)

    def _pair_fold(
        self, diff: np.ndarray, old_diff: np.ndarray, new_diff: np.ndarray
    ) -> int:
        """The folded unprotected-pair delta of one change set: ordered
        pairs whose row moved, plus the symmetric reverses of pairs
        whose column did not move (protection is symmetric; the self
        pair row==col is trivially protected and contributes 0).  Reads
        pre-write codes; the native tier overrides it with a compiled
        fold."""
        _, _, delta, col_changed = self._kernel.pair_deltas(
            self._codes,
            self._csr,
            diff,
            old_diff,
            new_diff,
            self._in_diff,
            self._new_code_of,
        )
        return int(delta.sum()) + int(delta[~col_changed].sum())

    def _update_goodness_scalar(self, moved, old_codes, new_codes) -> None:
        if self._goodness is None:
            return
        kernel = self._kernel
        tables = kernel.scalar_tables()
        pair_bad = tables.pair_bad
        k2 = kernel.num_clocks
        n_faulty, bad = self._goodness
        codes = self._codes  # pre-step codes (called before the writes)
        new_of = dict(zip(moved, new_codes))
        hoods = self._hood_lists()
        for v, old, new in zip(moved, old_codes, new_codes):
            n_faulty += int(new >= k2) - int(old >= k2)
            bad_new_row = pair_bad[new]
            bad_old_row = pair_bad[old]
            for u in hoods[v]:
                if u == v:
                    continue
                u_old = int(codes[u])
                u_new = new_of.get(u)
                if u_new is None:
                    delta = 2 * (bad_new_row[u_old] - bad_old_row[u_old])
                else:
                    delta = bad_new_row[u_new] - bad_old_row[u_old]
                bad += delta
        self._goodness = (n_faulty, bad)

    # ------------------------------------------------------------------
    # Vectorized analysis fast paths.
    # ------------------------------------------------------------------

    def graph_is_good(self) -> bool:
        """Vectorized stabilization predicate: equivalent to
        ``is_good_graph(algorithm, execution.configuration)`` without
        decoding the configuration — and, on the incremental pipeline,
        answered from maintained counts in O(1) amortized."""
        if not hasattr(self._kernel, "goodness_counts"):
            # Non-AlgAU kernels (e.g. the reset-tail lane) carry no
            # goodness machinery; defer to the base, whose clear
            # ModelError points at the algorithm's own predicate.
            return super().graph_is_good()
        if not self.incremental:
            return self._kernel.is_good(self._codes, self._csr)
        if self._goodness is None:
            self._goodness = self._goodness_counts(self._codes, self._csr)
        return self._goodness == (0, 0)

    def _goodness_counts(self, codes: np.ndarray, csr) -> Tuple[int, int]:
        """The full ``(faulty nodes, unprotected ordered pairs)`` scan
        that seeds the incremental accounting — the native tier
        overrides it with a compiled O(n + m) walk."""
        return self._kernel.goodness_counts(codes, csr)
