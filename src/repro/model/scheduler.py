"""Activation schedulers — the adversary's half of the execution.

A schedule is the sequence ``{A_t}`` of activation sets chosen by a
malicious adversary who knows the algorithm but is oblivious to coin
tosses.  The only constraint is fairness: every node must be activated
infinitely often.  The schedulers below cover the paper's settings:

* :class:`SynchronousScheduler` — ``A_t = V`` (so ``R(i) = i``);
* :class:`RoundRobinScheduler` — one node per step, maximal asynchrony;
* :class:`ShuffledRoundRobinScheduler` — random permutation per round;
* :class:`RandomSubsetScheduler` — i.i.d. inclusion coin per node;
* :class:`ExplicitScheduler` — replay a hand-crafted schedule
  (used for the Appendix-A live-lock witness);
* :class:`RotatingScheduler` — a base activation order whose node
  indices shift every round (the Figure-2 adversary);
* :class:`LaggardScheduler` — starves a victim node as long as
  fairness allows, stressing the asynchronous analysis.

Two *enabled-aware* daemons from the self-stabilization literature ride
on the engines' incrementally maintained enabled-set view (they set
``uses_enabled_view`` and receive the view through :meth:`Scheduler.select`):

* :class:`EnabledOnlyScheduler` — the maximal *distributed* daemon
  restricted to enabled nodes: every enabled node fires each step
  (weakly fair by construction — an enabled node is activated
  immediately);
* :class:`LocallyCentralScheduler` — the *locally central* daemon: a
  maximal independent subset of the enabled nodes, so no two neighbors
  are ever activated together (weakly fair with probability 1 — the
  packing order is re-randomized every step).

All schedulers are deterministic functions of ``(t, rng)`` (plus, for
the enabled-aware daemons, the engine-provided enabled view, itself a
deterministic function of the trajectory) so that runs are reproducible
under seeded generators.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.errors import ScheduleError


class Scheduler(ABC):
    """Produces the activation set ``A_t`` for every step ``t``."""

    #: Human-readable name used in experiment reports.
    name: str = "scheduler"

    #: Enabled-aware daemons set this to ``True``; the execution engine
    #: then calls :meth:`select` (passing its O(activity)-amortized
    #: enabled view) instead of :meth:`activations`.
    uses_enabled_view: bool = False

    @abstractmethod
    def activations(
        self, t: int, nodes: Sequence[int], rng: np.random.Generator
    ) -> FrozenSet[int]:
        """The set of nodes activated in step ``t`` (non-empty)."""

    def select(
        self,
        t: int,
        nodes: Sequence[int],
        rng: np.random.Generator,
        enabled: FrozenSet[int],
    ) -> FrozenSet[int]:
        """The enabled-aware selection hook.

        Engines call this (instead of :meth:`activations`) when
        ``uses_enabled_view`` is set, passing the current enabled nodes
        (masked nodes excluded).  The default ignores the view so that
        oblivious schedulers behave identically through either entry
        point.
        """
        return self.activations(t, nodes, rng)

    def round_activation_order(
        self, nodes: Sequence[int], rng: np.random.Generator
    ) -> Optional[np.ndarray]:
        """Optional bulk hook for round-based single-node schedulers.

        A scheduler whose schedule is one node per step, covering every
        node exactly once per round, may return the *next round's*
        activation order as an index array — consuming exactly the rng
        draws the equivalent ``n`` :meth:`activations` calls would
        consume (so trajectories stay bit-identical).  The
        replica-batched ensemble engine uses this to gather a whole
        fused step's activations with array indexing instead of one
        Python scheduler call per replica per step — the difference
        between ~2x and >4x on large ensembles.  The default ``None``
        keeps the per-step protocol.
        """
        return None

    def bind(self, execution) -> None:
        """Called by the execution engine at construction time.

        Oblivious schedulers ignore it; adaptive ones (e.g.
        :class:`~repro.model.adversary.GreedyAdversary`) override it to
        capture the execution whose configuration they inspect.
        """

    def __getattr__(self, name: str):
        """Give the removed ``attach`` alias a pointed error message.

        ``attach`` went through a deprecation cycle as an alias for
        :meth:`bind` and is now gone; since executions bind their
        scheduler at construction time, stale callers should simply
        drop the call (or use :meth:`bind` for manual wiring).
        ``__getattr__`` only runs after normal lookup fails, so present
        attributes pay nothing.
        """
        if name == "attach":
            raise AttributeError(
                f"{type(self).__name__}.attach() was removed: the "
                "execution engine binds its scheduler at construction "
                "time; drop the call (or use bind() for manual wiring)"
            )
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def _validate(
        self, activated: Iterable[int], nodes: Sequence[int]
    ) -> FrozenSet[int]:
        result = frozenset(activated)
        if not result:
            raise ScheduleError(f"{self.name} produced an empty activation set")
        known = set(nodes)
        if not result <= known:
            raise ScheduleError(
                f"{self.name} activated unknown nodes {sorted(result - known)}"
            )
        return result

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class SynchronousScheduler(Scheduler):
    """``A_t = V`` for all ``t``; every step is a round."""

    name = "synchronous"

    def __init__(self) -> None:
        # The engine passes the same nodes tuple every step, so the
        # full-activation frozenset is built once per node sequence
        # instead of once per step (at n = 10^6 the per-step set build
        # would dominate the compiled kernel tier).
        self._all: Optional[FrozenSet[int]] = None
        self._all_for: Optional[Sequence[int]] = None

    def activations(self, t, nodes, rng):
        if nodes is not self._all_for:
            self._all = frozenset(nodes)
            self._all_for = nodes
        return self._all


class RoundRobinScheduler(Scheduler):
    """Activates exactly one node per step, cycling through a fixed
    order.  One round takes exactly ``n`` steps."""

    name = "round-robin"

    def __init__(self, order: Optional[Sequence[int]] = None):
        self._order = tuple(order) if order is not None else None
        # The permutation check is O(n); validate once per node
        # sequence (the engine passes the same tuple every step), not
        # once per step.
        self._validated_for: Optional[Sequence[int]] = None
        self._singletons: Tuple[FrozenSet[int], ...] = ()
        self._order_array: Optional[np.ndarray] = None

    def activations(self, t, nodes, rng):
        if nodes is not self._validated_for:
            self._validate_order(nodes)
        return self._singletons[t % len(self._singletons)]

    def _validate_order(self, nodes):
        order = self._order if self._order is not None else tuple(nodes)
        if len(order) != len(nodes) or set(order) != set(nodes):
            raise ScheduleError("round-robin order must be a permutation of V")
        self._singletons = tuple(frozenset((v,)) for v in order)
        self._validated_for = nodes

    def round_activation_order(self, nodes, rng):
        """Every round replays the fixed order (no rng consumed)."""
        if nodes is not self._validated_for:
            self._validate_order(nodes)
            self._order_array = None
        if self._order_array is None:
            order = self._order if self._order is not None else tuple(nodes)
            self._order_array = np.asarray(order, dtype=np.int64)
        return self._order_array


class ShuffledRoundRobinScheduler(Scheduler):
    """One node per step, re-shuffling the order at every round
    boundary.  Fair with probability 1 and far less predictable than
    plain round-robin."""

    name = "shuffled-round-robin"

    def __init__(self) -> None:
        self._current: List[int] = []

    def activations(self, t, nodes, rng):
        if not self._current:
            self._current = list(nodes)
            rng.shuffle(self._current)
        return frozenset((self._current.pop(),))

    def round_activation_order(self, nodes, rng):
        """One shuffle per round — the same single draw (and therefore
        the same rng stream) as the incremental per-step pops, which
        consume the shuffled list from its tail."""
        order = list(nodes)
        rng.shuffle(order)
        order.reverse()  # activations() pops from the end
        return np.asarray(order, dtype=np.int64)


class RandomSubsetScheduler(Scheduler):
    """Each node is activated independently with probability ``p``.

    Empty draws are resampled so every step activates at least one node;
    fairness holds with probability 1.
    """

    name = "random-subset"

    def __init__(self, p: float = 0.5):
        if not 0.0 < p <= 1.0:
            raise ScheduleError(f"activation probability must be in (0, 1], got {p}")
        self._p = p
        self.name = f"random-subset(p={p})"

    @property
    def p(self) -> float:
        return self._p

    def activations(self, t, nodes, rng):
        node_list = tuple(nodes)
        while True:
            mask = rng.random(len(node_list)) < self._p
            if mask.any():
                return frozenset(v for v, included in zip(node_list, mask) if included)


class ExplicitScheduler(Scheduler):
    """Replays a prescribed finite schedule, optionally repeating it.

    Used to reproduce hand-crafted adversarial schedules such as the
    Appendix-A live-lock.  When the prescribed sequence is exhausted and
    ``repeat`` is false, the scheduler falls back to synchronous steps
    (keeping the execution fair).
    """

    name = "explicit"

    def __init__(
        self,
        sequence: Sequence[Iterable[int]],
        repeat: bool = False,
    ):
        self._sequence: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(step) for step in sequence
        )
        if not self._sequence:
            raise ScheduleError("explicit schedule must be non-empty")
        self._repeat = repeat

    def activations(self, t, nodes, rng):
        if t < len(self._sequence):
            return self._validate(self._sequence[t], nodes)
        if self._repeat:
            return self._validate(self._sequence[t % len(self._sequence)], nodes)
        return frozenset(nodes)


class RotatingScheduler(Scheduler):
    """Activates single nodes following ``base_order`` whose indices are
    shifted by ``shift`` (mod n) at each completed traversal.

    With ``base_order = [p0, p6, p1, p2, p3, p4, p7, p5]`` and
    ``shift = 1`` on the 8-ring, this is exactly the adversary that keeps
    the Appendix-A algorithm in a live-lock: after every traversal the
    configuration equals the previous one rotated by one position, and
    the schedule rotates along with it.
    """

    name = "rotating"

    def __init__(self, base_order: Sequence[int], shift: int = 1):
        if not base_order:
            raise ScheduleError("rotating schedule needs a non-empty base order")
        self._base = tuple(base_order)
        self._shift = shift
        self._validated_for: Optional[Sequence[int]] = None

    def activations(self, t, nodes, rng):
        n = len(nodes)
        if nodes is not self._validated_for:
            if set(self._base) != set(nodes):
                raise ScheduleError("rotating base order must be a permutation of V")
            self._validated_for = nodes
        traversal, position = divmod(t, len(self._base))
        node = (self._base[position] + traversal * self._shift) % n
        return frozenset((node,))


class LaggardScheduler(Scheduler):
    """Activates every node except a victim each step, touching the
    victim only once every ``period`` steps.

    This is the "almost-starving" fair adversary: the victim's rounds
    stretch to ``period`` steps, which maximizes the gap between step
    counts and round counts.
    """

    name = "laggard"

    def __init__(self, victim: int = 0, period: int = 8):
        if period < 2:
            raise ScheduleError("laggard period must be at least 2")
        self._victim = victim
        self._period = period
        self.name = f"laggard(victim={victim}, period={period})"
        # Both activation sets are fixed per node sequence; build them
        # once instead of refiltering V every step.
        self._validated_for: Optional[Sequence[int]] = None
        self._others: FrozenSet[int] = frozenset()
        self._everyone: FrozenSet[int] = frozenset()

    def activations(self, t, nodes, rng):
        if nodes is not self._validated_for:
            if self._victim not in set(nodes):
                raise ScheduleError(f"victim {self._victim} is not a node")
            self._others = frozenset(v for v in nodes if v != self._victim)
            self._everyone = self._others | frozenset((self._victim,))
            self._validated_for = nodes
        if t % self._period == self._period - 1 or not self._others:
            return self._everyone
        return self._others


class EnabledOnlyScheduler(Scheduler):
    """The maximal distributed daemon restricted to enabled nodes.

    Every step activates exactly the nodes whose ``δ`` would move them
    — the daemon the unison time/workload trade-off literature calls
    *enabled-aware*: it wastes no activation on nodes that cannot act,
    so step counts measure useful work.  Weakly fair by construction
    (a continuously enabled node is activated at once); when nothing is
    enabled (a quiescent configuration) it falls back to activating all
    nodes, which keeps activation sets non-empty and rounds progressing.
    """

    name = "enabled-only"
    uses_enabled_view = True

    def select(self, t, nodes, rng, enabled):
        if enabled:
            return self._validate(enabled, nodes)
        return frozenset(nodes)

    def activations(self, t, nodes, rng):
        raise ScheduleError(
            f"{self.name} needs the engine's enabled view; drive it "
            "through an execution (it is selected via select())"
        )


class LocallyCentralScheduler(Scheduler):
    """The locally central daemon over the enabled set.

    Activates a *maximal independent subset* of the enabled nodes, so
    no two neighbors ever fire in the same step — the serialization
    guarantee the locally central daemons of the self-stabilization
    literature provide (cf. Dubois et al. on Byzantine asynchronous
    unison).  The subset is packed greedily in an rng-permuted order,
    which makes the daemon weakly fair with probability 1: a
    continuously enabled node precedes all of its enabled neighbors
    infinitely often.  On a quiescent configuration it falls back to a
    maximal independent subset of all nodes (nothing can move, but
    activation sets stay non-empty and fair).
    """

    name = "locally-central"
    uses_enabled_view = True

    def __init__(self) -> None:
        self._neighbors = None

    def bind(self, execution) -> None:
        self._neighbors = execution.topology.neighbors

    def select(self, t, nodes, rng, enabled):
        if self._neighbors is None:
            raise ScheduleError(
                f"{self.name} is not bound to an execution (pass it as "
                "the scheduler of an execution, or call bind())"
            )
        pool = sorted(enabled) if enabled else list(nodes)
        order = rng.permutation(len(pool))
        chosen: List[int] = []
        blocked = set()
        for index in order:
            v = pool[int(index)]
            if v in blocked:
                continue
            chosen.append(v)
            blocked.add(v)
            blocked.update(self._neighbors(v))
        return self._validate(chosen, nodes)

    def activations(self, t, nodes, rng):
        raise ScheduleError(
            f"{self.name} needs the engine's enabled view; drive it "
            "through an execution (it is selected via select())"
        )


def default_schedulers() -> Tuple[Scheduler, ...]:
    """The scheduler battery used by integration tests and experiments."""
    return (
        SynchronousScheduler(),
        RoundRobinScheduler(),
        ShuffledRoundRobinScheduler(),
        RandomSubsetScheduler(0.5),
        LaggardScheduler(victim=0, period=6),
    )
