"""Activation schedulers — the adversary's half of the execution.

A schedule is the sequence ``{A_t}`` of activation sets chosen by a
malicious adversary who knows the algorithm but is oblivious to coin
tosses.  The only constraint is fairness: every node must be activated
infinitely often.  The schedulers below cover the paper's settings:

* :class:`SynchronousScheduler` — ``A_t = V`` (so ``R(i) = i``);
* :class:`RoundRobinScheduler` — one node per step, maximal asynchrony;
* :class:`ShuffledRoundRobinScheduler` — random permutation per round;
* :class:`RandomSubsetScheduler` — i.i.d. inclusion coin per node;
* :class:`ExplicitScheduler` — replay a hand-crafted schedule
  (used for the Appendix-A live-lock witness);
* :class:`RotatingScheduler` — a base activation order whose node
  indices shift every round (the Figure-2 adversary);
* :class:`LaggardScheduler` — starves a victim node as long as
  fairness allows, stressing the asynchronous analysis.

All schedulers are deterministic functions of ``(t, rng)`` so that runs
are reproducible under seeded generators.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.errors import ScheduleError


class Scheduler(ABC):
    """Produces the activation set ``A_t`` for every step ``t``."""

    #: Human-readable name used in experiment reports.
    name: str = "scheduler"

    @abstractmethod
    def activations(
        self, t: int, nodes: Sequence[int], rng: np.random.Generator
    ) -> FrozenSet[int]:
        """The set of nodes activated in step ``t`` (non-empty)."""

    def bind(self, execution) -> None:
        """Called by the execution engine at construction time.

        Oblivious schedulers ignore it; adaptive ones (e.g.
        :class:`~repro.model.adversary.GreedyAdversary`) override it to
        capture the execution whose configuration they inspect.
        """

    def _validate(
        self, activated: Iterable[int], nodes: Sequence[int]
    ) -> FrozenSet[int]:
        result = frozenset(activated)
        if not result:
            raise ScheduleError(f"{self.name} produced an empty activation set")
        known = set(nodes)
        if not result <= known:
            raise ScheduleError(
                f"{self.name} activated unknown nodes {sorted(result - known)}"
            )
        return result

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class SynchronousScheduler(Scheduler):
    """``A_t = V`` for all ``t``; every step is a round."""

    name = "synchronous"

    def activations(self, t, nodes, rng):
        return frozenset(nodes)


class RoundRobinScheduler(Scheduler):
    """Activates exactly one node per step, cycling through a fixed
    order.  One round takes exactly ``n`` steps."""

    name = "round-robin"

    def __init__(self, order: Optional[Sequence[int]] = None):
        self._order = tuple(order) if order is not None else None

    def activations(self, t, nodes, rng):
        order = self._order if self._order is not None else tuple(nodes)
        if len(order) != len(nodes) or set(order) != set(nodes):
            raise ScheduleError("round-robin order must be a permutation of V")
        return frozenset((order[t % len(order)],))


class ShuffledRoundRobinScheduler(Scheduler):
    """One node per step, re-shuffling the order at every round
    boundary.  Fair with probability 1 and far less predictable than
    plain round-robin."""

    name = "shuffled-round-robin"

    def __init__(self) -> None:
        self._current: List[int] = []

    def activations(self, t, nodes, rng):
        if not self._current:
            self._current = list(nodes)
            rng.shuffle(self._current)
        return frozenset((self._current.pop(),))


class RandomSubsetScheduler(Scheduler):
    """Each node is activated independently with probability ``p``.

    Empty draws are resampled so every step activates at least one node;
    fairness holds with probability 1.
    """

    name = "random-subset"

    def __init__(self, p: float = 0.5):
        if not 0.0 < p <= 1.0:
            raise ScheduleError(f"activation probability must be in (0, 1], got {p}")
        self._p = p
        self.name = f"random-subset(p={p})"

    @property
    def p(self) -> float:
        return self._p

    def activations(self, t, nodes, rng):
        node_list = tuple(nodes)
        while True:
            mask = rng.random(len(node_list)) < self._p
            if mask.any():
                return frozenset(v for v, included in zip(node_list, mask) if included)


class ExplicitScheduler(Scheduler):
    """Replays a prescribed finite schedule, optionally repeating it.

    Used to reproduce hand-crafted adversarial schedules such as the
    Appendix-A live-lock.  When the prescribed sequence is exhausted and
    ``repeat`` is false, the scheduler falls back to synchronous steps
    (keeping the execution fair).
    """

    name = "explicit"

    def __init__(
        self,
        sequence: Sequence[Iterable[int]],
        repeat: bool = False,
    ):
        self._sequence: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(step) for step in sequence
        )
        if not self._sequence:
            raise ScheduleError("explicit schedule must be non-empty")
        self._repeat = repeat

    def activations(self, t, nodes, rng):
        if t < len(self._sequence):
            return self._validate(self._sequence[t], nodes)
        if self._repeat:
            return self._validate(self._sequence[t % len(self._sequence)], nodes)
        return frozenset(nodes)


class RotatingScheduler(Scheduler):
    """Activates single nodes following ``base_order`` whose indices are
    shifted by ``shift`` (mod n) at each completed traversal.

    With ``base_order = [p0, p6, p1, p2, p3, p4, p7, p5]`` and
    ``shift = 1`` on the 8-ring, this is exactly the adversary that keeps
    the Appendix-A algorithm in a live-lock: after every traversal the
    configuration equals the previous one rotated by one position, and
    the schedule rotates along with it.
    """

    name = "rotating"

    def __init__(self, base_order: Sequence[int], shift: int = 1):
        if not base_order:
            raise ScheduleError("rotating schedule needs a non-empty base order")
        self._base = tuple(base_order)
        self._shift = shift

    def activations(self, t, nodes, rng):
        n = len(nodes)
        if set(self._base) != set(nodes):
            raise ScheduleError("rotating base order must be a permutation of V")
        traversal, position = divmod(t, len(self._base))
        node = (self._base[position] + traversal * self._shift) % n
        return frozenset((node,))


class LaggardScheduler(Scheduler):
    """Activates every node except a victim each step, touching the
    victim only once every ``period`` steps.

    This is the "almost-starving" fair adversary: the victim's rounds
    stretch to ``period`` steps, which maximizes the gap between step
    counts and round counts.
    """

    name = "laggard"

    def __init__(self, victim: int = 0, period: int = 8):
        if period < 2:
            raise ScheduleError("laggard period must be at least 2")
        self._victim = victim
        self._period = period
        self.name = f"laggard(victim={victim}, period={period})"

    def activations(self, t, nodes, rng):
        if self._victim not in set(nodes):
            raise ScheduleError(f"victim {self._victim} is not a node")
        others = frozenset(v for v in nodes if v != self._victim)
        if t % self._period == self._period - 1 or not others:
            return others | frozenset((self._victim,))
        return others


def default_schedulers() -> Tuple[Scheduler, ...]:
    """The scheduler battery used by integration tests and experiments."""
    return (
        SynchronousScheduler(),
        RoundRobinScheduler(),
        ShuffledRoundRobinScheduler(),
        RandomSubsetScheduler(0.5),
        LaggardScheduler(victim=0, period=6),
    )
