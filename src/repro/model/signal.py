"""Set-broadcast signals of the stone age model.

The paper defines the signal of node ``v`` under configuration ``C`` as
the binary vector ``S_v ∈ {0, 1}^Q`` with ``S_v(q) = 1`` iff some node in
the inclusive neighborhood ``N+(v)`` occupies state ``q``.  A binary
vector over ``Q`` carries exactly the same information as the subset of
``Q`` it indicates, so :class:`Signal` wraps a ``frozenset`` of sensed
states.  Algorithms receive *only* this object (plus their own state),
which enforces the model's communication constraints: no counting, no
neighbor identities, no directionality.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Generic, Iterable, Iterator, TypeVar

Q = TypeVar("Q")


class Signal(Generic[Q]):
    """The set of states sensed by a node in its inclusive neighborhood.

    Instances are immutable and hashable.  The sensed set always contains
    the observing node's own state because neighborhoods are inclusive.
    """

    __slots__ = ("_sensed",)

    def __init__(self, sensed: Iterable[Q]):
        self._sensed: FrozenSet[Q] = frozenset(sensed)

    @property
    def sensed(self) -> FrozenSet[Q]:
        """The frozen set of sensed states."""
        return self._sensed

    def senses(self, state: Q) -> bool:
        """Return ``True`` iff ``state`` appears in the neighborhood."""
        return state in self._sensed

    def senses_any(self, predicate: Callable[[Q], bool]) -> bool:
        """Return ``True`` iff some sensed state satisfies ``predicate``."""
        return any(predicate(q) for q in self._sensed)

    def senses_only(self, allowed: Iterable[Q]) -> bool:
        """Return ``True`` iff every sensed state belongs to ``allowed``."""
        allowed_set = frozenset(allowed)
        return self._sensed <= allowed_set

    def matching(self, predicate: Callable[[Q], bool]) -> FrozenSet[Q]:
        """Return the subset of sensed states satisfying ``predicate``."""
        return frozenset(q for q in self._sensed if predicate(q))

    def __contains__(self, state: object) -> bool:
        return state in self._sensed

    def __iter__(self) -> Iterator[Q]:
        return iter(self._sensed)

    def __len__(self) -> int:
        return len(self._sensed)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signal):
            return NotImplemented
        return self._sensed == other._sensed

    def __hash__(self) -> int:
        return hash(("Signal", self._sensed))

    def __repr__(self) -> str:
        inner = ", ".join(sorted(repr(q) for q in self._sensed))
        return f"Signal({{{inner}}})"
