"""Adaptive adversarial scheduling.

The model's adversary chooses activations knowing the algorithm and the
current configuration (it is oblivious only to future coin tosses).
The schedulers in :mod:`repro.model.scheduler` are *oblivious* —
fixed patterns.  This module adds the adaptive kind:

* :class:`GreedyAdversary` — a fair scheduler with one-step lookahead:
  within each round it activates, among the nodes not yet activated
  this round, the one whose (deterministic) transition keeps a
  user-supplied disorder potential highest.  Fairness is guaranteed by
  construction (every node is activated exactly once per round).

For AlgAU the natural potential is
:func:`repro.core.potential.disorder_potential`; the stress test in
``tests/test_adversary.py`` and the scheduler-sensitivity benchmark
show that even this adaptive adversary cannot prevent stabilization —
Thm 1.1 quantifies over *all* fair schedules, and the greedy one is the
meanest we can build without solving the adversary's full optimization
problem.

Implementation note: schedulers normally see only ``(t, nodes, rng)``;
an adaptive adversary additionally needs the current configuration.
The execution engine calls :meth:`Scheduler.bind` at construction time,
which the adversary overrides to capture its execution — no manual
wiring required.  (The old post-construction ``attach`` alias finished
its deprecation cycle and was removed; the
:class:`~repro.model.scheduler.Scheduler` base class points stale
callers at :meth:`~repro.model.scheduler.Scheduler.bind`.)
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from repro.model.algorithm import Distribution
from repro.model.configuration import Configuration
from repro.model.errors import ScheduleError
from repro.model.scheduler import Scheduler


class GreedyAdversary(Scheduler):
    """Fair one-step-lookahead adversarial scheduler.

    Parameters
    ----------
    potential:
        ``potential(configuration) -> float``; the adversary activates
        the pending node whose post-transition configuration keeps this
        value highest (ties broken by node id for determinism).
    """

    name = "greedy-adversary"

    def __init__(self, potential: Callable[[Configuration], float]):
        self._potential = potential
        self._execution = None
        self._pending: Set[int] = set()

    def bind(self, execution) -> None:
        """Capture the execution (called automatically at construction
        of the :class:`~repro.model.engine.ExecutionBase`).

        An adversary is stateful (it inspects its execution's
        configuration and tracks per-round pending sets), so sharing one
        instance between executions would silently score lookaheads
        against the wrong configuration — rebinding raises instead.
        """
        if self._execution is not None and self._execution is not execution:
            raise ScheduleError(
                "GreedyAdversary is already bound to another execution; "
                "create a fresh adversary per execution"
            )
        self._execution = execution
        self._pending = set(execution.topology.nodes)

    def _lookahead(self, configuration: Configuration, v: int) -> float:
        execution = self._execution
        result = execution.algorithm.delta(configuration[v], configuration.signal(v))
        if isinstance(result, Distribution):
            # Randomized transition: score the expected potential over
            # the support (the adversary cannot see the coin, so it
            # plays the average).
            total = 0.0
            for outcome, weight in zip(result.outcomes, result.weights):
                total += weight * self._potential(configuration.replace({v: outcome}))
            return total
        return self._potential(configuration.replace({v: result}))

    def activations(self, t, nodes, rng):
        if self._execution is None:
            raise ScheduleError(
                "GreedyAdversary is not bound to an execution (pass it as "
                "the scheduler of an execution, or call bind())"
            )
        if not self._pending:
            self._pending = set(nodes)
        configuration = self._execution.configuration
        best_node: Optional[int] = None
        best_score = -float("inf")
        for v in sorted(self._pending):
            score = self._lookahead(configuration, v)
            if score > best_score:
                best_score = score
                best_node = v
        assert best_node is not None
        self._pending.discard(best_node)
        return frozenset((best_node,))


def greedy_au_adversary(algorithm) -> GreedyAdversary:
    """The canonical AlgAU stress adversary: maximize the disorder
    potential (non-out-protected nodes + unprotected edges + faulty
    nodes)."""
    from repro.core.potential import disorder_potential

    return GreedyAdversary(lambda config: float(disorder_potential(algorithm, config)))
