"""The replica-batched ensemble execution engine.

The paper's headline numbers are *ensemble* statistics: every Thm 1.1
sweep and fault-recovery figure aggregates many independent runs of the
same (topology family, algorithm, scheduler) cell that differ only by
seed.  Running each replica as its own
:class:`~repro.model.array_engine.ArrayExecution` repays the full
python/numpy dispatch overhead per replica per step.
:class:`ReplicaBatchExecution` vectorizes *across replicas as well as
nodes*: it holds the code vectors of ``R`` independent replicas as one
flat array (an ``(R, n)`` code matrix when the replicas share ``n`` —
see :attr:`ReplicaBatchExecution.codes_matrix`), concatenates their CSR
neighborhoods into one block-diagonal adjacency, and advances every
live replica's activated lanes in a single fused Table 1 kernel pass
per ensemble step.

Per replica the engine keeps exactly the state the per-scenario path
keeps: its own scheduler instance, its own ``SeedSequence``-derived rng
stream (consumed only by the scheduler, in the same order as a solo
run — which is what makes batched results bit-identical to per-scenario
runs), its own :class:`~repro.model.rounds.RoundTracker`, and its own
incrementally folded goodness counts (the ``(faulty nodes, unprotected
ordered pairs)`` accounting of the PR 4 step pipeline, here held as
per-replica count *vectors* folded with one
:meth:`~repro.core.algau_vec.VectorKernel.pair_deltas` call per step).
A replica whose counts hit ``(0, 0)`` — the AlgAU stabilization
predicate — or whose round budget runs out is *retired*: its lanes drop
out of the fused pass, so late in a campaign the hot loop only pays for
the stragglers.

Two drive modes, never mixed:

* ``create_execution(engine="replica-batch")`` — the degenerate R = 1
  case: the class inherits the whole
  :class:`~repro.model.array_engine.ArrayExecution` contract
  (incremental pipeline, enabled view, pokes/masks/interventions,
  monitors), so a single scenario routed through this engine behaves
  exactly like the array backend;
* :meth:`ReplicaBatchExecution.from_replicas` — the ensemble case:
  ``R`` replica specs are fused and driven through
  :meth:`run_ensemble`, which implements the campaign measurement loop
  (``run(max_rounds=..., until=graph_is_good)``) for all replicas at
  once.  Per-step ``StepRecord`` streams are not materialized on this
  path (no per-node Turn tuples — that is a large part of the win);
  callers get per-replica :class:`ReplicaOutcome` rows instead.

Limitations of the ensemble path (enforced): the algorithm must expose
the vectorized backend (ThinUnison), schedulers must be oblivious
(``uses_enabled_view`` daemons need a per-replica enabled view the
fused pass does not maintain), and fault plans are out of scope —
faulted scenarios keep the per-scenario engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Sequence

import numpy as np

from repro.graphs.csr import CSRAdjacency
from repro.graphs.topology import Topology
from repro.model.array_engine import ArrayExecution
from repro.model.configuration import Configuration
from repro.model.engine import StepRecord
from repro.model.errors import ModelError
from repro.model.rounds import RoundTracker
from repro.model.scheduler import Scheduler


class ReplicaSpec(NamedTuple):
    """One replica of an ensemble: its own topology (same family,
    possibly a different sample), start, scheduler instance and rng."""

    topology: Topology
    initial_configuration: Configuration
    scheduler: Scheduler
    rng: np.random.Generator


@dataclass(frozen=True)
class ReplicaOutcome:
    """The measured outcome of one replica — the same quantities the
    per-scenario AU path reports (`repro.campaigns.runner._run_au`,
    fault-free branch), bit-identical to a solo run from the same
    seed."""

    index: int
    n: int
    m: int
    stabilized: bool
    #: Paper units: smallest ``i`` with a good graph by ``R(i)`` when
    #: stabilized, else the completed rounds at budget exhaustion.
    rounds: int
    steps: int
    #: Total work in moves — activations that changed a lane's state —
    #: folded per replica from the ensemble diff stream; bit-identical
    #: to a solo run's :class:`~repro.analysis.monitors.MoveCounter`
    #: (retired replicas stop being activated, so the count freezes at
    #: the stabilizing step exactly like a solo ``run(until=...)``).
    moves: int = 0


class _Replica:
    """Mutable per-replica bookkeeping of an ensemble run.

    Replicas run in one of two scheduling modes, decided at the start of
    the run:

    * **queue mode** — the scheduler exposes
      :meth:`~repro.model.scheduler.Scheduler.round_activation_order`:
      whole rounds are pre-drawn into the shared queue buffer, rounds
      complete exactly every ``n`` steps, and the fused loop gathers the
      replica's activation by array indexing (no per-step Python);
    * **call mode** — the generic per-step protocol: one
      ``scheduler.activations`` call per step and a
      :class:`~repro.model.rounds.RoundTracker` for the round operator.
    """

    __slots__ = (
        "index",
        "offset",
        "n",
        "m",
        "nodes",
        "scheduler",
        "rng",
        "tracker",
        "t",
        "all_rows",
        "done",
        "stabilized",
        "rounds",
        "completed",
        "round_start",
        "queue_mode",
    )

    def __init__(self, index: int, offset: int, spec: ReplicaSpec):
        self.index = index
        self.offset = offset
        self.n = spec.topology.n
        self.m = spec.topology.m
        self.nodes = spec.topology.nodes
        self.scheduler = spec.scheduler
        self.rng = spec.rng
        self.tracker = RoundTracker(self.nodes)
        self.t = 0
        self.all_rows = np.arange(offset, offset + self.n, dtype=np.int64)
        self.done = False
        self.stabilized = False
        self.rounds = 0
        # Queue-mode round bookkeeping (boundaries fall exactly at
        # multiples of n because one pre-drawn round covers every node
        # once; this is RoundTracker's arithmetic for such schedules).
        self.completed = 0
        self.round_start = 0
        self.queue_mode = False

    def finish(self, stabilized: bool, rounds: int) -> None:
        self.done = True
        self.stabilized = stabilized
        self.rounds = rounds

    def stabilization_round(self) -> int:
        """Mirrors ``repro.campaigns.runner._stabilization_round``."""
        completed = self.tracker.completed_rounds
        at_boundary = self.t == self.tracker.boundary(completed)
        return completed + (0 if at_boundary else 1)

    def queue_stabilization_round(self) -> int:
        at_boundary = self.t == self.round_start + self.n
        return self.completed + (0 if at_boundary else 1)

    def outcome(self, moves: int = 0) -> ReplicaOutcome:
        return ReplicaOutcome(
            index=self.index,
            n=self.n,
            m=self.m,
            stabilized=self.stabilized,
            rounds=self.rounds,
            steps=self.t,
            moves=moves,
        )


class ReplicaBatchExecution(ArrayExecution):
    """Ensemble-vectorized engine: R replicas, one fused kernel pass.

    Constructed through :func:`~repro.model.engine.create_execution`
    this is the R = 1 degenerate case and inherits the full array-engine
    contract.  Ensembles are built with :meth:`from_replicas` and driven
    with :meth:`run_ensemble`; the single-step API is disabled on them
    (the two drive modes must not interleave — the inherited pipeline
    state only tracks the primary replica).
    """

    def __init__(self, *args, **kwargs):
        self._ensemble: Optional[List[_Replica]] = None
        super().__init__(*args, **kwargs)

    # ------------------------------------------------------------------
    # Ensemble construction.
    # ------------------------------------------------------------------

    @classmethod
    def from_replicas(
        cls, algorithm, replicas: Sequence[ReplicaSpec]
    ) -> "ReplicaBatchExecution":
        """Fuse ``replicas`` (same algorithm, oblivious schedulers)
        into one batched execution."""
        specs = [ReplicaSpec(*spec) for spec in replicas]
        if not specs:
            raise ModelError("a replica batch needs at least one replica")
        for spec in specs:
            if spec.scheduler.uses_enabled_view:
                raise ModelError(
                    f"scheduler {spec.scheduler.name!r} needs the per-"
                    f"replica enabled view, which the fused ensemble pass "
                    f"does not maintain; run it through the per-scenario "
                    f"engines"
                )
        first = specs[0]
        self = cls(
            first.topology,
            algorithm,
            first.initial_configuration,
            first.scheduler,
            rng=first.rng,
        )
        self._build_ensemble(specs)
        return self

    def _build_ensemble(self, specs: Sequence[ReplicaSpec]) -> None:
        encoding = self._encoding
        reps: List[_Replica] = []
        code_parts: List[np.ndarray] = []
        indptr_parts: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
        index_parts: List[np.ndarray] = []
        offset = 0
        nnz = 0
        for i, spec in enumerate(specs):
            reps.append(_Replica(i, offset, spec))
            code_parts.append(
                encoding.encode_configuration(spec.initial_configuration)
            )
            csr = spec.topology.inclusive_csr()
            indptr_parts.append(csr.indptr[1:] + nnz)
            index_parts.append(csr.indices + offset)
            offset += spec.topology.n
            nnz += len(csr.indices)
        self._ensemble = reps
        # Per-replica topologies, kept for dynamic-topology deltas
        # (converted to DynamicTopology copy-on-first-mutate).
        self._replica_tops: List = [spec.topology for spec in specs]
        self._flat = np.concatenate(code_parts)
        self._block_csr = CSRAdjacency(
            np.concatenate(indptr_parts), np.concatenate(index_parts)
        )
        # Tombstone lanes (nodes that left): excluded from every fused
        # pass, mirroring the solo engines' permanent-fault masking.
        self._left_flat = np.zeros(offset, dtype=bool)
        for rep, spec in zip(reps, specs):
            for v in getattr(spec.topology, "left_nodes", ()):
                self._left_flat[rep.offset + v] = True
        self._rep_of_node = np.repeat(
            np.arange(len(reps), dtype=np.int64),
            np.fromiter((rep.n for rep in reps), dtype=np.int64, count=len(reps)),
        )
        self._in_diff_flat = np.zeros(offset, dtype=bool)
        self._new_code_flat = np.zeros(offset, dtype=np.int64)
        # Staging buffer for queue-mode scheduling: one slot per node
        # per replica (a pre-drawn round covers every node once).
        self._queue = np.zeros(offset, dtype=np.int64)
        # Per-replica goodness count vectors, seeded by one full scan
        # each and folded incrementally from every fused change set.
        self._faulty_counts = np.zeros(len(reps), dtype=np.int64)
        self._bad_counts = np.zeros(len(reps), dtype=np.int64)
        # Per-replica move totals, folded from the same diff stream as
        # the goodness counts (one bincount per step).
        self._move_counts = np.zeros(len(reps), dtype=np.int64)
        for rep, spec in zip(reps, specs):
            faulty, bad = self._goodness_counts(
                self._flat[rep.offset : rep.offset + rep.n],
                spec.topology.inclusive_csr(),
            )
            self._faulty_counts[rep.index] = faulty
            self._bad_counts[rep.index] = bad

    # ------------------------------------------------------------------
    # Ensemble state inspection.
    # ------------------------------------------------------------------

    @property
    def replica_count(self) -> int:
        return 1 if self._ensemble is None else len(self._ensemble)

    @property
    def codes_matrix(self) -> np.ndarray:
        """The ``(R, n)`` code matrix (read-only snapshot); defined when
        every replica has the same node count (the common campaign
        case — one graph family, one parameter point)."""
        if self._ensemble is None:
            return self.codes.reshape(1, -1)
        widths = {rep.n for rep in self._ensemble}
        if len(widths) != 1:
            raise ModelError(
                f"replicas have heterogeneous node counts {sorted(widths)}; "
                f"use replica_codes(i) instead"
            )
        snapshot = self._flat.reshape(len(self._ensemble), widths.pop()).copy()
        snapshot.flags.writeable = False
        return snapshot

    def replica_codes(self, index: int) -> np.ndarray:
        """A read-only snapshot of replica ``index``'s code vector."""
        if self._ensemble is None:
            if index != 0:
                raise ModelError(f"no replica {index} (single-replica engine)")
            return self.codes
        rep = self._ensemble[index]
        snapshot = self._flat[rep.offset : rep.offset + rep.n].copy()
        snapshot.flags.writeable = False
        return snapshot

    def replica_graph_is_good(self, index: int) -> bool:
        """The AlgAU stabilization predicate on replica ``index``,
        answered from the maintained per-replica counts."""
        if self._ensemble is None:
            if index != 0:
                raise ModelError(f"no replica {index} (single-replica engine)")
            return self.graph_is_good()
        return self._faulty_counts[index] == 0 and self._bad_counts[index] == 0

    # ------------------------------------------------------------------
    # Dynamic topology (ensemble path).
    # ------------------------------------------------------------------

    def _apply_topology_delta(self, delta):
        """Apply one :class:`~repro.graphs.dynamic.TopologyDelta` to
        *every* replica of the ensemble (replica-local node ids — the
        same delta stream a solo lane of the differential pair sees).

        Edge-only deltas keep every offset intact and splice the
        affected rows of the block-diagonal CSR in place; membership
        deltas (joins/leaves) shift the lane layout and rebuild the
        fused arrays by re-concatenation.  Must not be called while a
        :meth:`run_ensemble` drive is in flight (queued rounds would go
        stale)."""
        if self._ensemble is None:
            return super()._apply_topology_delta(delta)
        from repro.graphs.dynamic import DynamicTopology

        tops = self._replica_tops
        for i, top in enumerate(tops):
            if not isinstance(top, DynamicTopology):
                tops[i] = DynamicTopology(top)
        # Keep the base-class node bookkeeping (masking, round tracker)
        # anchored on the primary replica's mutable view.
        self.topology = tops[0]
        applieds = [top.apply_delta(delta) for top in tops]
        if delta.join or delta.leave:
            self._rebuild_ensemble_arrays(applieds)
        else:
            # Edge-only: offsets unchanged — patch the block CSR rows.
            changed = {}
            for rep, top, a in zip(self._ensemble, tops, applieds):
                for v in a.touched:
                    changed[rep.offset + v] = [
                        u + rep.offset for u in top.inclusive_neighbors(v)
                    ]
                rep.m = top.m
            self._ensure_mutable_block_csr().patch(changed)
        self._reseed_ensemble_goodness()
        return applieds[0]

    def _ensure_mutable_block_csr(self):
        from repro.graphs.dynamic import MutableCSR

        if not isinstance(self._block_csr, MutableCSR):
            self._block_csr = MutableCSR(
                self._block_csr.indptr, self._block_csr.indices
            )
        return self._block_csr

    def _rebuild_ensemble_arrays(self, applieds) -> None:
        """Re-concatenate the fused arrays after a membership delta:
        joined lanes are appended at each replica's end (shifting every
        later replica's offset), left lanes stay as tombstones."""
        from repro.graphs.dynamic import MutableCSR

        encode = self._encoding.encode
        rest = encode(self.algorithm.initial_state())
        reps = self._ensemble
        tops = self._replica_tops
        code_parts: List[np.ndarray] = []
        left_parts: List[np.ndarray] = []
        indptr_parts: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
        index_parts: List[np.ndarray] = []
        offset = 0
        nnz = 0
        for rep, top, a in zip(reps, tops, applieds):
            codes = np.zeros(top.n, dtype=np.int64)
            codes[: rep.n] = self._flat[rep.offset : rep.offset + rep.n]
            for v in a.left:
                codes[v] = rest
            for v, state in a.joined:
                codes[v] = encode(state)
            code_parts.append(codes)
            left = np.zeros(top.n, dtype=bool)
            for v in top.left_nodes:
                left[v] = True
            left_parts.append(left)
            csr = top.inclusive_csr()
            indptr_parts.append(np.asarray(csr.indptr[1:]) + nnz)
            index_parts.append(np.asarray(csr.indices) + offset)
            rep.offset = offset
            rep.n = top.n
            rep.m = top.m
            rep.nodes = top.nodes
            rep.all_rows = np.arange(offset, offset + top.n, dtype=np.int64)
            rep.tracker.add_nodes(v for v, _ in a.joined)
            offset += top.n
            nnz += len(csr.indices)
        self._flat = np.concatenate(code_parts)
        self._left_flat = np.concatenate(left_parts)
        self._block_csr = MutableCSR(
            np.concatenate(indptr_parts), np.concatenate(index_parts)
        )
        self._rep_of_node = np.repeat(
            np.arange(len(reps), dtype=np.int64),
            np.fromiter((rep.n for rep in reps), dtype=np.int64, count=len(reps)),
        )
        self._in_diff_flat = np.zeros(offset, dtype=bool)
        self._new_code_flat = np.zeros(offset, dtype=np.int64)
        self._queue = np.zeros(offset, dtype=np.int64)

    def _reseed_ensemble_goodness(self) -> None:
        """Full goodness rescan per replica after a structural delta —
        the same counts the solo array lane lazily recomputes."""
        for rep, top in zip(self._ensemble, self._replica_tops):
            faulty, bad = self._goodness_counts(
                self._flat[rep.offset : rep.offset + rep.n], top.inclusive_csr()
            )
            self._faulty_counts[rep.index] = faulty
            self._bad_counts[rep.index] = bad

    # ------------------------------------------------------------------
    # Drive-mode guard.
    # ------------------------------------------------------------------

    def step(self) -> StepRecord:
        if self._ensemble is not None:
            raise ModelError(
                "multi-replica batches are driven with run_ensemble(); "
                "the single-step API only exists on the R = 1 engine "
                "(create_execution(engine='replica-batch'))"
            )
        return super().step()

    def advance(self, steps: int) -> None:
        if self._ensemble is not None:
            raise ModelError(
                "multi-replica batches are driven with run_ensemble(); "
                "the bulk-step API only exists on the R = 1 engine "
                "(create_execution(engine='replica-batch'))"
            )
        super().advance(steps)

    # ------------------------------------------------------------------
    # The fused ensemble loop.
    # ------------------------------------------------------------------

    def run_ensemble(
        self, max_rounds: int, max_steps: Optional[int] = None
    ) -> List[ReplicaOutcome]:
        """Drive every replica to stabilization or budget exhaustion.

        Per replica this is exactly
        ``run(max_rounds=max_rounds, until=graph_is_good)`` followed by
        the campaign's stabilization-round measurement: the goodness
        predicate is pre-checked before the first step, the round budget
        is checked before each step, the predicate after each step.
        ``max_steps`` additionally caps the per-replica step count
        (benchmark harnesses); replicas stopped by it count as not
        stabilized.  Returns one :class:`ReplicaOutcome` per replica in
        construction order.
        """
        if self._ensemble is None:
            raise ModelError(
                "run_ensemble() needs a multi-replica batch; build one "
                "with ReplicaBatchExecution.from_replicas"
            )
        reps = self._ensemble
        for rep in reps:
            if not rep.done and self._replica_good(rep):
                rep.finish(stabilized=True, rounds=0)  # pre-satisfied

        # Mode split.  Queue-mode replicas pre-draw whole rounds into
        # the shared queue buffer (global row ids), so the fused loop
        # gathers their activations with one array index per step; the
        # first round is drawn here — the same point of the rng stream
        # at which a solo run's first activations() call would draw it.
        call_reps: List[_Replica] = []
        queue_reps: List[_Replica] = []
        for rep in reps:
            if rep.done:
                continue
            order = rep.scheduler.round_activation_order(rep.nodes, rep.rng)
            if order is None:
                call_reps.append(rep)
            else:
                rep.queue_mode = True
                self._load_round(rep, order, 0)
                queue_reps.append(rep)

        # Parallel arrays over the live queue-mode replicas: the global
        # fused-step activation of replica i is queue[q_base[i] + t],
        # and its current round is exhausted when t reaches q_pos[i].
        def queue_arrays():
            count = len(queue_reps)
            base = np.fromiter(
                (rep.offset - rep.round_start for rep in queue_reps),
                dtype=np.int64,
                count=count,
            )
            pos = np.fromiter(
                (rep.round_start + rep.n for rep in queue_reps),
                dtype=np.int64,
                count=count,
            )
            return base, pos

        q_base, q_pos = queue_arrays()
        # Tombstone lanes (membership churn) are scheduled like every
        # other node but dropped from the fused pass — the solo engines'
        # masking semantics (RoundTracker still observes them).
        left_flat = self._left_flat
        left_any = bool(left_flat.any())
        t = 0
        while call_reps or queue_reps:
            if max_steps is not None and t >= max_steps:
                for rep in call_reps:
                    rep.finish(stabilized=False, rounds=rep.tracker.completed_rounds)
                for rep in queue_reps:
                    rep.t = t
                    rep.finish(stabilized=False, rounds=rep.completed)
                break

            # --- queue mode: budget checks and refills at round starts
            # (amortized — once per n steps per replica), then one fused
            # gather for every replica's activated lane. ---
            if queue_reps and t:
                exhausted = np.nonzero(q_pos == t)[0]
                if exhausted.size:
                    retired = False
                    for i in exhausted:
                        rep = queue_reps[i]
                        if rep.completed >= max_rounds:
                            rep.t = t
                            rep.finish(stabilized=False, rounds=rep.completed)
                            retired = True
                            continue
                        self._load_round(
                            rep,
                            rep.scheduler.round_activation_order(rep.nodes, rep.rng),
                            t,
                        )
                        q_base[i] = rep.offset - t
                        q_pos[i] = t + rep.n
                    if retired:
                        queue_reps = [rep for rep in queue_reps if not rep.done]
                        q_base, q_pos = queue_arrays()

            parts: List[np.ndarray] = []
            if queue_reps:
                parts.append(self._queue[q_base + t])

            # --- call mode: the generic per-step scheduler protocol. ---
            stepped: List[tuple] = []
            if call_reps:
                survivors = []
                for rep in call_reps:
                    if rep.tracker.completed_rounds >= max_rounds:
                        rep.finish(
                            stabilized=False, rounds=rep.tracker.completed_rounds
                        )
                        continue
                    activated = rep.scheduler.activations(rep.t, rep.nodes, rep.rng)
                    if len(activated) == rep.n:
                        parts.append(rep.all_rows)
                    else:
                        rows = np.fromiter(
                            activated, dtype=np.int64, count=len(activated)
                        )
                        rows += rep.offset
                        parts.append(rows)
                    stepped.append((rep, activated))
                    survivors.append(rep)
                call_reps = survivors

            if not parts:
                break
            rows = parts[0] if len(parts) == 1 else np.concatenate(parts)
            if left_any:
                rows = rows[~left_flat[rows]]
            changed_reps = self._ensemble_apply(rows) if rows.size else None
            t += 1

            # --- post-step bookkeeping: rounds first, then retirement.
            # Only replicas whose codes changed can newly satisfy the
            # predicate, so the check is O(changed replicas). ---
            for rep, activated in stepped:
                rep.tracker.observe(activated)
                rep.t = t
            if queue_reps:
                for i in np.nonzero(q_pos == t)[0]:
                    queue_reps[i].completed += 1
            if changed_reps is not None:
                faulty = self._faulty_counts
                bad = self._bad_counts
                retired = False
                for index in changed_reps:
                    rep = reps[index]
                    if rep.done or faulty[index] or bad[index]:
                        continue
                    if rep.queue_mode:
                        rep.t = t
                        rounds = rep.queue_stabilization_round()
                    else:
                        rounds = rep.stabilization_round()
                    rep.finish(stabilized=True, rounds=rounds)
                    retired = True
                if retired:
                    call_reps = [rep for rep in call_reps if not rep.done]
                    before = len(queue_reps)
                    queue_reps = [rep for rep in queue_reps if not rep.done]
                    if len(queue_reps) != before:
                        q_base, q_pos = queue_arrays()
        return [
            rep.outcome(moves=int(self._move_counts[rep.index])) for rep in reps
        ]

    def _load_round(self, rep: _Replica, order: Optional[np.ndarray], t: int) -> None:
        """Stage one pre-drawn round into the shared queue buffer as
        global row ids."""
        if order is None or len(order) != rep.n:
            raise ModelError(
                f"scheduler {rep.scheduler.name!r} returned an invalid "
                f"round_activation_order (need a permutation of the "
                f"{rep.n} nodes)"
            )
        self._queue[rep.offset : rep.offset + rep.n] = order
        self._queue[rep.offset : rep.offset + rep.n] += rep.offset
        rep.round_start = t

    def _replica_good(self, rep: _Replica) -> bool:
        return self._faulty_counts[rep.index] == 0 and self._bad_counts[rep.index] == 0

    def _ensemble_apply(self, rows: np.ndarray) -> Optional[np.ndarray]:
        """One fused step: evaluate δ for every activated lane of every
        live replica in a single batched kernel pass, write the moved
        lanes in place, and fold the per-replica goodness counts.
        Returns the indices of the replicas whose codes changed (the
        only candidates for retirement), or ``None`` when nothing
        moved."""
        codes = self._flat
        active = codes[rows]
        new = self._evaluate(codes, rows, self._block_csr)
        moved = new != active
        if not moved.any():
            return None
        diff = rows[moved]
        new_diff = new[moved]
        old_diff = active[moved]
        changed_reps = self._fold_goodness(diff, old_diff, new_diff)
        codes[diff] = new_diff
        return changed_reps

    def _fold_goodness(
        self, diff: np.ndarray, old_diff: np.ndarray, new_diff: np.ndarray
    ) -> np.ndarray:
        """Fold one fused change set into the per-replica ``(faulty,
        unprotected-pairs)`` count vectors — the replica-indexed variant
        of :meth:`ArrayExecution._update_goodness` (replica blocks are
        disjoint in the block CSR, so one shared
        :meth:`~repro.core.algau_vec.VectorKernel.pair_deltas` call
        covers every replica at once).  Must run before the codes are
        written.  Returns the sorted replica indices owning the change
        set."""
        k2 = self._kernel.num_clocks
        count = len(self._faulty_counts)
        owner = self._rep_of_node[diff]
        # Every diff lane is one move (a state-changing activation);
        # retired replicas are never activated, so their totals freeze
        # at the stabilizing step exactly like a solo run.
        self._move_counts += np.bincount(owner, minlength=count)
        faulty_delta = (new_diff >= k2).view(np.int8) - (old_diff >= k2).view(np.int8)
        if faulty_delta.any():
            self._faulty_counts += np.bincount(
                owner, weights=faulty_delta, minlength=count
            ).astype(np.int64)
        self._fold_pair_counts(diff, old_diff, new_diff, owner)
        return np.unique(owner)

    def _fold_pair_counts(
        self,
        diff: np.ndarray,
        old_diff: np.ndarray,
        new_diff: np.ndarray,
        owner: np.ndarray,
    ) -> None:
        """Fold the unprotected-pair deltas of one fused change set into
        ``self._bad_counts`` (``owner[i]`` is the replica of lane
        ``diff[i]``).  Reads pre-write codes; the native tier overrides
        it with a compiled owner-scattered fold."""
        _, counts, delta, col_changed = self._kernel.pair_deltas(
            self._flat,
            self._block_csr,
            diff,
            old_diff,
            new_diff,
            self._in_diff_flat,
            self._new_code_flat,
        )
        pair_owner = np.repeat(owner, counts)
        # Once per ordered pair whose row moved, plus the symmetric
        # reverse of pairs whose column did not move — weight 2 unless
        # the column itself moved (its own row iteration covers the
        # reverse), folded in one bincount.
        delta *= 2 - col_changed.view(np.int8)
        self._bad_counts += np.bincount(
            pair_owner, weights=delta, minlength=len(self._bad_counts)
        ).astype(np.int64)
