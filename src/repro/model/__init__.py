"""The stone age (SA) model substrate.

This package implements the computational model of Emek & Wattenhofer
(PODC 2013) in the simplified form used by the reproduced paper:
anonymous randomized finite state machines over set-broadcast signals,
driven by an adversarial asynchronous scheduler, with time measured by
the round operator ``ϱ``.
"""

from repro.model.adversary import GreedyAdversary, greedy_au_adversary
from repro.model.algorithm import (
    Algorithm,
    Distribution,
    TransitionResult,
    product_distribution,
)
from repro.model.configuration import Configuration
from repro.model.errors import (
    ConfigurationError,
    ExperimentError,
    ModelError,
    ReproError,
    ScheduleError,
    StabilizationError,
    TopologyError,
    UnknownEngineError,
)
from repro.model.array_engine import ArrayExecution, supports_array_engine
from repro.model.engine import ExecutionBase, create_execution
from repro.model.execution import Execution, Monitor, RunResult, StepRecord
from repro.model.rounds import RoundTracker
from repro.model.scheduler import (
    EnabledOnlyScheduler,
    ExplicitScheduler,
    LaggardScheduler,
    LocallyCentralScheduler,
    RandomSubsetScheduler,
    RotatingScheduler,
    RoundRobinScheduler,
    Scheduler,
    ShuffledRoundRobinScheduler,
    SynchronousScheduler,
    default_schedulers,
)
from repro.model.signal import Signal

__all__ = [
    "Algorithm",
    "ArrayExecution",
    "Configuration",
    "ConfigurationError",
    "Distribution",
    "EnabledOnlyScheduler",
    "Execution",
    "ExecutionBase",
    "ExplicitScheduler",
    "ExperimentError",
    "GreedyAdversary",
    "LaggardScheduler",
    "LocallyCentralScheduler",
    "ModelError",
    "Monitor",
    "RandomSubsetScheduler",
    "ReproError",
    "RotatingScheduler",
    "RoundRobinScheduler",
    "RoundTracker",
    "RunResult",
    "ScheduleError",
    "Scheduler",
    "ShuffledRoundRobinScheduler",
    "Signal",
    "StabilizationError",
    "StepRecord",
    "SynchronousScheduler",
    "TopologyError",
    "UnknownEngineError",
    "TransitionResult",
    "create_execution",
    "default_schedulers",
    "supports_array_engine",
    "greedy_au_adversary",
    "product_distribution",
]
