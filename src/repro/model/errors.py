"""Exception hierarchy for the stone age model substrate.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
that callers can catch library failures without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """An algorithm or execution violated the stone age model contract."""


class UnknownEngineError(ModelError, ValueError):
    """An unknown execution-engine name was requested.

    Doubles as a :class:`ValueError` so that callers validating user
    input (CLI flags, scenario specs) can catch it without importing the
    model error hierarchy.
    """


class ConfigurationError(ModelError):
    """A configuration is malformed (unknown node, illegal state, ...)."""


class ScheduleError(ModelError):
    """A scheduler produced an illegal activation set."""


class TopologyError(ReproError):
    """A graph is unusable (disconnected, empty, diameter bound violated)."""


class StabilizationError(ReproError):
    """An execution failed to stabilize within the allotted budget."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""
