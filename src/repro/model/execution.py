"""The object-model execution engine (the readable reference).

An :class:`Execution` advances a configuration step by step: at step
``t`` the scheduler picks the activation set ``A_t``; every activated
node applies the transition function to its state and its signal (both
evaluated under the *pre-step* configuration ``C_t``, which realizes the
model's simultaneous-update semantics); non-activated nodes keep their
state.  The engine maintains the paper's round operator bookkeeping and
invokes registered monitors after every step.

Interventions (fault injection) run *before* a step and may replace the
configuration — this is how transient faults are modelled: an arbitrary
corruption of node states at an arbitrary time.

The driver loop, monitor and intervention plumbing live in
:class:`~repro.model.engine.ExecutionBase`, which this engine shares
with the vectorized
:class:`~repro.model.array_engine.ArrayExecution`; ``StepRecord``,
``RunResult``, ``Monitor`` and ``Intervention`` are re-exported here
for backwards compatibility.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Generic, List, Tuple, TypeVar

from repro.model.configuration import Configuration
from repro.model.engine import (
    ExecutionBase,
    Intervention,
    Monitor,
    RunResult,
    StepRecord,
)

__all__ = [
    "Execution",
    "Intervention",
    "Monitor",
    "RunResult",
    "StepRecord",
]

Q = TypeVar("Q")


class Execution(ExecutionBase[Q], Generic[Q]):
    """Object-model engine: per-node signals, one ``resolve`` per
    activated node.  Works for every :class:`~repro.model.algorithm.Algorithm`
    (including the randomized ones)."""

    # ------------------------------------------------------------------
    # Engine hooks.
    # ------------------------------------------------------------------

    def _load_configuration(self, configuration: Configuration) -> None:
        self._configuration = configuration

    @property
    def configuration(self) -> Configuration:
        """The current configuration ``C_t``."""
        return self._configuration

    def state_of(self, v: int) -> Q:
        return self._configuration[v]

    def _apply(self, activated: FrozenSet[int]) -> Tuple[Tuple[int, Q, Q], ...]:
        config = self._configuration
        updates: Dict[int, Q] = {}
        changed: List[Tuple[int, Q, Q]] = []
        for v in activated:
            old = config[v]
            new = self.algorithm.resolve(old, config.signal(v), self.rng)
            if new != old:
                updates[v] = new
                changed.append((v, old, new))
        if updates:
            self._configuration = config.replace(updates)
        return tuple(changed)
