"""The stone age execution engine.

An :class:`Execution` advances a configuration step by step: at step
``t`` the scheduler picks the activation set ``A_t``; every activated
node applies the transition function to its state and its signal (both
evaluated under the *pre-step* configuration ``C_t``, which realizes the
model's simultaneous-update semantics); non-activated nodes keep their
state.  The engine maintains the paper's round operator bookkeeping and
invokes registered monitors after every step.

Interventions (fault injection) run *before* a step and may replace the
configuration — this is how transient faults are modelled: an arbitrary
corruption of node states at an arbitrary time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Generic, List, Optional, Tuple, TypeVar

import numpy as np

from repro.graphs.topology import Topology
from repro.model.algorithm import Algorithm
from repro.model.configuration import Configuration
from repro.model.errors import ModelError
from repro.model.rounds import RoundTracker
from repro.model.scheduler import Scheduler

Q = TypeVar("Q")


@dataclass(frozen=True)
class StepRecord(Generic[Q]):
    """What happened during one step."""

    t: int
    activated: FrozenSet[int]
    changed: Tuple[Tuple[int, Q, Q], ...]  # (node, old_state, new_state)
    completed_round: bool


@dataclass
class RunResult:
    """Summary of a bounded run."""

    steps: int
    rounds: int
    stopped_by_predicate: bool
    reason: str = ""


class Monitor:
    """Observer hook; subclasses override the callbacks they need."""

    def on_start(self, execution: "Execution") -> None:
        """Called once before the first step."""

    def on_step(self, execution: "Execution", record: StepRecord) -> None:
        """Called after every step with the step's record."""


Intervention = Callable[["Execution"], Optional[Configuration]]


class Execution(Generic[Q]):
    """Drives one algorithm over one topology under one scheduler."""

    def __init__(
        self,
        topology: Topology,
        algorithm: Algorithm,
        initial_configuration: Configuration,
        scheduler: Scheduler,
        rng: Optional[np.random.Generator] = None,
        monitors: Tuple[Monitor, ...] = (),
        intervention: Optional[Intervention] = None,
    ):
        if initial_configuration.topology is not topology:
            raise ModelError(
                "initial configuration belongs to a different topology"
            )
        self.topology = topology
        self.algorithm = algorithm
        self.scheduler = scheduler
        self.rng = rng if rng is not None else np.random.default_rng()
        self.monitors: Tuple[Monitor, ...] = tuple(monitors)
        self.intervention = intervention
        self._configuration = initial_configuration
        self._t = 0
        self._rounds = RoundTracker(topology.nodes)
        self._started = False

    # ------------------------------------------------------------------
    # State inspection.
    # ------------------------------------------------------------------

    @property
    def t(self) -> int:
        """The current time (number of steps taken)."""
        return self._t

    @property
    def configuration(self) -> Configuration:
        """The current configuration ``C_t``."""
        return self._configuration

    @property
    def rounds(self) -> RoundTracker:
        """Round bookkeeping (``R(i)`` boundaries)."""
        return self._rounds

    @property
    def completed_rounds(self) -> int:
        return self._rounds.completed_rounds

    def state_of(self, v: int) -> Q:
        return self._configuration[v]

    def replace_configuration(self, configuration: Configuration) -> None:
        """Replace the current configuration in place.

        This is the transient-fault entry point: the adversary corrupts
        node states between steps.  The topology must be unchanged.
        """
        if configuration.topology is not self.topology:
            raise ModelError("replacement configuration changed the topology")
        self._configuration = configuration

    # ------------------------------------------------------------------
    # Stepping.
    # ------------------------------------------------------------------

    def _notify_start(self) -> None:
        if not self._started:
            self._started = True
            for monitor in self.monitors:
                monitor.on_start(self)

    def step(self) -> StepRecord:
        """Advance the execution by one step and return its record."""
        self._notify_start()
        if self.intervention is not None:
            replacement = self.intervention(self)
            if replacement is not None:
                if replacement.topology is not self.topology:
                    raise ModelError("intervention changed the topology")
                self._configuration = replacement

        activated = self.scheduler.activations(
            self._t, self.topology.nodes, self.rng
        )
        config = self._configuration
        updates: Dict[int, Q] = {}
        changed: List[Tuple[int, Q, Q]] = []
        for v in activated:
            old = config[v]
            new = self.algorithm.resolve(old, config.signal(v), self.rng)
            if new != old:
                updates[v] = new
                changed.append((v, old, new))
        if updates:
            self._configuration = config.replace(updates)
        completed_round = self._rounds.observe(activated)
        record = StepRecord(
            t=self._t,
            activated=activated,
            changed=tuple(changed),
            completed_round=completed_round,
        )
        self._t += 1
        for monitor in self.monitors:
            monitor.on_step(self, record)
        return record

    def run(
        self,
        max_steps: Optional[int] = None,
        max_rounds: Optional[int] = None,
        until: Optional[Callable[["Execution"], bool]] = None,
        check_until_each_step: bool = True,
    ) -> RunResult:
        """Run until a stop condition triggers.

        ``until`` is evaluated on the execution (after each step, or
        after each completed round if ``check_until_each_step`` is
        false).  At least one of the bounds must be supplied so that runs
        terminate.
        """
        if max_steps is None and max_rounds is None:
            raise ModelError("run() needs max_steps and/or max_rounds")
        self._notify_start()
        if until is not None and until(self):
            return RunResult(0, self.completed_rounds, True, "pre-satisfied")
        steps = 0
        while True:
            if max_steps is not None and steps >= max_steps:
                return RunResult(steps, self.completed_rounds, False, "max_steps")
            if max_rounds is not None and self.completed_rounds >= max_rounds:
                return RunResult(steps, self.completed_rounds, False, "max_rounds")
            record = self.step()
            steps += 1
            if until is not None and (
                check_until_each_step or record.completed_round
            ):
                if until(self):
                    return RunResult(
                        steps, self.completed_rounds, True, "predicate"
                    )

    def run_rounds(self, rounds: int) -> RunResult:
        """Run exactly ``rounds`` additional rounds."""
        target = self.completed_rounds + rounds
        return self.run(max_rounds=target, max_steps=None)

    def __repr__(self) -> str:
        return (
            f"<Execution alg={self.algorithm.name!r} "
            f"graph={self.topology.name!r} t={self._t} "
            f"rounds={self.completed_rounds}>"
        )
