"""The object-model execution engine (the readable reference).

An :class:`Execution` advances a configuration step by step: at step
``t`` the scheduler picks the activation set ``A_t``; every activated
node applies the transition function to its state and its signal (both
evaluated under the *pre-step* configuration ``C_t``, which realizes the
model's simultaneous-update semantics); non-activated nodes keep their
state.  The engine maintains the paper's round operator bookkeeping and
invokes registered monitors after every step.

Interventions (fault injection) run *before* a step and may replace the
configuration — this is how transient faults are modelled: an arbitrary
corruption of node states at an arbitrary time.

For deterministic algorithms the engine runs the incremental step
pipeline of :class:`~repro.model.engine.ExecutionBase`: a per-node
pending-action cache guarded by a dirty set, with signals built from
the cached CSR neighborhoods (:mod:`repro.graphs.csr`) the vectorized
backend shares — one adjacency representation for both engines.
Randomized algorithms (whose ``resolve`` tosses a coin per activation)
always take the naive recompute path, so their rng streams are
untouched; ``incremental=False`` forces the naive path for
deterministic algorithms too (the differential reference).

The driver loop, monitor and intervention plumbing live in
:class:`~repro.model.engine.ExecutionBase`, which this engine shares
with the vectorized
:class:`~repro.model.array_engine.ArrayExecution`; ``StepRecord``,
``RunResult``, ``Monitor`` and ``Intervention`` are re-exported here
for backwards compatibility.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Generic, List, Mapping, Optional, Tuple, TypeVar

import numpy as np

from repro.model.configuration import Configuration
from repro.model.engine import (
    ExecutionBase,
    Intervention,
    Monitor,
    RunResult,
    StepRecord,
)
from repro.model.scheduler import Scheduler
from repro.model.signal import Signal

__all__ = [
    "Execution",
    "Intervention",
    "Monitor",
    "RunResult",
    "StepRecord",
]

Q = TypeVar("Q")


class Execution(ExecutionBase[Q], Generic[Q]):
    """Object-model engine: per-node signals, one ``resolve`` per
    activated node.  Works for every :class:`~repro.model.algorithm.Algorithm`
    (including the randomized ones)."""

    def __init__(
        self,
        topology,
        algorithm,
        initial_configuration: Configuration,
        scheduler: Scheduler,
        rng: Optional[np.random.Generator] = None,
        monitors: Tuple[Monitor, ...] = (),
        intervention: Optional[Intervention] = None,
        incremental: bool = True,
        track_enabled: bool = False,
    ):
        # The shared adjacency representation: the same cached
        # CSRAdjacency instance the array engine scatters over, viewed
        # as Python lists for per-node iteration.
        self._hoods = topology.inclusive_csr().neighbor_lists()
        # The pending-action cache is only sound when replaying a
        # cached action skips no coin toss.
        self._use_cache = bool(incremental) and getattr(
            algorithm, "deterministic", False
        )
        from repro.core.algau import ThinUnison

        self._track_goodness = self._use_cache and isinstance(algorithm, ThinUnison)
        super().__init__(
            topology,
            algorithm,
            initial_configuration,
            scheduler,
            rng=rng,
            monitors=monitors,
            intervention=intervention,
            incremental=incremental,
            track_enabled=track_enabled,
        )

    # ------------------------------------------------------------------
    # Engine hooks.
    # ------------------------------------------------------------------

    def _load_configuration(self, configuration: Configuration) -> None:
        self._configuration = configuration
        # Everything is dirty after a wholesale state replacement.
        self._dirty = set(self.topology.nodes)
        self._pending: List[Optional[Q]] = [None] * self.topology.n
        self._enabled: set = set()
        self._goodness: Optional[Tuple[int, int]] = None

    @property
    def configuration(self) -> Configuration:
        """The current configuration ``C_t``."""
        return self._configuration

    def state_of(self, v: int) -> Q:
        return self._configuration[v]

    def _signal(self, v: int, states: Tuple[Q, ...]) -> Signal[Q]:
        """The signal of ``v``, gathered over the shared CSR
        neighborhood (no per-configuration memo machinery)."""
        return Signal(states[u] for u in self._hoods[v])

    def _apply(self, activated: FrozenSet[int]) -> Tuple[Tuple[int, Q, Q], ...]:
        config = self._configuration
        updates: Dict[int, Q] = {}
        changed: List[Tuple[int, Q, Q]] = []
        if self._use_cache:
            states = config.states()
            dirty = self._dirty
            pending = self._pending
            enabled = self._enabled
            resolve = self.algorithm.resolve  # deterministic: rng unused
            for v in activated:
                old = states[v]
                if v in dirty:
                    new = resolve(old, self._signal(v, states), self.rng)
                    pending[v] = new
                    dirty.discard(v)
                    if new != old:
                        enabled.add(v)
                    else:
                        enabled.discard(v)
                else:
                    new = pending[v]
                if new != old:
                    updates[v] = new
                    changed.append((v, old, new))
        else:
            for v in activated:
                old = config[v]
                new = self.algorithm.resolve(old, config.signal(v), self.rng)
                if new != old:
                    updates[v] = new
                    changed.append((v, old, new))
        if updates:
            self._configuration = config.replace(updates)
            if self._use_cache:
                self._mark_dirty(updates)
                self._update_goodness(changed, config)
        return tuple(changed)

    # ------------------------------------------------------------------
    # Dirty-set maintenance.
    # ------------------------------------------------------------------

    def _mark_dirty(self, moved: Mapping[int, Q]) -> None:
        """Re-dirty the closed neighborhoods of every moved node (their
        neighbors' signals — and their own — just changed)."""
        dirty = self._dirty
        enabled = self._enabled
        hoods = self._hoods
        for v in moved:
            for u in hoods[v]:
                dirty.add(u)
                enabled.discard(u)

    def _refresh_pending(self) -> None:
        config = self._configuration
        states = config.states()
        enabled = self._enabled
        if self._use_cache:
            dirty = self._dirty
            if not dirty:
                return
            pending = self._pending
            resolve = self.algorithm.resolve
            for v in dirty:
                new = resolve(states[v], self._signal(v, states), self.rng)
                pending[v] = new
                if new != states[v]:
                    enabled.add(v)
                else:
                    enabled.discard(v)
            dirty.clear()
        else:
            # No cache to lean on (randomized algorithm or naive mode):
            # evaluate the support of δ for every node on each query.
            support = self.algorithm.support
            enabled.clear()
            for v in self.topology.nodes:
                state = states[v]
                if support(state, self._signal(v, states)) != frozenset((state,)):
                    enabled.add(v)

    def _enabled_snapshot(self) -> FrozenSet[int]:
        return frozenset(self._enabled)

    # ------------------------------------------------------------------
    # Sparse state overwrites (permanent faults).
    # ------------------------------------------------------------------

    def poke_states(self, updates: Mapping[int, Q]) -> None:
        """Sparse overwrite that re-dirties only the poked
        neighborhoods instead of invalidating the whole pipeline."""
        if not updates:
            return
        config = self._configuration
        self._configuration = config.replace(updates)  # validates node ids
        self._state_epoch += 1
        changed = [
            (int(v), config[int(v)], state)
            for v, state in updates.items()
            if config[int(v)] != state
        ]
        if not changed:
            return
        if self._use_cache:
            self._mark_dirty({v: new for v, _, new in changed})
            self._update_goodness(changed, config)
        else:
            self._goodness = None

    # ------------------------------------------------------------------
    # Dynamic topology.
    # ------------------------------------------------------------------

    def _ensure_dynamic_topology(self):
        """Convert the (possibly shared) frozen topology into a private
        :class:`~repro.graphs.dynamic.DynamicTopology` on first
        mutation; the neighbor-list view then aliases the dynamic rows,
        so subsequent deltas patch it in place."""
        from repro.graphs.dynamic import DynamicTopology

        top = self.topology
        if not isinstance(top, DynamicTopology):
            top = DynamicTopology(top)
            self.topology = top
            self._hoods = top.inclusive_csr().neighbor_lists()
        return top

    def _apply_topology_delta(self, delta):
        dyn = self._ensure_dynamic_topology()
        states = list(self._configuration.states())
        applied = dyn.apply_delta(delta)
        if applied.left:
            rest = self.algorithm.initial_state()
            for v in applied.left:
                states[v] = rest
        for _, state in applied.joined:
            states.append(state)
        self._configuration = Configuration._from_state_tuple(dyn, tuple(states))
        n = dyn.n
        if len(self._pending) < n:
            self._pending.extend([None] * (n - len(self._pending)))
        # Fold the delta into the dirty set: exactly the rows whose
        # inclusive neighborhood (or state) changed, not the whole
        # pipeline.
        dirtied = set(applied.touched)
        dirtied.update(applied.left)
        dirtied.update(v for v, _ in applied.joined)
        self._dirty.update(dirtied)
        self._enabled.difference_update(dirtied)
        self._goodness = None  # lazily recounted on the mutated graph
        return applied

    # ------------------------------------------------------------------
    # Incremental AlgAU goodness accounting.
    # ------------------------------------------------------------------

    def _update_goodness(
        self,
        changed: List[Tuple[int, Q, Q]],
        old_config: Configuration,
    ) -> None:
        """Fold one step's change set into the cached ``(faulty nodes,
        unprotected ordered pairs)`` counts — O(deg(changed)), replacing
        the full-configuration goodness scan."""
        if not self._track_goodness or self._goodness is None or not changed:
            return
        n_faulty, bad = self._goodness
        adjacent = self.algorithm.levels.adjacent
        new_of = {v: new for v, _, new in changed}
        hoods = self._hoods
        for v, old, new in changed:
            n_faulty += int(new.faulty) - int(old.faulty)
            old_level = old.level
            new_level = new.level
            for u in hoods[v]:
                if u == v:
                    continue
                u_old = old_config[u]
                u_new = new_of.get(u)
                u_new_level = u_old.level if u_new is None else u_new.level
                was_bad = int(not adjacent(old_level, u_old.level))
                now_bad = int(not adjacent(new_level, u_new_level))
                delta = now_bad - was_bad
                bad += delta
                if u_new is None:
                    # The reverse ordered pair (u, v) is not iterated by
                    # any other changed node; protection is symmetric.
                    bad += delta
        self._goodness = (n_faulty, bad)

    def graph_is_good(self) -> bool:
        """The AlgAU stabilization predicate, answered from the
        incrementally maintained goodness counts when the pipeline is
        active (O(1) amortized instead of an O(n + m) scan)."""
        if not self._track_goodness:
            return super().graph_is_good()
        if self._goodness is None:
            config = self._configuration
            adjacent = self.algorithm.levels.adjacent
            n_faulty = sum(1 for q in config.states() if q.faulty)
            bad = 2 * sum(
                1
                for u, v in self.topology.edges
                if not adjacent(config[u].level, config[v].level)
            )
            self._goodness = (n_faulty, bad)
        return self._goodness == (0, 0)
