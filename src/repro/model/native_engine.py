"""The compiled-kernel execution tier (``engine="native"``).

:class:`NativeExecution` is :class:`~repro.model.array_engine.ArrayExecution`
with its three kernel seams rerouted to the compiled CSR-walking kernels
of :mod:`repro.core.algau_native`:

* :meth:`~repro.model.array_engine.ArrayExecution._evaluate` — batched δ
  without the ``(rows, |Q|)`` presence matrix (O(n + m) memory);
* :meth:`~repro.model.array_engine.ArrayExecution._pair_fold` /
  :meth:`~repro.model.replica_engine.ReplicaBatchExecution._fold_pair_counts`
  — the incremental goodness folds;
* :meth:`~repro.model.array_engine.ArrayExecution._goodness_counts` —
  the full-scan seed.

Everything else — the dirty-set pipeline, schedulers, monitors, masks,
pokes, the enabled view — is inherited unchanged, so trajectories are
bit-identical to the array engine (the differential suite checks this
across graph × scheduler × fault combinations).
:class:`NativeReplicaBatchExecution` applies the same reroute to the
block-diagonal CSR of the replica-batched ensemble engine, so Monte
Carlo campaigns ride the compiled tier through the same seams.

Backend availability is resolved once per process by
:func:`repro.core.algau_native.native_backend` (numba if installed,
else a lazily ``cc``-compiled C library); when neither exists,
:func:`native_execution_class` warns and falls back to the numpy tier,
so ``engine="native"`` degrades gracefully instead of failing.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.algau_native import NativeKernel, native_backend
from repro.model.array_engine import ArrayExecution
from repro.model.replica_engine import ReplicaBatchExecution


class _NativeKernelMixin:
    """Reroutes the array-tier kernel seams to a :class:`NativeKernel`.

    Must precede the engine base class in the MRO; the engine's
    ``__init__`` builds the numpy :class:`VectorKernel` first (its
    lookup tables are the source the native tables are extracted from),
    then this mixin wraps it.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._native = NativeKernel(self._kernel)

    def _evaluate(self, codes, rows, csr) -> np.ndarray:
        return self._native.delta_rows(codes, csr, rows)

    def _goodness_counts(self, codes, csr):
        return self._native.goodness_counts(codes, csr)

    def _pair_fold(self, diff, old_diff, new_diff) -> int:
        return self._native.fold_pair_delta(
            self._codes,
            self._csr,
            diff,
            old_diff,
            new_diff,
            self._in_diff,
            self._new_code_of,
        )


class NativeExecution(_NativeKernelMixin, ArrayExecution):
    """The array engine on compiled CSR-walking kernels."""


class NativeReplicaBatchExecution(_NativeKernelMixin, ReplicaBatchExecution):
    """The replica-batched ensemble engine on compiled kernels."""

    def _fold_pair_counts(self, diff, old_diff, new_diff, owner) -> None:
        # The compiled fold scatters by the per-node owner table
        # directly, so the per-lane ``owner`` gather is not needed.
        self._native.fold_pair_delta_by_owner(
            self._flat,
            self._block_csr,
            diff,
            old_diff,
            new_diff,
            self._in_diff_flat,
            self._new_code_flat,
            self._rep_of_node,
            self._bad_counts,
        )


def native_execution_class() -> type:
    """The class behind ``engine="native"``: :class:`NativeExecution`
    when a compiled backend is available, else
    :class:`~repro.model.array_engine.ArrayExecution` with a warning."""
    if native_backend() is None:
        warnings.warn(
            "the native engine tier is unavailable (numba is not "
            "installed and no C compiler was found); falling back to "
            "the numpy array engine — install the 'native' extra "
            "(pip install .[native]) for compiled kernels",
            RuntimeWarning,
            stacklevel=2,
        )
        return ArrayExecution
    return NativeExecution


def replica_batch_execution_class(engine: str) -> type:
    """The replica-batch class matching ``engine`` — the ensemble-lane
    counterpart of :func:`~repro.model.engine.engine_class`, used by the
    campaign runner to keep batched scenarios on the engine their spec
    names.  ``native`` degrades to the numpy ensemble engine exactly
    like :func:`native_execution_class` does."""
    if engine == "native":
        if native_backend() is None:
            warnings.warn(
                "the native engine tier is unavailable (numba is not "
                "installed and no C compiler was found); replica batches "
                "fall back to the numpy ensemble engine",
                RuntimeWarning,
                stacklevel=2,
            )
            return ReplicaBatchExecution
        return NativeReplicaBatchExecution
    return ReplicaBatchExecution
