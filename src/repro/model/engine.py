"""The execution-engine contract shared by both backends.

The repository ships two execution engines over one contract:

* :class:`~repro.model.execution.Execution` — the readable *object
  model* reference: per-node ``Signal`` frozensets, one
  ``Algorithm.resolve`` call per activated node;
* :class:`~repro.model.array_engine.ArrayExecution` — the vectorized
  *array model*: dense turn codes, CSR neighborhoods and the batched
  Table 1 kernel of :mod:`repro.core.algau_vec`.

:class:`ExecutionBase` holds everything the two engines share — the
scheduler/round bookkeeping, monitor notifications, intervention
(transient fault) handling, and the ``run``/``run_rounds`` driver loop —
so the engines differ only in how one step's state updates are computed
(:meth:`ExecutionBase._apply`) and how the current configuration is
stored (:meth:`ExecutionBase._load_configuration`).  Both produce the
same :class:`StepRecord` stream for the same seeds, which the
differential test suite verifies step for step.

The incremental step pipeline
-----------------------------
A node's move depends only on its closed neighborhood (the model's set
broadcast), so each engine maintains, across steps, a **dirty set** of
nodes whose closed neighborhood changed since their action was last
evaluated, plus a per-node **cached pending action**.  The invariant:

    for every *clean* (non-dirty) node ``v``, the cached pending action
    equals ``δ(C_t(v), S_v(C_t))`` under the current configuration.

``_apply`` therefore recomputes ``δ`` only for ``activated ∩ dirty``,
reuses the cache for the rest, and — whenever a node's state actually
changes — re-dirties its closed neighborhood.  Anything that mutates
state outside the pipeline (interventions replacing the configuration,
:meth:`poke_states`, :meth:`replace_configuration`) conservatively
re-dirties the affected neighborhoods, so the pipeline composes with
transient faults, permanent-fault adversaries and dynamic-topology
rewires.  Trajectories are bit-identical to the naive full-recompute
reference (``incremental=False`` rebuilds the pre-pipeline behavior,
which the differential suite checks against).

On top of the maintained cache the engines expose an **enabled-set
view**: a node is *enabled* when ``δ`` can move it out of its current
state.  The δ re-evaluation behind
:meth:`ExecutionBase.enabled_nodes` /
:meth:`ExecutionBase.enabled_count` / :meth:`ExecutionBase.is_quiescent`
is proportional to the dirty set (O(activity) amortized, not O(n)),
and the count/quiescence queries stay that cheap end to end
(materializing the set itself costs O(enabled));
``track_enabled=True`` stamps the post-step enabled count
into every :class:`StepRecord`, and enabled-aware daemons (schedulers
with ``uses_enabled_view``) receive the view each step through
:meth:`~repro.model.scheduler.Scheduler.select`.

Use :func:`create_execution` to pick an engine by name
(``engine="object" | "array"``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Generic,
    Iterable,
    Mapping,
    Optional,
    Tuple,
    TypeVar,
)

import numpy as np

from repro.graphs.topology import Topology
from repro.model.algorithm import Algorithm
from repro.model.configuration import Configuration
from repro.model.errors import ModelError, UnknownEngineError
from repro.model.rounds import RoundTracker
from repro.model.scheduler import Scheduler

Q = TypeVar("Q")


@dataclass(frozen=True)
class StepRecord(Generic[Q]):
    """What happened during one step."""

    t: int
    activated: FrozenSet[int]
    changed: Tuple[Tuple[int, Q, Q], ...]  # (node, old_state, new_state)
    completed_round: bool
    #: Post-step enabled count (nodes whose ``δ`` would move them),
    #: stamped only when the execution was built with
    #: ``track_enabled=True``; ``None`` otherwise.
    enabled: Optional[int] = None


@dataclass
class RunResult:
    """Summary of a bounded run."""

    steps: int
    rounds: int
    stopped_by_predicate: bool
    reason: str = ""


class Monitor:
    """Observer hook; subclasses override the callbacks they need."""

    def on_start(self, execution: "ExecutionBase") -> None:
        """Called once before the first step."""

    def on_step(self, execution: "ExecutionBase", record: StepRecord) -> None:
        """Called after every step with the step's record."""


Intervention = Callable[["ExecutionBase"], Optional[Configuration]]


class ExecutionBase(ABC, Generic[Q]):
    """Drives one algorithm over one topology under one scheduler."""

    def __init__(
        self,
        topology: Topology,
        algorithm: Algorithm,
        initial_configuration: Configuration,
        scheduler: Scheduler,
        rng: Optional[np.random.Generator] = None,
        monitors: Tuple[Monitor, ...] = (),
        intervention: Optional[Intervention] = None,
        incremental: bool = True,
        track_enabled: bool = False,
    ):
        if initial_configuration.topology is not topology:
            raise ModelError("initial configuration belongs to a different topology")
        self.topology = topology
        self.algorithm = algorithm
        self.scheduler = scheduler
        self.rng = rng if rng is not None else np.random.default_rng()
        self.monitors: Tuple[Monitor, ...] = tuple(monitors)
        self.intervention = intervention
        #: ``False`` selects the naive full-recompute reference path —
        #: the pre-pipeline behavior the differential suite and the
        #: sparse-activation benchmark compare against.
        self.incremental = bool(incremental)
        self._track_enabled = bool(track_enabled)
        self._t = 0
        #: Scheduler time base: schedulers see ``t - _sched_t0``, so a
        #: :meth:`reset_schedule` restarts their time axis (round-robin
        #: position, subset phase) exactly like a fresh execution while
        #: ``t`` itself keeps counting total work.
        self._sched_t0 = 0
        self._rounds = RoundTracker(topology.nodes)
        self._started = False
        #: When False, ``_apply`` implementations may skip building the
        #: per-change ``(node, old, new)`` tuples — the bulk
        #: :meth:`advance` fast path, where no ``StepRecord`` consumes
        #: them.  State updates themselves are unaffected.
        self._record_changes = True
        self._masked: FrozenSet[int] = frozenset()
        self._state_epoch = 0
        self._topology_version = 0
        self._load_configuration(initial_configuration)
        scheduler.bind(self)

    # ------------------------------------------------------------------
    # Engine-specific hooks.
    # ------------------------------------------------------------------

    @abstractmethod
    def _load_configuration(self, configuration: Configuration) -> None:
        """Adopt ``configuration`` as the current state (topology is
        already validated)."""

    @abstractmethod
    def _apply(self, activated: FrozenSet[int]) -> Tuple[Tuple[int, Q, Q], ...]:
        """Apply one simultaneous-update step for ``activated`` under
        the pre-step configuration and return the change tuples."""

    @property
    @abstractmethod
    def configuration(self) -> Configuration:
        """The current configuration ``C_t``."""

    @abstractmethod
    def _refresh_pending(self) -> None:
        """Re-evaluate ``δ`` for every dirty node so the pending-action
        cache (and with it the enabled view) is exact; amortized
        O(dirty), not O(n)."""

    @abstractmethod
    def _enabled_snapshot(self) -> FrozenSet[int]:
        """The enabled nodes under the current configuration, assuming
        :meth:`_refresh_pending` just ran (mask-agnostic)."""

    # ------------------------------------------------------------------
    # The enabled-set view (O(activity)-amortized quiescence).
    # ------------------------------------------------------------------

    def enabled_nodes(self) -> FrozenSet[int]:
        """Nodes whose ``δ`` would move them out of their current state
        (for randomized algorithms: with positive probability), masked
        nodes excluded — they cannot move by definition.

        Backed by the incrementally maintained pending-action cache:
        only nodes whose closed neighborhood changed since their last
        evaluation are re-evaluated — the δ work is O(recent activity),
        not O(n).  Materializing the *set* additionally costs
        O(enabled) (plus, on the array engine, one vectorized mask
        scan); callers that only need the count or the quiescence bit
        should prefer :meth:`enabled_count` / :meth:`is_quiescent`,
        which stay O(dirty) amortized.
        """
        self._refresh_pending()
        view = self._enabled_snapshot()
        return view - self._masked if self._masked else view

    def enabled_count(self) -> int:
        """``len(enabled_nodes())`` (engines may answer without
        materializing the set)."""
        return len(self.enabled_nodes())

    def is_quiescent(self) -> bool:
        """Whether no (unmasked) node is enabled — no fair schedule can
        change the configuration ever again.  For terminating tasks
        (LE/MIS) this is exactly output stabilization; AlgAU never
        quiesces (a good graph keeps pulsing), so this stays ``False``
        on live unison executions."""
        return self.enabled_count() == 0

    # ------------------------------------------------------------------
    # State inspection.
    # ------------------------------------------------------------------

    @property
    def t(self) -> int:
        """The current time (number of steps taken)."""
        return self._t

    @property
    def rounds(self) -> RoundTracker:
        """Round bookkeeping (``R(i)`` boundaries)."""
        return self._rounds

    @property
    def state_epoch(self) -> int:
        """Counts *out-of-band* state mutations: intervention
        replacements, :meth:`replace_configuration` and
        :meth:`poke_states`.  Incremental monitors that fold state
        forward from ``StepRecord.changed`` (which only covers
        ``_apply``'s updates) compare this counter to know when a full
        re-snapshot is needed."""
        return self._state_epoch

    @property
    def completed_rounds(self) -> int:
        """Fully completed asynchronous rounds so far."""
        return self._rounds.completed_rounds

    def state_of(self, v: int) -> Q:
        """The current state of node ``v``."""
        return self.configuration[v]

    def replace_configuration(self, configuration: Configuration) -> None:
        """Replace the current configuration in place.

        This is the transient-fault entry point: the adversary corrupts
        node states between steps.  The topology must be unchanged.
        """
        if configuration.topology is not self.topology:
            raise ModelError("replacement configuration changed the topology")
        self._state_epoch += 1
        self._load_configuration(configuration)

    def poke_states(self, updates: Mapping[int, Q]) -> None:
        """Overwrite the states of a few nodes in place.

        This is the *permanent-fault* entry point: a Byzantine adversary
        rewrites the states of its faulty nodes before a step, leaving
        every other node's state (and, on the object engine, its
        memoized signals) untouched.  Engines may override this with a
        sparse implementation that avoids rebuilding the configuration —
        the vectorized backend writes the affected code lanes directly.
        """
        if not updates:
            return
        self._state_epoch += 1
        self._load_configuration(self.configuration.replace(updates))

    # ------------------------------------------------------------------
    # Dynamic topology.
    # ------------------------------------------------------------------

    @property
    def topology_version(self) -> int:
        """Counts applied topology deltas (0 = as constructed).
        Consumers that cache anything derived from the structure —
        neighbor lists, CSR views, per-node layouts — compare this
        counter the way state-folding monitors compare
        :attr:`state_epoch`."""
        return self._topology_version

    def mutate_topology(self, delta) -> "object":
        """Apply a :class:`~repro.graphs.dynamic.TopologyDelta` to the
        running execution, between steps.

        The engine converts its (possibly shared) topology into a
        private :class:`~repro.graphs.dynamic.DynamicTopology` on first
        mutation, applies the delta incrementally in the canonical
        order (removals → leaves → joins → additions), and folds the
        change into its step pipeline: touched rows re-enter the dirty
        set, joined nodes appear as fresh lanes carrying the delta's
        arbitrary state, and left nodes are tombstoned — reset to the
        algorithm's designated initial state, stripped of edges, and
        masked like a crash (ids are never renumbered, so dense code
        vectors and round bookkeeping stay valid).  Returns the
        resolved :class:`~repro.graphs.dynamic.AppliedDelta`.
        """
        from repro.graphs.dynamic import AppliedDelta

        if delta.is_empty:
            return AppliedDelta((), (), (), (), ())
        applied = self._apply_topology_delta(delta)
        self._state_epoch += 1
        self._topology_version += 1
        if applied.joined:
            self._rounds.add_nodes(v for v, _ in applied.joined)
        if applied.left:
            self._masked = self._masked | frozenset(applied.left)
        return applied

    def _apply_topology_delta(self, delta) -> "object":
        """Engine hook behind :meth:`mutate_topology`; must mutate the
        structure *and* restore the pipeline invariant (clean node ⇒
        cached pending exact)."""
        raise ModelError(
            f"{type(self).__name__} does not implement dynamic topology "
            "(mutate_topology)"
        )

    def reset_schedule(self, scheduler: Optional[Scheduler] = None) -> None:
        """Restart the round bookkeeping (fresh ``R(0) = 0`` tracker)
        and optionally swap in a fresh scheduler.

        This is the dynamic-topology *re-measurement* seam: after a
        structural event, recovery is measured in rounds counted from
        the event, under a scheduler with no carried-over round state —
        exactly the accounting a fresh execution on the perturbed graph
        would produce (the pre-refactor rewire path), without rebuilding
        anything.  The step counter ``t`` keeps counting, so total-work
        measurements span both phases.
        """
        self._rounds = RoundTracker(self.topology.nodes)
        self._sched_t0 = self._t
        if scheduler is not None:
            self.scheduler = scheduler
            scheduler.bind(self)

    # ------------------------------------------------------------------
    # Permanent-fault masking.
    # ------------------------------------------------------------------

    @property
    def masked_nodes(self) -> FrozenSet[int]:
        """Nodes currently excluded from algorithmic state updates."""
        return self._masked

    def mask_nodes(self, nodes: Iterable[int]) -> None:
        """Exclude ``nodes`` from algorithmic state updates.

        Masked nodes still count as activated for the round bookkeeping
        (fairness is a scheduler notion, and a crashed cell does not
        speed up anyone else's rounds), but :meth:`_apply` never touches
        them: their states change only through :meth:`poke_states` /
        :meth:`replace_configuration`.  This is how permanent faults
        compose with both engines — on the vectorized backend the faulty
        nodes simply drop out of the batched activation rows, so the hot
        loop stays batched.  Passing an empty iterable unmasks everyone.
        """
        masked = frozenset(int(v) for v in nodes)
        unknown = masked - set(self.topology.nodes)
        if unknown:
            raise ModelError(f"cannot mask unknown nodes {sorted(unknown)}")
        self._masked = masked

    # ------------------------------------------------------------------
    # Stepping.
    # ------------------------------------------------------------------

    def _notify_start(self) -> None:
        if not self._started:
            self._started = True
            for monitor in self.monitors:
                monitor.on_start(self)

    def step(self) -> StepRecord:
        """Advance the execution by one step and return its record."""
        self._notify_start()
        if self.intervention is not None:
            replacement = self.intervention(self)
            if replacement is not None:
                if replacement.topology is not self.topology:
                    raise ModelError("intervention changed the topology")
                self._state_epoch += 1
                self._load_configuration(replacement)

        scheduler = self.scheduler
        sched_t = self._t - self._sched_t0
        if scheduler.uses_enabled_view:
            activated = scheduler.select(
                sched_t, self.topology.nodes, self.rng, self.enabled_nodes()
            )
        else:
            activated = scheduler.activations(sched_t, self.topology.nodes, self.rng)
        effective = activated - self._masked if self._masked else activated
        changed = self._apply(effective) if effective else ()
        completed_round = self._rounds.observe(activated)
        record = StepRecord(
            t=self._t,
            activated=activated,
            changed=changed,
            completed_round=completed_round,
            enabled=self.enabled_count() if self._track_enabled else None,
        )
        self._t += 1
        for monitor in self.monitors:
            monitor.on_step(self, record)
        return record

    def advance(self, steps: int) -> None:
        """Advance ``steps`` steps without returning records.

        The trajectory is bit-identical to ``steps`` :meth:`step` calls
        (same scheduler draws, same round bookkeeping); engines may
        override this with a record-free bulk loop that skips the
        per-step ``StepRecord``/change-tuple materialization — the
        frontier-benchmark drive mode, where at n = 10^6 the Python
        bookkeeping would otherwise dominate the compiled kernels.
        Monitors still fire through the generic path when present.
        """
        for _ in range(steps):
            self.step()

    def run(
        self,
        max_steps: Optional[int] = None,
        max_rounds: Optional[int] = None,
        until: Optional[Callable[["ExecutionBase"], bool]] = None,
        check_until_each_step: bool = True,
    ) -> RunResult:
        """Run until a stop condition triggers.

        ``until`` is evaluated on the execution (after each step, or
        after each completed round if ``check_until_each_step`` is
        false).  At least one of the bounds must be supplied so that runs
        terminate.
        """
        if max_steps is None and max_rounds is None:
            raise ModelError("run() needs max_steps and/or max_rounds")
        self._notify_start()
        if until is not None and until(self):
            return RunResult(0, self.completed_rounds, True, "pre-satisfied")
        steps = 0
        while True:
            if max_steps is not None and steps >= max_steps:
                return RunResult(steps, self.completed_rounds, False, "max_steps")
            if max_rounds is not None and self.completed_rounds >= max_rounds:
                return RunResult(steps, self.completed_rounds, False, "max_rounds")
            record = self.step()
            steps += 1
            if until is not None and (check_until_each_step or record.completed_round):
                if until(self):
                    return RunResult(steps, self.completed_rounds, True, "predicate")

    def run_rounds(self, rounds: int) -> RunResult:
        """Run exactly ``rounds`` additional rounds."""
        target = self.completed_rounds + rounds
        return self.run(max_rounds=target, max_steps=None)

    def graph_is_good(self) -> bool:
        """The AlgAU stabilization predicate on the current
        configuration (defined for :class:`~repro.core.algau.ThinUnison`
        executions only; raises :class:`ModelError` otherwise).

        The array engine overrides this with a vectorized check that
        avoids decoding the configuration; analysis code should prefer
        this method over calling ``is_good_graph`` directly so every
        engine gets its fast path.
        """
        from repro.core.algau import ThinUnison
        from repro.core.predicates import is_good_graph

        if not isinstance(self.algorithm, ThinUnison):
            raise ModelError(
                f"graph_is_good() is the AlgAU stabilization predicate; "
                f"{self.algorithm.name} is not a ThinUnison instance"
            )
        return is_good_graph(self.algorithm, self.configuration)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} alg={self.algorithm.name!r} "
            f"graph={self.topology.name!r} t={self._t} "
            f"rounds={self.completed_rounds}>"
        )


def _object_engine() -> type:
    from repro.model.execution import Execution

    return Execution


def _array_engine() -> type:
    from repro.model.array_engine import ArrayExecution

    return ArrayExecution


def _replica_engine() -> type:
    from repro.model.replica_engine import ReplicaBatchExecution

    return ReplicaBatchExecution


def _native_engine() -> type:
    from repro.model.native_engine import native_execution_class

    return native_execution_class()


#: The single source of truth for engine names: declarative name →
#: lazy class loader (lazy to keep the ``repro.model`` import graph
#: acyclic).  Everything that enumerates engines — the CLI ``choices=``
#: lists, the campaign spec validation, and the
#: :class:`UnknownEngineError` message — derives from this registry, so
#: adding an engine here is the *only* step needed to plumb its name
#: through every layer.
ENGINE_FACTORIES: Dict[str, Callable[[], type]] = {
    "object": _object_engine,
    "array": _array_engine,
    "replica-batch": _replica_engine,
    "native": _native_engine,
}

#: One-line summaries, keyed like :data:`ENGINE_FACTORIES`; the
#: :class:`UnknownEngineError` message is composed from these so the
#: explanatory text can never drift from the registered names (a test
#: asserts the two registries share their key sets).
ENGINE_DESCRIPTIONS: Dict[str, str] = {
    "object": "the readable reference model",
    "array": "the vectorized backend",
    "replica-batch": "the ensemble-vectorized backend",
    "native": "the compiled kernel tier (falls back to the array backend)",
}

ENGINE_NAMES: Tuple[str, ...] = tuple(ENGINE_FACTORIES)


def engine_class(engine: str) -> type:
    """The execution class registered under ``engine``.

    Raises :class:`UnknownEngineError` (a :class:`ValueError`) listing
    the valid names — the same message every validation layer relays.
    """
    try:
        loader = ENGINE_FACTORIES[engine]
    except KeyError:
        valid = ", ".join(repr(name) for name in ENGINE_NAMES)
        legend = ", ".join(
            f"{name!r} is {ENGINE_DESCRIPTIONS[name]}"
            for name in ENGINE_NAMES
            if name in ENGINE_DESCRIPTIONS
        )
        raise UnknownEngineError(
            f"unknown engine {engine!r}: valid engine names are {valid} "
            f"({legend})"
        ) from None
    return loader()


def create_execution(
    topology: Topology,
    algorithm: Algorithm,
    initial_configuration: Configuration,
    scheduler: Scheduler,
    rng: Optional[np.random.Generator] = None,
    monitors: Tuple[Monitor, ...] = (),
    intervention: Optional[Intervention] = None,
    engine: str = "object",
    incremental: bool = True,
    track_enabled: bool = False,
) -> ExecutionBase:
    """Instantiate the requested execution engine over one contract.

    ``engine="object"`` builds the reference
    :class:`~repro.model.execution.Execution`; ``engine="array"`` builds
    the vectorized
    :class:`~repro.model.array_engine.ArrayExecution` (the algorithm
    must expose the vectorized backend — currently
    :class:`~repro.core.algau.ThinUnison`); ``engine="replica-batch"``
    builds a single-replica
    :class:`~repro.model.replica_engine.ReplicaBatchExecution` (the
    R = 1 degenerate case of the ensemble backend — behaviorally an
    array engine; multi-replica batches are built with
    :meth:`~repro.model.replica_engine.ReplicaBatchExecution.from_replicas`);
    ``engine="native"`` builds the compiled kernel tier
    (:class:`~repro.model.native_engine.NativeExecution` — bit-identical
    to the array engine, with the hot kernels walking the CSR arrays in
    compiled code; falls back to ``ArrayExecution`` with a warning when
    no native backend is available).
    ``incremental=False`` selects the naive full-recompute reference
    path (bit-identical trajectories, O(n) steps);
    ``track_enabled=True`` stamps the enabled count into every
    :class:`StepRecord`.  Valid names live in :data:`ENGINE_FACTORIES`.
    """
    cls = engine_class(engine)
    return cls(
        topology,
        algorithm,
        initial_configuration,
        scheduler,
        rng=rng,
        monitors=monitors,
        intervention=intervention,
        incremental=incremental,
        track_enabled=track_enabled,
    )
