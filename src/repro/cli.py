"""Command-line interface: ``repro <subcommand>``.

Subcommands regenerate the paper's artifacts from the terminal:

* ``repro figure1 --diameter-bound 2`` — the AlgAU state diagram (text
  or DOT);
* ``repro figure2`` — the Appendix-A live-lock trace;
* ``repro table1`` — the transition-type table extracted from ``δ``;
* ``repro au --diameter-bound 3`` — one adversarial AlgAU run with a
  per-round goodness trace;
* ``repro experiment {au,le,mis,restart}`` — the scaling sweeps;
* ``repro engines`` — the execution-engine registry with a per-engine
  availability probe (the ``native`` row reports which compiled backend
  resolved, or why it fell back);
* ``repro algorithms`` — the algorithm registry: per-algorithm task,
  engine lanes, state bits (exact at a sample diameter bound), and the
  Scenario axes each entry supports;
* ``repro campaign {list,run,report}`` — registry-driven scenario
  campaigns: sharded parallel sweeps over graph family × scheduler ×
  adversarial start × fault plan × engine × algorithm, checkpointed to
  JSONL and aggregated into ``BENCH_campaign_*.json`` artifacts.  The
  ``byzantine`` registry exercises the permanent-fault resilience
  subsystem (engine-paired containment sweeps); ``pareto-unison``
  sweeps the algorithm zoo into a time/space/workload frontier;
  ``net-smoke`` pairs the simulation and message-passing lanes;
* ``repro net run`` — one AlgAU run on the asyncio message-passing
  runtime: per-node actors exchanging clock messages over fair-lossy
  links (``--delay/--jitter/--loss/--duplicate``), with a per-round
  goodness trace and message statistics.

``python -m repro`` (via :mod:`repro.__main__`) and the installed
``repro`` console script both invoke :func:`main`.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np


def _cmd_figure1(args: argparse.Namespace) -> int:
    from repro.core.algau import ThinUnison
    from repro.viz.state_diagram import state_diagram, to_dot, to_text

    algorithm = ThinUnison(args.diameter_bound)
    diagram = state_diagram(algorithm)
    print(to_dot(diagram) if args.dot else to_text(diagram))
    return 0


def _cmd_figure2(args: argparse.Namespace) -> int:
    from repro.baselines.failed_reset_au import (
        livelock_witness,
        rotate_configuration,
    )
    from repro.model.execution import Execution

    witness = livelock_witness(args.diameter_bound, args.c)
    rng = np.random.default_rng(0)
    execution = Execution(
        witness.topology,
        witness.algorithm,
        witness.initial,
        witness.scheduler,
        rng=rng,
    )
    n = witness.topology.n
    print(f"ring of {n} nodes, algorithm {witness.algorithm.name}")
    for round_index in range(args.rounds):
        states = " ".join(f"{str(execution.configuration[v]):>3s}" for v in range(n))
        print(f"round {round_index:2d}: {states}")
        for _ in range(n):
            execution.step()
    expected = rotate_configuration(witness.initial, args.rounds % n)
    verdict = "LIVE-LOCK" if execution.configuration == expected else "??"
    print(
        f"after {args.rounds} rounds: configuration = initial rotated "
        f"by {args.rounds % n} -> {verdict}"
    )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_table
    from repro.core.algau import ThinUnison

    algorithm = ThinUnison(args.diameter_bound)
    k = algorithm.levels.k
    rows = [
        (
            "AA",
            "ℓ̄, 1 ≤ |ℓ| ≤ k",
            "φ+1(ℓ)",
            "v is good and Λ ⊆ {ℓ, φ+1(ℓ)}",
        ),
        (
            "AF",
            "ℓ̄, 2 ≤ |ℓ| ≤ k",
            "ℓ̂",
            "v not protected, or v senses ψ-1(ℓ)̂",
        ),
        (
            "FA",
            "ℓ̂, 2 ≤ |ℓ| ≤ k",
            "ψ-1(ℓ)",
            "Λ ∩ Ψ>(ℓ) = ∅",
        ),
    ]
    print(
        render_table(
            ["Type", "Pre-transition turn", "Post-transition turn", "Condition"],
            rows,
            title=f"Table 1 (k = {k}, |Q| = {algorithm.state_space_size()})",
        )
    )
    return 0


def _cmd_au(args: argparse.Namespace) -> int:
    from repro.core.algau import ThinUnison
    from repro.core.predicates import good_nodes
    from repro.faults.injection import au_adversarial_suite
    from repro.graphs.generators import bounded_diameter_family
    from repro.model.engine import create_execution
    from repro.model.scheduler import ShuffledRoundRobinScheduler

    rng = np.random.default_rng(args.seed)
    topology = bounded_diameter_family(args.diameter_bound, args.nodes, rng)
    algorithm = ThinUnison(args.diameter_bound)
    initial = au_adversarial_suite(algorithm, topology, rng)[args.start]
    execution = create_execution(
        topology,
        algorithm,
        initial,
        ShuffledRoundRobinScheduler(),
        rng=rng,
        engine=args.engine,
    )
    print(
        f"{topology.name}: n={topology.n} D={args.diameter_bound} "
        f"start={args.start} states={algorithm.state_space_size()} "
        f"engine={args.engine}"
    )
    while not execution.graph_is_good():
        execution.run_rounds(1)
        good = len(good_nodes(algorithm, execution.configuration))
        print(
            f"round {execution.completed_rounds:4d}: good nodes "
            f"{good}/{topology.n}"
        )
        if execution.completed_rounds > args.max_rounds:
            print("did not stabilize within the budget", file=sys.stderr)
            return 1
    print(f"stabilized (good graph) after {execution.completed_rounds} rounds")
    return 0


def _cmd_net_run(args: argparse.Namespace) -> int:
    from repro.core.algau import ThinUnison
    from repro.core.predicates import good_nodes
    from repro.faults.injection import au_adversarial_suite
    from repro.graphs.generators import bounded_diameter_family
    from repro.model.scheduler import SynchronousScheduler
    from repro.net import LinkConfig, create_net_execution

    rng = np.random.default_rng(args.seed)
    topology = bounded_diameter_family(args.diameter_bound, args.nodes, rng)
    algorithm = ThinUnison(args.diameter_bound)
    initial = au_adversarial_suite(algorithm, topology, rng)[args.start]
    try:
        link_config = LinkConfig(
            delay=args.delay,
            jitter=args.jitter,
            loss=args.loss,
            duplicate=args.duplicate,
        )
    except Exception as error:
        print(f"bad link configuration: {error}", file=sys.stderr)
        return 2
    execution = create_net_execution(
        topology,
        algorithm,
        initial,
        SynchronousScheduler(),
        rng=rng,
        link_config=link_config,
        noise_seed=args.seed,
    )
    print(
        f"{topology.name}: n={topology.n} D={args.diameter_bound} "
        f"start={args.start} links={link_config} runtime=net"
    )
    try:
        while not execution.graph_is_good():
            execution.run_rounds(1)
            good = len(good_nodes(algorithm, execution.configuration))
            stats = execution.stats
            print(
                f"round {execution.completed_rounds:4d}: good nodes "
                f"{good}/{topology.n}  sent {stats.messages_sent} "
                f"dropped {stats.messages_dropped}"
            )
            if execution.completed_rounds > args.max_rounds:
                print("did not stabilize within the budget", file=sys.stderr)
                return 1
        stats = execution.stats
        per_node_round = stats.per_node_round(
            topology.n, max(1, execution.completed_rounds)
        )
        print(
            f"stabilized (good graph) after {execution.completed_rounds} "
            f"rounds at virtual time {execution.virtual_time:g}"
        )
        print(
            f"messages: sent {stats.messages_sent} delivered "
            f"{stats.messages_delivered} dropped {stats.messages_dropped} "
            f"duplicated {stats.messages_duplicated} "
            f"({per_node_round:.2f} per node-round)"
        )
    finally:
        execution.close()
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.analysis import experiments
    from repro.analysis.tables import render_table

    if args.which == "au":
        rows = experiments.au_scaling_experiment(trials=args.trials, engine=args.engine)
        print(
            render_table(
                ["D", "states", "12D+6", "rounds", "k^3"],
                [
                    (
                        r.params["D"],
                        r.extra["states"],
                        r.extra["states_bound_12D+6"],
                        str(r.rounds),
                        r.extra["rounds_bound_k^3"],
                    )
                    for r in rows
                ],
                title="Thm 1.1 — AlgAU scaling",
            )
        )
        print(
            f"log-log slope of rounds vs D: "
            f"{experiments.au_scaling_slope(rows):.2f} (bound: 3)"
        )
    elif args.which in ("le", "mis"):
        fn = (
            experiments.le_scaling_experiment
            if args.which == "le"
            else experiments.mis_scaling_experiment
        )
        rows = fn(trials=args.trials)
        ratios = experiments.per_log_n(rows)
        print(
            render_table(
                ["n", "rounds", "rounds/log2(n)"],
                [
                    (r.params["n"], str(r.rounds), f"{ratio:.1f}")
                    for r, ratio in zip(rows, ratios)
                ],
                title=f"Thm 1.{3 if args.which == 'le' else 4} — "
                f"Alg{args.which.upper()} scaling (D=2)",
            )
        )
    elif args.which == "restart":
        rows = experiments.restart_experiment(trials=args.trials)
        print(
            render_table(
                ["D", "exit time", "bound 6D+4", "concurrent"],
                [
                    (
                        r.diameter_bound,
                        str(r.exit_times),
                        r.bound_6d,
                        "yes" if r.all_concurrent else "NO",
                    )
                    for r in rows
                ],
                title="Thm 3.1 — Restart",
            )
        )
    else:
        print(f"unknown experiment {args.which!r}", file=sys.stderr)
        return 2
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    report = generate_report(trials=args.trials)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"[saved to {args.output}]", file=sys.stderr)
    return 0 if "FAIL" not in report else 1


def _cmd_engines(args: argparse.Namespace) -> int:
    import warnings

    from repro.analysis.tables import render_table
    from repro.model.engine import ENGINE_DESCRIPTIONS, ENGINE_NAMES, engine_class

    rows = []
    for name in ENGINE_NAMES:
        if name == "native":
            from repro.core.algau_native import native_backend_name

            backend = native_backend_name()
            if backend is None:
                status = (
                    "unavailable (numba not installed, no C compiler); "
                    "falls back to 'array'"
                )
            else:
                status = f"available ({backend} backend)"
        else:
            status = "available"
        with warnings.catch_warnings():
            # The native factory warns on fallback; the probe column
            # already reports that, so keep the listing quiet.
            warnings.simplefilter("ignore")
            cls = engine_class(name)
        rows.append((name, cls.__name__, status, ENGINE_DESCRIPTIONS.get(name, "")))
    print(
        render_table(
            ["engine", "class", "availability", "description"],
            rows,
            title="Execution engines",
        )
    )
    return 0


def _cmd_algorithms(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_table
    from repro.campaigns.spec import ALGORITHM_FACTORIES, algorithm_names

    d = args.diameter_bound
    rows = []
    for name in algorithm_names():
        spec = ALGORITHM_FACTORIES[name]
        bits = spec.state_bits(d, n_hint=args.nodes)
        rows.append(
            (
                name,
                spec.task,
                "+".join(spec.engines),
                spec.state_bits_formula or "-",
                f"{bits:.2f}" if bits is not None else "unbounded",
                "yes" if spec.self_stabilizing else "NO",
                spec.summary,
            )
        )
    print(
        render_table(
            [
                "algorithm",
                "task",
                "engines",
                "state bits",
                f"bits@D={d}",
                "self-stab",
                "description",
            ],
            rows,
            title="Algorithm registry",
        )
    )
    return 0


def _cmd_campaign_list(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_table
    from repro.campaigns import (
        build_campaign,
        describe_registry,
        registry_names,
    )

    rows = []
    for name in registry_names():
        scenarios = build_campaign(name)
        algorithms = sorted({s.algorithm for s in scenarios})
        runtimes = sorted({s.runtime for s in scenarios})
        rows.append(
            (
                name,
                len(scenarios),
                ",".join(algorithms),
                ",".join(runtimes),
                describe_registry(name),
            )
        )
    print(
        render_table(
            ["registry", "scenarios", "algorithms", "runtimes", "description"],
            rows,
            title="Campaign registries",
        )
    )
    return 0


def _resolve_cache(args: argparse.Namespace):
    """The :class:`ResultCache` a ``campaign run`` should use, or ``None``.

    Caching is opt-in: ``--cache-dir`` (or ``REPRO_CACHE_DIR``) turns
    it on, ``--no-cache`` wins over both — so existing invocations and
    the CI nightlies keep their exact behavior until a store is
    configured explicitly.
    """
    import os

    from repro.campaigns import ResultCache

    if args.no_cache:
        return None
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if not cache_dir:
        return None
    return ResultCache(cache_dir)


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.analysis.report import campaign_report
    from repro.campaigns import (
        aggregate_results,
        build_campaign,
        default_artifact_path,
        run_campaign,
        write_campaign_artifact,
    )

    if args.resume and not args.checkpoint:
        print("--resume needs --checkpoint", file=sys.stderr)
        return 2
    if args.shard_size is not None and args.shard_size < 1:
        print("--shard-size must be >= 1", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print("--timeout must be > 0 seconds", file=sys.stderr)
        return 2
    scenarios = build_campaign(args.registry, seed=args.seed)
    if args.limit is not None:
        scenarios = scenarios[: args.limit]

    def progress(done: int, total: int) -> None:
        print(f"\r[{done}/{total} scenarios]", end="", file=sys.stderr)

    cache = _resolve_cache(args)
    run_stats: dict = {}
    started = time.perf_counter()
    results = run_campaign(
        scenarios,
        workers=args.workers,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        shard_size=args.shard_size,
        progress=progress,
        batch=not args.no_batch,
        timeout_s=args.timeout,
        dispatch=None if args.dispatch == "auto" else args.dispatch,
        cache=cache,
        stats=run_stats,
    )
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    print(file=sys.stderr)

    aggregates = aggregate_results(args.registry, scenarios, results, args.seed)
    path = args.output or default_artifact_path(args.registry)
    write_campaign_artifact(
        aggregates,
        path,
        meta={
            "workers": args.workers,
            "elapsed_ms": elapsed_ms,
            "checkpoint": args.checkpoint,
            "resumed": args.resume,
            "batched": not args.no_batch,
            "timeout_s": args.timeout,
            "dispatch": run_stats.get("dispatch"),
            "cache": run_stats.get("cache"),
        },
    )
    print(campaign_report(aggregates))
    cache_stats = run_stats.get("cache")
    if cache_stats:
        print(
            "[cache: {hits} hits / {misses} misses, "
            "{saved_compute_s:.1f}s compute saved]".format(**cache_stats),
            file=sys.stderr,
        )
    print(f"[saved to {path}]", file=sys.stderr)
    return 0 if aggregates["failure_count"] == 0 else 1


def _open_cache(args: argparse.Namespace):
    """The result store a ``repro cache`` subcommand operates on."""
    from repro.campaigns import ResultCache, default_cache_dir

    return ResultCache(args.cache_dir or default_cache_dir())


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    import json

    cache = _open_cache(args)
    payload = cache.stats()
    last_run = cache.load_last_run()
    if last_run is not None:
        payload["last_run"] = last_run
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    cache = _open_cache(args)
    problems = cache.verify(remove=args.remove)
    for problem in problems:
        print(problem, file=sys.stderr)
    entries = cache.stats()["entries"]
    action = "removed" if args.remove else "found"
    print(f"[{entries} sound entries; {len(problems)} corrupt {action}]")
    return 0 if not problems else 1


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    import json

    if args.older_than < 0:
        print("--older-than must be >= 0 days", file=sys.stderr)
        return 2
    cache = _open_cache(args)
    summary = cache.gc(args.older_than * 86400.0)
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.report import campaign_report

    with open(args.input, "r", encoding="utf-8") as handle:
        artifact = json.load(handle)
    print(campaign_report(artifact))
    aggregates = artifact.get("aggregates", artifact)
    return 0 if not aggregates.get("failure_count") else 1


def build_parser() -> argparse.ArgumentParser:
    from repro.campaigns import DISPATCHER_NAMES, registry_names
    from repro.model.engine import ENGINE_NAMES

    engines = list(ENGINE_NAMES)
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Emek & Keren (PODC 2021).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure1", help="AlgAU state diagram (Figure 1)")
    p.add_argument("--diameter-bound", type=int, default=2)
    p.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p.set_defaults(fn=_cmd_figure1)

    p = sub.add_parser("figure2", help="Appendix-A live-lock (Figure 2)")
    p.add_argument("--diameter-bound", type=int, default=2)
    p.add_argument("--c", type=int, default=2)
    p.add_argument("--rounds", type=int, default=8)
    p.set_defaults(fn=_cmd_figure2)

    p = sub.add_parser("table1", help="AlgAU transition types (Table 1)")
    p.add_argument("--diameter-bound", type=int, default=2)
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser("au", help="one adversarial AlgAU run")
    p.add_argument("--diameter-bound", type=int, default=3)
    p.add_argument("--nodes", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-rounds", type=int, default=100_000)
    p.add_argument(
        "--start",
        choices=["random", "sign-split", "clock-tear", "all-faulty"],
        default="sign-split",
    )
    p.add_argument(
        "--engine",
        choices=engines,
        default="object",
        help="execution backend: readable object model or vectorized arrays",
    )
    p.set_defaults(fn=_cmd_au)

    p = sub.add_parser("experiment", help="run a scaling sweep")
    p.add_argument("which", choices=["au", "le", "mis", "restart"])
    p.add_argument("--trials", type=int, default=5)
    p.add_argument(
        "--engine",
        choices=engines,
        default="object",
        help="execution backend for the AlgAU sweep (le/mis/restart "
        "always use the object engine)",
    )
    p.set_defaults(fn=_cmd_experiment)

    p = sub.add_parser("report", help="run the full reproduction battery (small sizes)")
    p.add_argument("--trials", type=int, default=3)
    p.add_argument("--output", type=str, default=None)
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser(
        "engines",
        help="list the execution engines with a per-engine availability probe",
    )
    p.set_defaults(fn=_cmd_engines)

    p = sub.add_parser(
        "algorithms",
        help="list the algorithm registry: tasks, engine lanes, state bits",
    )
    p.add_argument(
        "--diameter-bound",
        type=int,
        default=2,
        help="diameter bound for the exact per-node state-bits column",
    )
    p.add_argument(
        "--nodes",
        type=int,
        default=16,
        help="node-count hint for ID-based algorithms' state bits",
    )
    p.set_defaults(fn=_cmd_algorithms)

    p = sub.add_parser("campaign", help="registry-driven scenario campaigns")
    csub = p.add_subparsers(dest="campaign_command", required=True)

    c = csub.add_parser("list", help="list the campaign registries")
    c.set_defaults(fn=_cmd_campaign_list)

    c = csub.add_parser("run", help="run a campaign sharded over worker processes")
    c.add_argument(
        "--registry",
        required=True,
        choices=list(registry_names()),
        help="which campaign to run",
    )
    c.add_argument("--workers", type=int, default=1, help="worker processes (shards)")
    c.add_argument("--seed", type=int, default=0, help="campaign seed")
    c.add_argument(
        "--limit",
        type=int,
        default=None,
        help="run only the first N scenarios (debugging)",
    )
    c.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="scenarios per shard (default: balanced over workers)",
    )
    c.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        help="JSONL progress checkpoint (enables --resume)",
    )
    c.add_argument(
        "--resume",
        action="store_true",
        help="skip scenarios already present in --checkpoint",
    )
    c.add_argument(
        "--no-batch",
        action="store_true",
        help="run seed ensembles solo instead of replica-batched "
        "(results are bit-identical either way; this forces the "
        "per-scenario engines)",
    )
    c.add_argument(
        "--output",
        type=str,
        default=None,
        help="artifact path (default: BENCH_campaign_<registry>.json)",
    )
    c.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-scenario wall-clock budget in seconds; scenarios "
        "over budget report deterministic status=timeout rows instead "
        "of hanging their shard",
    )
    c.add_argument(
        "--dispatch",
        choices=["auto"] + list(DISPATCHER_NAMES),
        default="auto",
        help="execution backend: serial (inline), shards (static "
        "sharding over a process pool), or queue (work-stealing shared "
        "task queue); auto keeps the historical choice (serial at "
        "--workers 1, shards above) — aggregates are bit-identical "
        "across all backends",
    )
    c.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="content-addressed result store; cached scenarios are "
        "served without recomputation (also honors REPRO_CACHE_DIR)",
    )
    c.add_argument(
        "--no-cache",
        action="store_true",
        help="force recomputation even when REPRO_CACHE_DIR is set",
    )
    c.set_defaults(fn=_cmd_campaign_run)

    c = csub.add_parser("report", help="render a campaign artifact as markdown")
    c.add_argument(
        "--input",
        type=str,
        required=True,
        help="a BENCH_campaign_*.json artifact",
    )
    c.set_defaults(fn=_cmd_campaign_report)

    p = sub.add_parser(
        "cache", help="the content-addressed campaign result store"
    )
    kwargs_sub = p.add_subparsers(dest="cache_command", required=True)

    def _cache_dir_arg(cache_parser: argparse.ArgumentParser) -> None:
        cache_parser.add_argument(
            "--cache-dir",
            type=str,
            default=None,
            help="store root (default: REPRO_CACHE_DIR, else "
            "~/.cache/repro-results)",
        )

    c = kwargs_sub.add_parser(
        "stats", help="entry count, bytes on disk, and last-run hit rate"
    )
    _cache_dir_arg(c)
    c.set_defaults(fn=_cmd_cache_stats)

    c = kwargs_sub.add_parser(
        "verify", help="re-hash every entry and report corruption"
    )
    _cache_dir_arg(c)
    c.add_argument(
        "--remove",
        action="store_true",
        help="delete corrupt entries so they get recomputed",
    )
    c.set_defaults(fn=_cmd_cache_verify)

    c = kwargs_sub.add_parser(
        "gc", help="expire entries by age"
    )
    _cache_dir_arg(c)
    c.add_argument(
        "--older-than",
        type=float,
        required=True,
        metavar="DAYS",
        help="delete entries not rewritten in the last DAYS days",
    )
    c.set_defaults(fn=_cmd_cache_gc)

    p = sub.add_parser(
        "net", help="the asyncio message-passing deployment runtime"
    )
    nsub = p.add_subparsers(dest="net_command", required=True)

    c = nsub.add_parser(
        "run", help="one AlgAU run over fair-lossy links with message stats"
    )
    c.add_argument("--diameter-bound", type=int, default=3)
    c.add_argument("--nodes", type=int, default=16)
    c.add_argument("--seed", type=int, default=0)
    c.add_argument("--max-rounds", type=int, default=10_000)
    c.add_argument(
        "--start",
        choices=["random", "sign-split", "clock-tear", "all-faulty"],
        default="sign-split",
    )
    c.add_argument(
        "--delay", type=float, default=0.0,
        help="base one-way link delay in virtual slots",
    )
    c.add_argument(
        "--jitter", type=float, default=0.0,
        help="uniform extra delay in [0, jitter) per message",
    )
    c.add_argument(
        "--loss", type=float, default=0.0,
        help="per-message drop probability (fair-lossy: bounded streaks)",
    )
    c.add_argument(
        "--duplicate", type=float, default=0.0,
        help="per-message duplication probability",
    )
    c.set_defaults(fn=_cmd_net_run)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
