"""Named campaign registries.

A *campaign* is a programmatically enumerated list of
:class:`~repro.campaigns.spec.Scenario` specs.  Registries are
registered with the :func:`campaign` decorator and built with
:func:`build_campaign`, which derives one independent seed per scenario
from the campaign seed via :class:`numpy.random.SeedSequence` — the
same scenario list (ids, seeds, and all) regardless of process, shard,
or worker count.

Shipped registries:

* ``micro`` — a handful of scenarios; test-suite and CLI sanity runs;
* ``smoke`` — the CI campaign: ≥ 50 fast scenarios crossing graph
  families (including heterogeneous-degree biological graphs), both
  engines, schedulers, the full adversarial-start suite, and every
  fault kind (bursts, storms, dynamic-topology rewires);
* ``dynamic`` — dynamic-topology focus: rewire and storm sweeps;
* ``bio`` — biological topologies (quorum colonies, tissues,
  proneural clusters, signaling-hub colonies);
* ``full`` — the nightly-scale cross product over families ×
  schedulers × starts;
* ``enabled-daemons`` — the enabled-aware daemon axes
  (``enabled-only`` and ``locally-central``), engine-paired so the
  aggregation cross-checks that both backends drive the daemons off
  identical enabled views;
* ``native-pairing`` — compiled-tier differential: every cell runs on
  both the ``array`` and ``native`` engines with a shared seed so the
  nightly aggregation cross-checks the compiled kernels bit for bit;
* ``thm11-scaling`` / ``thm11-n-independence`` / ``fault-recovery`` —
  registry-driven replacements for the former ad-hoc sweep loops of
  ``benchmarks/bench_thm11_*`` and ``bench_fault_recovery``;
* ``pareto-unison`` — the algorithm-zoo Pareto grid: every unison
  baseline × graph family × daemon, engine-paired where an algorithm
  ships both lanes, aggregated into per-cell ``{rounds, state_bits,
  moves}`` metrics and a non-dominated frontier (the Sec. 5
  time/space/workload comparison as a CI artifact);
* ``net-smoke`` — the sim-vs-net differential: every cell runs once on
  the ``array`` simulation lane and once on the message-passing net
  runtime over zero-noise links with a shared seed, so the aggregation
  cross-checks the deployment runtime bit for bit; a small unpaired
  block exercises lossy/delayed links.
* ``churn-phase`` — dynamic-topology churn: edge-churn and membership
  rate sweeps over the biological colony families, every cell run on
  all four lanes (object/array/native engines plus the zero-noise net
  runtime) under one shared seed, so the lane pairing cross-checks the
  incremental ``mutate_topology`` paths bit for bit while the
  aggregated clean fractions trace the sustainable-churn phase
  diagram.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.campaigns.spec import NO_FAULTS, FaultPlan, Scenario
from repro.campaigns.spec import AU_STARTS as SPEC_AU_STARTS

GraphSpec = Tuple[str, Tuple[Tuple[str, object], ...], int]


def au_round_budget(diameter_bound: int) -> int:
    """The AU round budget at diameter bound ``d`` — a cap, not an
    estimate (the paper's bound is ``k^3`` with ``k = 3d + 2``)."""
    return 200 * (3 * diameter_bound + 2) ** 3


def derive_seed(campaign_seed: int, index: int) -> int:
    """A stable per-scenario seed, independent of sharding."""
    sequence = np.random.SeedSequence([campaign_seed, index])
    return int(sequence.generate_state(1)[0])


class CampaignBuilder:
    """Accumulates scenarios, assigning indices and derived seeds."""

    def __init__(self, name: str, seed: int):
        self.name = name
        self.seed = seed
        self.scenarios: List[Scenario] = []

    def add(
        self,
        task: str,
        graph: str,
        graph_params: Tuple[Tuple[str, object], ...],
        diameter_bound: int,
        scheduler: str,
        engine: str,
        start: str,
        max_rounds: int,
        faults: FaultPlan = NO_FAULTS,
        group: str = "",
        tags: Tuple[Tuple[str, str], ...] = (),
        seed_index: Optional[int] = None,
        batch_replicas: int = 1,
        algorithm: str = "",
        runtime: str = "sim",
        net_params: Tuple[Tuple[str, object], ...] = (),
    ) -> Scenario:
        """Append one scenario.

        ``seed_index`` overrides the index the per-scenario seed is
        derived from: scenarios sharing a ``seed_index`` receive the
        *same* seed, which is how engine-paired registries (the
        ``byzantine`` campaign) run the identical experiment on both
        backends and let the aggregation cross-check them.
        ``batch_replicas >= 2`` marks seed ensembles for the runner's
        replica-batched path (see :meth:`Scenario.batch_key`).
        ``algorithm`` picks an entry from
        :data:`~repro.campaigns.spec.ALGORITHM_FACTORIES` (empty =
        the task's default, i.e. the paper's algorithm).
        ``runtime="net"`` routes the scenario through the asyncio
        message-passing runtime with the link knobs in ``net_params``
        (see :mod:`repro.net.adapter`).
        """
        index = len(self.scenarios)
        scenario = Scenario(
            campaign=self.name,
            index=index,
            task=task,
            graph=graph,
            graph_params=graph_params,
            diameter_bound=diameter_bound,
            scheduler=scheduler,
            engine=engine,
            start=start,
            seed=derive_seed(self.seed, index if seed_index is None else seed_index),
            max_rounds=max_rounds,
            faults=faults,
            group=group or f"{task}@{graph}",
            tags=tags,
            batch_replicas=batch_replicas,
            algorithm=algorithm,
            runtime=runtime,
            net_params=net_params,
        )
        self.scenarios.append(scenario)
        return scenario

    def add_au(self, graph, graph_params, diameter_bound, **kwargs):
        """``add`` with the AU task's conventional defaults filled in."""
        kwargs.setdefault("max_rounds", au_round_budget(diameter_bound))
        kwargs.setdefault("scheduler", "shuffled-round-robin")
        kwargs.setdefault("engine", "array")
        kwargs.setdefault("start", "random")
        return self.add("au", graph, graph_params, diameter_bound, **kwargs)


CampaignFn = Callable[[CampaignBuilder], None]

_REGISTRY: Dict[str, Tuple[str, CampaignFn]] = {}


def campaign(name: str, description: str):
    """Register a campaign builder under ``name``."""

    def wrap(fn: CampaignFn) -> CampaignFn:
        """Store ``fn`` in the registry and return it unchanged."""
        _REGISTRY[name] = (description, fn)
        return fn

    return wrap


def registry_names() -> Tuple[str, ...]:
    """All registered campaign names, sorted."""
    return tuple(sorted(_REGISTRY))


def describe_registry(name: str) -> str:
    """The one-line description of campaign ``name``."""
    _require(name)
    return _REGISTRY[name][0]


def build_campaign(name: str, seed: int = 0) -> List[Scenario]:
    """Enumerate the named campaign's scenarios (deterministic)."""
    _require(name)
    builder = CampaignBuilder(name, seed)
    _REGISTRY[name][1](builder)
    return builder.scenarios


def _require(name: str) -> None:
    if name not in _REGISTRY:
        valid = ", ".join(registry_names())
        raise ValueError(
            f"unknown campaign registry {name!r}: valid registries are "
            f"{valid}"
        )


# ----------------------------------------------------------------------
# Shared axis fragments.
# ----------------------------------------------------------------------

#: The adversarial sweep omits the benign ``uniform`` start.
AU_STARTS = tuple(name for name in SPEC_AU_STARTS if name != "uniform")

#: The cross-family AU workload: name, params, diameter bound.
CORE_GRAPHS: Tuple[GraphSpec, ...] = (
    ("complete", (("n", 8),), 1),
    (
        "damaged-clique",
        (("n", 10), ("diameter_bound", 2), ("damage", 0.4)),
        2,
    ),
    ("star", (("n", 9),), 2),
    ("dumbbell", (("clique_size", 4), ("bridge_length", 1)), 3),
    ("ring", (("n", 8),), 4),
)

BIO_GRAPHS: Tuple[GraphSpec, ...] = (
    ("quorum-colony", (("n", 12), ("diameter_bound", 2)), 2),
    ("hub-colony", (("n", 12), ("hubs", 2)), 2),
    ("cell-tissue", (("width", 3), ("height", 3)), 4),
    ("proneural", (("width", 3), ("height", 3)), 2),
)

FAULT_GRAPHS: Tuple[GraphSpec, ...] = (
    (
        "damaged-clique",
        (("n", 10), ("diameter_bound", 2), ("damage", 0.4)),
        2,
    ),
    ("quorum-colony", (("n", 10), ("diameter_bound", 2)), 2),
)


def _alternating_engine(builder: CampaignBuilder) -> str:
    """Alternate engines so campaigns continuously cross-check both
    backends (AlgAU is deterministic, so mixed engines cannot change
    aggregate values, only exercise both code paths)."""
    return "array" if len(builder.scenarios) % 2 == 0 else "object"


def _fault_block(builder: CampaignBuilder) -> None:
    for graph, params, d in FAULT_GRAPHS:
        for bursts in (1, 2):
            builder.add_au(
                graph,
                params,
                d,
                faults=FaultPlan(kind="bursts", bursts=bursts, fraction=0.3),
                group=f"au-bursts@{graph}",
            )
        builder.add_au(
            graph,
            params,
            d,
            engine=_alternating_engine(builder),
            faults=FaultPlan(kind="storm", times=(5, 40, 80), fraction=0.25),
            group=f"au-storm@{graph}",
        )
        for remove, add in ((1, 1), (2, 1)):
            builder.add_au(
                graph,
                params,
                d,
                faults=FaultPlan(kind="rewire", remove=remove, add=add),
                group=f"au-rewire@{graph}",
            )


# ----------------------------------------------------------------------
# Registries.
# ----------------------------------------------------------------------


@campaign("micro", "six-scenario sanity campaign (tests, CLI smoke)")
def _micro(builder: CampaignBuilder) -> None:
    for start in ("random", "all-faulty"):
        for scheduler in ("synchronous", "shuffled-round-robin"):
            builder.add_au(
                "complete",
                (("n", 6),),
                1,
                scheduler=scheduler,
                engine=_alternating_engine(builder),
                start=start,
                group="au@complete",
            )
    params = (("n", 8), ("diameter_bound", 2), ("damage", 0.4))
    builder.add_au(
        "damaged-clique",
        params,
        2,
        faults=FaultPlan(kind="bursts", bursts=1, fraction=0.3),
        group="au-bursts",
    )
    builder.add_au(
        "damaged-clique",
        params,
        2,
        faults=FaultPlan(kind="rewire", remove=1, add=1),
        group="au-rewire",
    )


@campaign(
    "smoke",
    "CI campaign: every family/scheduler/start/fault axis at small sizes",
)
def _smoke(builder: CampaignBuilder) -> None:
    for graph, params, d in CORE_GRAPHS:
        for start in AU_STARTS:
            for scheduler in ("synchronous", "shuffled-round-robin"):
                builder.add_au(
                    graph,
                    params,
                    d,
                    scheduler=scheduler,
                    engine=_alternating_engine(builder),
                    start=start,
                    group=f"au@{graph}",
                )
    _fault_block(builder)
    for graph, params, d in BIO_GRAPHS[:3]:
        for start in ("sign-split", "all-faulty"):
            builder.add_au(graph, params, d, start=start, group=f"au@{graph}")
    # A seed ensemble exercising the replica-batched Monte Carlo path
    # in every CI run: eight trials differing only by seed, fused into
    # one ReplicaBatchExecution when batching is enabled and bit-
    # identical solo runs when it is not (the nightly shard checks the
    # aggregates agree either way).
    for trial in range(8):
        builder.add_au(
            "damaged-clique",
            (("n", 10), ("diameter_bound", 2), ("damage", 0.4)),
            2,
            engine="replica-batch",
            group="au-ensemble@damaged-clique",
            tags=(("trial", str(trial)),),
            batch_replicas=8,
        )
    # The compiled kernel tier rides every CI run: a fault-free slice
    # of the core families on ``engine="native"`` (which degrades to
    # the array tier with a warning on compiler-less runners, so the
    # campaign stays green either way) plus one batched ensemble on
    # the native replica lane.
    for graph, params, d in (CORE_GRAPHS[0], CORE_GRAPHS[4]):
        for start in ("random", "all-faulty"):
            builder.add_au(
                graph,
                params,
                d,
                engine="native",
                start=start,
                group=f"au-native@{graph}",
            )
    for trial in range(4):
        builder.add_au(
            "damaged-clique",
            (("n", 10), ("diameter_bound", 2), ("damage", 0.4)),
            2,
            engine="native",
            group="au-native-ensemble@damaged-clique",
            tags=(("trial", str(trial)),),
            batch_replicas=4,
        )
    for n in (4, 8):
        builder.add(
            "le",
            "damaged-clique",
            (("n", n), ("diameter_bound", 2), ("damage", 0.4)),
            2,
            scheduler="synchronous",
            engine="object",
            start="random",
            max_rounds=40_000,
            group="le@damaged-clique",
        )
    builder.add(
        "mis",
        "proneural",
        (("width", 3), ("height", 3)),
        2,
        scheduler="synchronous",
        engine="object",
        start="random",
        max_rounds=80_000,
        group="mis@proneural",
    )
    builder.add(
        "mis",
        "damaged-clique",
        (("n", 8), ("diameter_bound", 2), ("damage", 0.4)),
        2,
        scheduler="synchronous",
        engine="object",
        start="random",
        max_rounds=80_000,
        group="mis@damaged-clique",
    )


@campaign("dynamic", "dynamic-topology focus: rewire and storm sweeps")
def _dynamic(builder: CampaignBuilder) -> None:
    graphs: Tuple[GraphSpec, ...] = (
        (
            "damaged-clique",
            (("n", 12), ("diameter_bound", 2), ("damage", 0.4)),
            2,
        ),
        ("quorum-colony", (("n", 12), ("diameter_bound", 2)), 2),
        ("hub-colony", (("n", 12), ("hubs", 2)), 2),
    )
    for graph, params, d in graphs:
        for remove, add in ((1, 1), (2, 2), (3, 1)):
            for trial in range(3):
                builder.add_au(
                    graph,
                    params,
                    d,
                    faults=FaultPlan(kind="rewire", remove=remove, add=add),
                    group=f"rewire(-{remove}+{add})@{graph}",
                    tags=(("trial", str(trial)),),
                )
        for fraction in (0.25, 0.5):
            builder.add_au(
                graph,
                params,
                d,
                faults=FaultPlan(kind="storm", times=(4, 30, 60), fraction=fraction),
                group=f"storm@{graph}",
            )


@campaign("bio", "biological topologies: clocks, tissues, SOP selection")
def _bio(builder: CampaignBuilder) -> None:
    for graph, params, d in BIO_GRAPHS:
        for start in AU_STARTS:
            builder.add_au(graph, params, d, start=start, group=f"au@{graph}")
        builder.add_au(
            graph,
            params,
            d,
            faults=FaultPlan(kind="bursts", bursts=2, fraction=0.3),
            group=f"au-bursts@{graph}",
        )
    builder.add(
        "mis",
        "proneural",
        (("width", 4), ("height", 3)),
        2,
        scheduler="synchronous",
        engine="object",
        start="random",
        max_rounds=80_000,
        group="mis@proneural",
    )
    builder.add(
        "le",
        "quorum-colony",
        (("n", 10), ("diameter_bound", 2)),
        2,
        scheduler="synchronous",
        engine="object",
        start="random",
        max_rounds=40_000,
        group="le@quorum-colony",
    )


@campaign("full", "nightly-scale cross product over every axis")
def _full(builder: CampaignBuilder) -> None:
    graphs: Tuple[GraphSpec, ...] = CORE_GRAPHS + BIO_GRAPHS + (
        ("torus", (("rows", 4), ("cols", 4)), 4),
        ("hypercube", (("dimension", 3),), 3),
        ("caterpillar", (("spine", 5), ("legs_per_node", 1)), 6),
        ("gnp", (("n", 16), ("p", 0.5)), 4),
        ("regular", (("n", 16), ("degree", 5)), 4),
    )
    schedulers = ("synchronous", "shuffled-round-robin", "random-subset")
    for graph, params, d in graphs:
        for start in AU_STARTS:
            for scheduler in schedulers:
                builder.add_au(
                    graph,
                    params,
                    d,
                    scheduler=scheduler,
                    engine=_alternating_engine(builder),
                    start=start,
                    group=f"au@{graph}",
                )
    _fault_block(builder)
    for task, graph, params, d, budget in (
        ("le", "damaged-clique", (("n", 16), ("diameter_bound", 2)), 2, 40_000),
        ("mis", "proneural", (("width", 4), ("height", 4)), 2, 80_000),
    ):
        builder.add(
            task,
            graph,
            params,
            d,
            scheduler="synchronous",
            engine="object",
            start="random",
            max_rounds=budget,
            group=f"{task}@{graph}",
        )


@campaign(
    "thm11-scaling",
    "Thm 1.1 — AlgAU rounds vs diameter bound D (worst adversarial start)",
)
def _thm11_scaling(builder: CampaignBuilder) -> None:
    # Trials of one (D, start) cell differ only by seed, so the runner
    # fuses them into replica batches — the ensemble trick that pays for
    # the Thm 1.1 sweeps.
    for d in (1, 2, 3, 4, 5):
        for trial in range(6):
            for start in AU_STARTS:
                builder.add_au(
                    "bounded-diameter",
                    (("diameter_bound", d), ("n", 14)),
                    d,
                    start=start,
                    group=f"D={d}",
                    tags=(("trial", str(trial)), ("start", start)),
                    batch_replicas=8,
                )


@campaign(
    "thm11-n-independence",
    "Thm 1.1 — AlgAU rounds stay flat as n grows at fixed D=2",
)
def _thm11_n_independence(builder: CampaignBuilder) -> None:
    for n in (6, 12, 24, 48):
        for trial in range(5):
            for start in AU_STARTS:
                builder.add_au(
                    "damaged-clique",
                    (("n", n), ("diameter_bound", 2), ("damage", 0.4)),
                    2,
                    start=start,
                    group=f"n={n}",
                    tags=(("trial", str(trial)), ("start", start)),
                    batch_replicas=8,
                )


@campaign(
    "fault-recovery",
    "Title application — repeated fault bursts on a quorum-colony clock",
)
def _fault_recovery(builder: CampaignBuilder) -> None:
    for trial in range(8):
        builder.add_au(
            "quorum-colony",
            (("n", 16), ("diameter_bound", 2)),
            2,
            faults=FaultPlan(kind="bursts", bursts=3, fraction=0.3),
            group="au-recovery",
            tags=(("trial", str(trial)),),
        )


#: Large-hop-distance workloads for the permanent-fault campaign —
#: containment is only observable when correct nodes exist well beyond
#: the faulty neighborhoods, so these graphs trade density for
#: diameter.  (name, params, D.)
BYZANTINE_GRAPHS: Tuple[Tuple[str, Tuple[Tuple[str, object], ...], int], ...] = (
    ("ring", (("n", 16),), 8),
    ("caterpillar", (("spine", 6), ("legs_per_node", 1)), 7),
)

#: Containment target radius by fault density: a single faulty node
#: must be contained tightly (plenty of correct nodes beyond 3 hops);
#: denser fault sets shrink the fault-free margin, so the target
#: loosens rather than making the scenario unsatisfiable.
BYZANTINE_RADII = {0.06: 3, 0.2: 4}


@campaign(
    "byzantine",
    "permanent faults: engine-paired containment sweep "
    "(strategy x density x graph family)",
)
def _byzantine(builder: CampaignBuilder) -> None:
    """Every cell is run on *both* engines with the *same* derived seed
    (``seed_index`` pairing), so the aggregation can verify that the
    permanent-fault machinery is bit-identical across backends — the
    differential property the transient campaigns get from
    ``_alternating_engine`` is promoted to a hard pairwise check here
    (see :func:`repro.campaigns.aggregate.verify_engine_pairing`)."""
    pair = 0

    def add_pair(graph, params, d, faults):
        """One engine-paired cell: both engines, one shared seed."""
        nonlocal pair
        for engine in ("object", "array"):
            builder.add_au(
                graph,
                params,
                d,
                engine=engine,
                max_rounds=4000,
                faults=faults,
                group=f"{faults.kind}-{faults.strategy or 'stop'}@{graph}",
                tags=(("pairing", str(pair)), ("density", f"{faults.density:.2f}")),
                seed_index=pair,
            )
        pair += 1

    for graph, params, d in BYZANTINE_GRAPHS:
        for strategy in ("frozen", "random", "oscillating", "noisy"):
            for density, radius in sorted(BYZANTINE_RADII.items()):
                if strategy == "frozen" and graph == "caterpillar":
                    # A frozen clock at an outward level permanently
                    # jams the FA drain of its neighbors; on tree-like
                    # graphs the jam chain runs one hop farther than on
                    # the ring, so the target loosens accordingly.
                    radius += 1
                add_pair(
                    graph,
                    params,
                    d,
                    FaultPlan(
                        kind="byzantine",
                        strategy=strategy,
                        density=density,
                        radius=radius,
                    ),
                )
        add_pair(
            graph,
            params,
            d,
            FaultPlan(kind="crash", density=0.14, times=(25,), radius=3),
        )
    # The targeted max-disruption adversary is configuration-probing
    # (expensive), so it gets one small cell per family.
    for graph, params, d in BYZANTINE_GRAPHS:
        add_pair(
            graph,
            params,
            d,
            FaultPlan(kind="byzantine", strategy="targeted", density=0.06, radius=3),
        )


#: Families exercised by the enabled-daemon campaign: a sparse
#: large-diameter family (where enabled sets stay small) plus the
#: heterogeneous-degree biological hub colony named by the dirty-set
#: issue, plus a dense control.
ENABLED_DAEMON_GRAPHS: Tuple[GraphSpec, ...] = (
    ("ring", (("n", 12),), 6),
    ("hub-colony", (("n", 12), ("hubs", 2)), 2),
    (
        "damaged-clique",
        (("n", 10), ("diameter_bound", 2), ("damage", 0.4)),
        2,
    ),
)


@campaign(
    "enabled-daemons",
    "enabled-aware daemon axes: engine-paired sweep over "
    "enabled-only/locally-central schedulers x families x starts",
)
def _enabled_daemons(builder: CampaignBuilder) -> None:
    """Every cell runs on *both* engines with the *same* derived seed
    (``seed_index`` pairing, like the ``byzantine`` campaign): the
    enabled-aware daemons choose activations from the engines'
    incrementally maintained enabled views, so pairwise-identical
    results certify that the object and array pipelines maintain
    identical enabled sets along whole trajectories — the sharpest
    cross-check of the dirty-set invariant the campaign layer can run
    (enforced by :func:`repro.campaigns.aggregate.verify_engine_pairing`)."""
    pair = 0

    def add_pair(graph, params, d, scheduler, start, faults=NO_FAULTS):
        """One engine-paired cell: both engines, one shared seed."""
        nonlocal pair
        for engine in ("object", "array"):
            builder.add_au(
                graph,
                params,
                d,
                scheduler=scheduler,
                engine=engine,
                start=start,
                max_rounds=au_round_budget(d),
                faults=faults,
                group=f"{scheduler}@{graph}",
                tags=(("pairing", str(pair)), ("daemon", scheduler)),
                seed_index=pair,
            )
        pair += 1

    for graph, params, d in ENABLED_DAEMON_GRAPHS:
        for scheduler in ("enabled-only", "locally-central"):
            for start in ("random", "all-faulty"):
                add_pair(graph, params, d, scheduler, start)
    # The daemons must also compose with mid-run state corruption (the
    # bursts re-dirty whole neighborhoods at once).
    for scheduler in ("enabled-only", "locally-central"):
        add_pair(
            "hub-colony",
            (("n", 12), ("hubs", 2)),
            2,
            scheduler,
            "random",
            faults=FaultPlan(kind="bursts", bursts=1, fraction=0.3),
        )


#: Families for the native-vs-array pairing sweep: the core ring and
#: damaged-clique cells plus the large-hop byzantine graphs, so the
#: compiled kernels are cross-checked on both the dense incremental
#: path and the permanent-fault mask/poke machinery.
NATIVE_PAIRING_GRAPHS: Tuple[GraphSpec, ...] = (
    ("ring", (("n", 12),), 6),
    (
        "damaged-clique",
        (("n", 10), ("diameter_bound", 2), ("damage", 0.4)),
        2,
    ),
    ("hub-colony", (("n", 12), ("hubs", 2)), 2),
)


@campaign(
    "native-pairing",
    "compiled-tier differential: array-vs-native engine-paired sweep "
    "over families x schedulers x fault kinds",
)
def _native_pairing(builder: CampaignBuilder) -> None:
    """Every cell runs on both the ``array`` and ``native`` engines
    with the *same* derived seed (``seed_index`` pairing, like the
    ``byzantine`` campaign), so the nightly aggregation can assert the
    compiled CSR-walking kernels reproduce the numpy tier bit for bit
    along whole trajectories — transient storms, permanent byzantine
    and crash faults, masks and pokes included (enforced by
    :func:`repro.campaigns.aggregate.verify_engine_pairing`).  On
    runners without a native backend the native lane degrades to the
    array engine, and the pairing check degenerates to a tautology
    rather than a failure."""
    pair = 0

    def add_pair(graph, params, d, scheduler="shuffled-round-robin",
                 start="random", faults=NO_FAULTS, max_rounds=4000):
        """One array/native-paired cell under one shared seed."""
        nonlocal pair
        for engine in ("array", "native"):
            builder.add_au(
                graph,
                params,
                d,
                scheduler=scheduler,
                engine=engine,
                start=start,
                max_rounds=max_rounds,
                faults=faults,
                group=f"{faults.kind}@{graph}",
                tags=(("pairing", str(pair)),),
                seed_index=pair,
            )
        pair += 1

    for graph, params, d in NATIVE_PAIRING_GRAPHS:
        for scheduler in ("synchronous", "shuffled-round-robin"):
            for start in ("random", "all-faulty"):
                add_pair(graph, params, d, scheduler=scheduler, start=start)
        add_pair(
            graph,
            params,
            d,
            faults=FaultPlan(kind="storm", times=(5, 40, 80), fraction=0.25),
        )
        add_pair(
            graph,
            params,
            d,
            faults=FaultPlan(kind="rewire", remove=1, add=1),
        )
    # The permanent-fault machinery (masks, pokes, containment
    # analytics) must agree too.
    for graph, params, d in BYZANTINE_GRAPHS:
        for strategy in ("frozen", "random", "oscillating"):
            add_pair(
                graph,
                params,
                d,
                faults=FaultPlan(
                    kind="byzantine", strategy=strategy, density=0.2, radius=4
                ),
            )
        add_pair(
            graph,
            params,
            d,
            faults=FaultPlan(kind="crash", density=0.14, times=(25,), radius=3),
        )


#: Families for the Pareto grid — one dense, one tree-like, one
#: large-diameter family, so the zoo is compared where each design's
#: weakness shows (reset waves are cheap on dense graphs, expensive on
#: rings; AlgAU's state count grows with ``D``).
PARETO_GRAPHS: Tuple[GraphSpec, ...] = (
    ("complete", (("n", 8),), 1),
    ("star", (("n", 9),), 2),
    ("ring", (("n", 8),), 4),
)

#: The unison zoo entered in the grid: algorithm name → the engines it
#: runs on (both lanes = engine-paired cells cross-checked by
#: :func:`repro.campaigns.aggregate.verify_engine_pairing`).  The
#: non-self-stabilizing ``failed-reset-unison`` witness is *included* —
#: from random starts on these families it converges, and its row makes
#: the frontier honest about what its missing interrupt rule buys.
PARETO_ALGORITHMS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("thin-unison", ("object", "array")),
    ("reset-tail-unison", ("object", "array")),
    ("min-unison", ("object",)),
    ("failed-reset-unison", ("object",)),
)


@campaign(
    "pareto-unison",
    "algorithm zoo Pareto grid: unison baselines x families x daemons, "
    "per-cell {rounds, state_bits, moves} + non-dominated frontier",
)
def _pareto_unison(builder: CampaignBuilder) -> None:
    """Each (algorithm, family, daemon, trial) cell runs once per
    supported engine under the *same* derived seed (``seed_index``
    pairing), so the aggregation both cross-checks the reset-tail
    vectorized lane bit for bit and folds engine rows into one Pareto
    cell without double-weighting.  The aggregation side lives in
    :func:`repro.campaigns.aggregate.compute_pareto`; the CI gate in
    ``benchmarks/bench_pareto_unison.py``."""
    pair = 0
    for graph, params, d in PARETO_GRAPHS:
        for scheduler in ("synchronous", "shuffled-round-robin"):
            for algorithm, engines in PARETO_ALGORITHMS:
                for trial in range(3):
                    for engine in engines:
                        builder.add_au(
                            graph,
                            params,
                            d,
                            scheduler=scheduler,
                            engine=engine,
                            start="random",
                            max_rounds=20_000,
                            algorithm=algorithm,
                            group=f"{algorithm}@{graph}/{scheduler}",
                            tags=(
                                ("pairing", str(pair)),
                                ("daemon", scheduler),
                                ("trial", str(trial)),
                            ),
                            seed_index=pair,
                        )
                    pair += 1


#: Families for the sim-vs-net differential: a large-diameter ring, a
#: dense random graph, and the biological quorum colony, so the net
#: runtime's register propagation is cross-checked both where messages
#: travel far and where neighborhoods are wide.  (name, params, D,
#: permanent-fault containment radius.)
NET_SMOKE_GRAPHS: Tuple[Tuple[str, Tuple[Tuple[str, object], ...], int, int], ...] = (
    ("ring", (("n", 12),), 6, 3),
    ("gnp", (("n", 12), ("p", 0.5)), 4, 3),
    ("quorum-colony", (("n", 10), ("diameter_bound", 2)), 2, 2),
)


@campaign(
    "net-smoke",
    "sim-vs-net differential: runtime-paired zero-noise cells over "
    "families x starts x daemons x permanent faults, plus lossy links",
)
def _net_smoke(builder: CampaignBuilder) -> None:
    """Every cell runs once with ``runtime="sim"`` and once with
    ``runtime="net"`` under the *same* derived seed (``seed_index``
    pairing, like the ``byzantine`` campaign) over zero-noise links, so
    the aggregation can assert the message-passing runtime reproduces
    the array engine bit for bit — the differential contract of
    ``docs/net-runtime.md`` (enforced by
    :func:`repro.campaigns.aggregate.verify_engine_pairing`, which
    treats ``engine/runtime`` as the lane identity).  A trailing
    unpaired block runs lossy/delayed links for coverage of the noise
    machinery; those rows carry no pairing tag, so the cross-check
    skips them."""
    pair = 0

    def add_pair(graph, params, d, scheduler="synchronous",
                 start="uniform", faults=NO_FAULTS):
        """One sim/net-paired cell under one shared seed."""
        nonlocal pair
        group = (
            f"au@{graph}" if faults.kind == "none"
            else f"{faults.kind}@{graph}"
        )
        for runtime in ("sim", "net"):
            builder.add_au(
                graph,
                params,
                d,
                scheduler=scheduler,
                engine="array",
                start=start,
                max_rounds=4000,
                faults=faults,
                runtime=runtime,
                group=group,
                tags=(("pairing", str(pair)),),
                seed_index=pair,
            )
        pair += 1

    for graph, params, d, _ in NET_SMOKE_GRAPHS:
        for start in ("uniform", "random"):
            add_pair(graph, params, d, start=start)
        add_pair(graph, params, d, scheduler="shuffled-round-robin",
                 start="random")
    for graph, params, d, radius in NET_SMOKE_GRAPHS:
        add_pair(
            graph,
            params,
            d,
            start="random",
            faults=FaultPlan(
                kind="byzantine", strategy="frozen", density=0.1,
                radius=radius,
            ),
        )
        add_pair(
            graph,
            params,
            d,
            start="random",
            faults=FaultPlan(kind="crash", density=0.12, times=(25,),
                             radius=radius),
        )
    # Unpaired noisy-link coverage: lossy and delayed variants of the
    # ring cell (stabilization slows but must still complete).
    for key, value in (("loss", 0.2), ("delay", 1.0)):
        builder.add_au(
            "ring",
            (("n", 12),),
            6,
            scheduler="synchronous",
            engine="array",
            start="random",
            max_rounds=4000,
            runtime="net",
            net_params=((key, value),),
            group="noisy@ring",
            tags=((key, f"{value:g}"),),
        )


#: Families for the churn-phase campaign: the paper's biological colony
#: graphs — a quorum colony, a signaling-hub colony and a cell tissue —
#: where membership churn is the native failure mode (cells are born
#: and die while the clock runs).
CHURN_GRAPHS: Tuple[GraphSpec, ...] = (
    ("quorum-colony", (("n", 12), ("diameter_bound", 2)), 2),
    ("hub-colony", (("n", 12), ("hubs", 2)), 2),
    ("cell-tissue", (("width", 3), ("height", 3)), 4),
)

#: Expected churn events per step swept by the campaign, spanning the
#: sustainable-to-collapsed range so the per-rate clean fractions
#: bracket the phase boundary on every family.
CHURN_RATES = (0.05, 0.25, 1.0, 4.0)

#: Churn window length in engine steps.
CHURN_WINDOW = 160


@campaign(
    "churn-phase",
    "dynamic-topology churn: kind x rate x colony-family sweep, "
    "lane-paired (object/array/native engines + zero-noise net)",
)
def _churn_phase(builder: CampaignBuilder) -> None:
    """Every cell runs once per *lane* — the three sim engines plus the
    zero-noise net runtime — under the *same* derived seed
    (``seed_index`` pairing).  The
    :class:`~repro.faults.churn.ChurnProcess` delta stream is a pure
    function of the scenario seed, so all four lanes absorb the
    bit-identical sequence of joins, leaves and edge rewires and must
    report bit-identical measured columns — the sharpest cross-check of
    the incremental ``mutate_topology`` paths the campaign layer can
    run (enforced by
    :func:`repro.campaigns.aggregate.verify_engine_pairing`).  The
    aggregated per-(kind, rate, family) clean fractions trace the
    sustainable-churn phase diagram; the boundary extraction lives in
    :func:`repro.analysis.restabilization.churn_phase_boundary` and the
    CI gate in ``benchmarks/bench_churn.py``."""
    pair = 0
    lanes = (
        ("object", "sim"),
        ("array", "sim"),
        ("native", "sim"),
        ("array", "net"),
    )
    for graph, params, d in CHURN_GRAPHS:
        for kind in ("churn", "membership"):
            for rate in CHURN_RATES:
                faults = FaultPlan(kind=kind, rate=rate, times=(CHURN_WINDOW,))
                for engine, runtime in lanes:
                    builder.add_au(
                        graph,
                        params,
                        d,
                        scheduler="synchronous",
                        engine=engine,
                        start="random",
                        max_rounds=4000,
                        faults=faults,
                        runtime=runtime,
                        group=f"{kind}(r={rate:g})@{graph}",
                        tags=(
                            ("pairing", str(pair)),
                            ("kind", kind),
                            ("rate", f"{rate:g}"),
                        ),
                        seed_index=pair,
                    )
                pair += 1


@campaign(
    "dispatch-straggler",
    "straggler-skewed mix stress-testing the dispatch backends",
)
def _dispatch_straggler(builder: CampaignBuilder) -> None:
    """Many ~5 ms scenarios plus a few ~40x-slower stragglers, with the
    stragglers *adjacent* in index order — the worst case for static
    sharding, which packs contiguous runs of jobs into the same shard
    and leaves the other workers idle while one drains the slow shard.
    The work-stealing ``queue`` backend hands each straggler to a
    different idle worker, which is exactly the gap
    ``benchmarks/bench_campaign_cache.py`` measures (and every backend
    still aggregates bit-identically — the dispatch axis is pure
    execution strategy)."""
    for trial in range(28):
        builder.add_au(
            "complete",
            (("n", 6),),
            1,
            scheduler="shuffled-round-robin",
            engine="array",
            start="random",
            group="tiny@complete",
            tags=(("trial", str(trial)),),
        )
    for trial in range(4):
        builder.add_au(
            "ring",
            (("n", 48),),
            24,
            scheduler="shuffled-round-robin",
            engine="array",
            start="clock-tear",
            group="straggler@ring",
            tags=(("trial", str(trial)),),
        )
