"""Declarative scenario specifications.

A :class:`Scenario` is one fully-determined experiment: *which* claim
workload (task), on *which* graph (family × parameters), under *which*
adversary (scheduler × adversarial start × fault plan), on *which*
engine, from *which* seed.  Scenarios are frozen, hashable, and
JSON-round-trippable, so campaigns can be enumerated programmatically
(:mod:`repro.campaigns.registry`), sharded across worker processes
(:mod:`repro.campaigns.runner`), checkpointed to JSONL, and resumed —
all without ever re-deriving anything from ambient state.

The :class:`FaultPlan` axis covers the repertoire of
:mod:`repro.faults.injection`:

* ``none`` — pure self-stabilization from the adversarial start;
* ``bursts`` — stabilize first, then repeated transient-fault bursts
  with per-burst recovery measurement (the title application);
* ``storm`` — a :class:`~repro.faults.injection.TransientFaultInjector`
  corrupts nodes at prescribed step times *while* the system is still
  stabilizing;
* ``rewire`` — stabilize, then a dynamic-topology perturbation
  (:func:`~repro.faults.injection.perturb_topology`) rewires edges
  under the carried-over configuration and recovery is measured on the
  new graph;
* ``byzantine`` — permanent faults: ``density`` of the nodes run a
  :mod:`repro.resilience` Byzantine strategy forever and success is
  *containment* (:func:`~repro.analysis.containment.stabilized_outside`
  at the plan's ``radius``) instead of global stabilization;
* ``crash`` — permanent crash-stop faults at step ``times[0]``
  (default 0); measured like ``byzantine``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Callable, Dict, Optional, Tuple

from repro.faults.injection import AU_START_BUILDERS
from repro.model.engine import ENGINE_NAMES
from repro.resilience.strategies import strategy_names
from repro.model.scheduler import (
    EnabledOnlyScheduler,
    LaggardScheduler,
    LocallyCentralScheduler,
    RandomSubsetScheduler,
    RoundRobinScheduler,
    Scheduler,
    ShuffledRoundRobinScheduler,
    SynchronousScheduler,
)

TASKS: Tuple[str, ...] = ("au", "le", "mis")

#: The AU start names: the adversarial battery (single source of truth
#: in :data:`repro.faults.injection.AU_START_BUILDERS`) plus the benign
#: ``uniform`` start.
AU_STARTS: Tuple[str, ...] = tuple(AU_START_BUILDERS) + ("uniform",)
TASK_STARTS: Dict[str, Tuple[str, ...]] = {
    "au": AU_STARTS,
    "le": ("random", "uniform"),
    "mis": ("random", "uniform"),
}

FAULT_KINDS: Tuple[str, ...] = (
    "none",
    "bursts",
    "storm",
    "rewire",
    "byzantine",
    "crash",
)

#: The fault kinds that model *permanent* faults (success means
#: containment, not global stabilization).
PERMANENT_FAULT_KINDS: Tuple[str, ...] = ("byzantine", "crash")

#: Scheduler factories by declarative name.  Factories (not instances):
#: several schedulers are stateful, so every scenario run gets a fresh
#: one.  The ``enabled-only`` / ``locally-central`` entries are the
#: enabled-aware daemon variants riding on the engines' incrementally
#: maintained enabled-set view (see
#: :mod:`repro.model.scheduler` for the daemon taxonomy).
SCHEDULER_FACTORIES: Dict[str, Callable[[], Scheduler]] = {
    "synchronous": SynchronousScheduler,
    "round-robin": RoundRobinScheduler,
    "shuffled-round-robin": ShuffledRoundRobinScheduler,
    "random-subset": lambda: RandomSubsetScheduler(0.5),
    "laggard": lambda: LaggardScheduler(victim=0, period=6),
    "enabled-only": EnabledOnlyScheduler,
    "locally-central": LocallyCentralScheduler,
}


#: Schedulers that consume the engines' enabled view; replica batching
#: excludes them (the fused ensemble pass keeps no per-replica enabled
#: view).  Derived from the factories so a new daemon cannot silently
#: slip into batched runs.
ENABLED_AWARE_SCHEDULERS: Tuple[str, ...] = tuple(
    sorted(
        name
        for name, factory in SCHEDULER_FACTORIES.items()
        if factory().uses_enabled_view
    )
)


def scheduler_names() -> Tuple[str, ...]:
    return tuple(sorted(SCHEDULER_FACTORIES))


def make_scheduler(name: str) -> Scheduler:
    """A fresh scheduler instance for one scenario run."""
    try:
        factory = SCHEDULER_FACTORIES[name]
    except KeyError:
        valid = ", ".join(scheduler_names())
        raise ValueError(
            f"unknown scheduler {name!r}: valid schedulers are {valid}"
        ) from None
    return factory()


@dataclass(frozen=True)
class FaultPlan:
    """The fault axis of a scenario (see the module docstring)."""

    kind: str = "none"
    #: ``bursts`` kind: number of post-stabilization bursts.
    bursts: int = 0
    #: ``bursts``/``storm`` kinds: fraction of nodes corrupted per hit.
    fraction: float = 0.25
    #: ``storm`` kind: step times at which the injector strikes.
    times: Tuple[int, ...] = ()
    #: ``rewire`` kind: edges removed / added by the perturbation.
    remove: int = 0
    add: int = 0
    #: ``byzantine`` kind: a :mod:`repro.resilience` strategy name.
    strategy: str = ""
    #: ``byzantine``/``crash`` kinds: fraction of permanently faulty
    #: nodes (at least one node, always leaving one correct).
    density: float = 0.0
    #: ``byzantine``/``crash`` kinds: the containment target — the run
    #: succeeds when every correct node at hop distance > ``radius``
    #: from the faulty set is stably clean.
    radius: int = 2

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            valid = ", ".join(FAULT_KINDS)
            raise ValueError(
                f"unknown fault kind {self.kind!r}: valid kinds are {valid}"
            )
        if self.kind == "bursts" and self.bursts < 1:
            raise ValueError("bursts fault plan needs bursts >= 1")
        if self.kind == "storm" and not self.times:
            raise ValueError("storm fault plan needs at least one strike time")
        if self.kind == "rewire":
            if self.remove < 0 or self.add < 0:
                raise ValueError("rewire edge counts must be non-negative")
            if self.remove + self.add < 1:
                raise ValueError("rewire fault plan must change at least one edge")
        if self.kind in ("bursts", "storm") and not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fault fraction must be in (0, 1], got {self.fraction}")
        if self.kind == "byzantine":
            if self.strategy == "crash":
                raise ValueError(
                    "crash-stop faults have their own kind: use "
                    "FaultPlan(kind='crash', ...) so the crash time in "
                    "`times` is honored"
                )
            if self.strategy not in strategy_names():
                valid = ", ".join(
                    name for name in strategy_names() if name != "crash"
                )
                raise ValueError(
                    f"unknown Byzantine strategy {self.strategy!r}: valid "
                    f"strategies are {valid}"
                )
        if self.kind in PERMANENT_FAULT_KINDS:
            if not 0.0 < self.density < 1.0:
                raise ValueError(
                    f"permanent-fault density must be in (0, 1), got {self.density}"
                )
            if self.radius < 0:
                raise ValueError("containment radius must be >= 0")
        if self.kind == "crash" and len(self.times) > 1:
            raise ValueError("crash fault plan takes at most one crash time")
        object.__setattr__(self, "times", tuple(int(t) for t in self.times))

    @property
    def label(self) -> str:
        if self.kind == "none":
            return "none"
        if self.kind == "bursts":
            return f"bursts(x{self.bursts}@{self.fraction:.2f})"
        if self.kind == "storm":
            return f"storm(x{len(self.times)}@{self.fraction:.2f})"
        if self.kind == "byzantine":
            return f"byz-{self.strategy}(d={self.density:.2f},r={self.radius})"
        if self.kind == "crash":
            at = self.times[0] if self.times else 0
            return f"crash(d={self.density:.2f},t={at},r={self.radius})"
        return f"rewire(-{self.remove}+{self.add})"


NO_FAULTS = FaultPlan()


@dataclass(frozen=True)
class Scenario:
    """One fully-determined experiment of a campaign."""

    campaign: str
    index: int
    task: str
    graph: str
    graph_params: Tuple[Tuple[str, object], ...]
    diameter_bound: int
    scheduler: str
    engine: str
    start: str
    seed: int
    max_rounds: int
    faults: FaultPlan = NO_FAULTS
    #: Aggregation group (one sweep point, e.g. ``"D=3"``); scenarios
    #: sharing a group are folded into one summary row.
    group: str = ""
    #: Free-form registry labels (e.g. ``(("trial", "2"),)``) carried
    #: through to result rows so benchmarks can re-fold along their own
    #: axes.
    tags: Tuple[Tuple[str, str], ...] = ()
    #: Replica-batching width.  ``1`` (default) runs the scenario solo;
    #: ``>= 2`` marks it eligible for the runner's replica-batched
    #: path: scenarios whose specs differ *only by seed* (same
    #: :meth:`batch_key`) are fused into
    #: :class:`~repro.model.replica_engine.ReplicaBatchExecution`
    #: ensembles of at most this many replicas.  Batching is a pure
    #: execution strategy — per-replica results are bit-identical to
    #: solo runs — so the value never enters ``scenario_id`` or the
    #: aggregates.  Only fault-free AU scenarios on the vectorized
    #: engines under oblivious schedulers qualify.
    batch_replicas: int = 1

    def __post_init__(self) -> None:
        if self.task not in TASKS:
            raise ValueError(
                f"unknown task {self.task!r}: valid tasks are "
                f"{', '.join(TASKS)}"
            )
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r}: valid engine names are "
                f"{', '.join(ENGINE_NAMES)}"
            )
        if self.task != "au" and self.engine != "object":
            raise ValueError(
                f"task {self.task!r} runs on the object engine only (the "
                f"array backend vectorizes AlgAU)"
            )
        if self.scheduler not in SCHEDULER_FACTORIES:
            valid = ", ".join(scheduler_names())
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}: valid schedulers "
                f"are {valid}"
            )
        starts = TASK_STARTS[self.task]
        if self.start not in starts:
            raise ValueError(
                f"start {self.start!r} is not defined for task "
                f"{self.task!r}: valid starts are {', '.join(starts)}"
            )
        if self.task != "au" and self.faults.kind != "none":
            raise ValueError(
                "fault plans are defined for the AU task only "
                "(LE/MIS recovery is exercised through the synchronizer)"
            )
        if self.diameter_bound < 1:
            raise ValueError("diameter bound must be >= 1")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.batch_replicas < 1:
            raise ValueError(
                f"batch_replicas must be >= 1, got {self.batch_replicas}"
            )
        if self.batch_replicas > 1:
            if self.task != "au":
                raise ValueError(
                    "replica batching vectorizes the AU task only; "
                    f"task {self.task!r} cannot set batch_replicas > 1"
                )
            if self.faults.kind != "none":
                raise ValueError(
                    "replica batching covers fault-free scenarios only "
                    f"(got fault kind {self.faults.kind!r}); faulted "
                    "scenarios keep the per-scenario engines"
                )
            if self.engine == "object":
                raise ValueError(
                    "replica batching rides the vectorized backends; use "
                    "engine='array' or 'replica-batch' with "
                    "batch_replicas > 1"
                )
            if self.scheduler in ENABLED_AWARE_SCHEDULERS:
                raise ValueError(
                    f"scheduler {self.scheduler!r} consumes the per-replica "
                    "enabled view, which the fused replica batch does not "
                    "maintain; batched scenarios need an oblivious scheduler"
                )
        object.__setattr__(
            self,
            "graph_params",
            tuple((str(k), v) for k, v in self.graph_params),
        )
        object.__setattr__(self, "tags", tuple((str(k), str(v)) for k, v in self.tags))

    @property
    def scenario_id(self) -> str:
        """Stable unique identifier — the checkpoint/resume key."""
        params = ",".join(f"{k}={v}" for k, v in self.graph_params)
        return (
            f"{self.campaign}/{self.index:04d}:{self.task}"
            f"@{self.graph}[{params}]"
            f"/D{self.diameter_bound}/{self.scheduler}/{self.start}"
            f"/{self.engine}/{self.faults.label}/s{self.seed}"
        )

    def batch_key(self) -> Tuple:
        """The replica-batching equivalence key: every axis that shapes
        the execution *except* the seed (and the labels — ``group``/
        ``tags`` — that only shape aggregation).  Scenarios sharing a
        key are the same experiment at different seeds, which is exactly
        what one :class:`~repro.model.replica_engine.ReplicaBatchExecution`
        ensemble runs."""
        return (
            self.campaign,
            self.task,
            self.graph,
            self.graph_params,
            self.diameter_bound,
            self.scheduler,
            self.engine,
            self.start,
            self.max_rounds,
            self.faults,
            self.batch_replicas,
        )

    def params(self) -> Dict[str, object]:
        return dict(self.graph_params)

    def tag(self, key: str, default: Optional[str] = None) -> Optional[str]:
        return dict(self.tags).get(key, default)

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["graph_params"] = [list(pair) for pair in self.graph_params]
        data["tags"] = [list(pair) for pair in self.tags]
        data["faults"] = asdict(self.faults)
        data["faults"]["times"] = list(self.faults.times)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Scenario":
        payload = dict(data)
        payload["graph_params"] = tuple(
            (k, v) for k, v in payload.get("graph_params", ())
        )
        payload["tags"] = tuple((k, v) for k, v in payload.get("tags", ()))
        faults = payload.get("faults", {})
        if isinstance(faults, dict):
            faults = dict(faults)
            faults["times"] = tuple(faults.get("times", ()))
            payload["faults"] = FaultPlan(**faults)
        return cls(**payload)


@dataclass(frozen=True)
class ScenarioResult:
    """The measured outcome of one scenario run.

    ``elapsed_ms`` is wall-clock and therefore excluded from campaign
    aggregates (which must be bit-identical across worker counts); it
    survives only in the JSONL checkpoint stream.
    """

    scenario_id: str
    index: int
    group: str
    stabilized: bool
    rounds: int
    steps: int
    n: int
    m: int
    recovered: Optional[bool] = None
    recovery_rounds: Optional[int] = None
    #: Permanent-fault kinds only: measured containment radius (worst
    #: over the confirmation window) and fraction of correct nodes
    #: clean at every boundary of that window (the same "settled"
    #: semantics as ``ContainmentMeasurement.clean_fraction``).
    containment_radius: Optional[int] = None
    clean_fraction: Optional[float] = None
    detail: str = ""
    tags: Tuple[Tuple[str, str], ...] = ()
    elapsed_ms: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "tags", tuple((str(k), str(v)) for k, v in self.tags))

    def tag(self, key: str, default: Optional[str] = None) -> Optional[str]:
        return dict(self.tags).get(key, default)

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["tags"] = [list(pair) for pair in self.tags]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioResult":
        payload = dict(data)
        payload["tags"] = tuple((k, v) for k, v in payload.get("tags", ()))
        known = {f.name for f in fields(cls)}
        payload = {k: v for k, v in payload.items() if k in known}
        return cls(**payload)
