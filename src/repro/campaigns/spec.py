"""Declarative scenario specifications.

A :class:`Scenario` is one fully-determined experiment: *which* claim
workload (task), on *which* graph (family × parameters), under *which*
adversary (scheduler × adversarial start × fault plan), on *which*
engine, from *which* seed.  Scenarios are frozen, hashable, and
JSON-round-trippable, so campaigns can be enumerated programmatically
(:mod:`repro.campaigns.registry`), sharded across worker processes
(:mod:`repro.campaigns.runner`), checkpointed to JSONL, and resumed —
all without ever re-deriving anything from ambient state.

The :class:`FaultPlan` axis covers the repertoire of
:mod:`repro.faults.injection`:

* ``none`` — pure self-stabilization from the adversarial start;
* ``bursts`` — stabilize first, then repeated transient-fault bursts
  with per-burst recovery measurement (the title application);
* ``storm`` — a :class:`~repro.faults.injection.TransientFaultInjector`
  corrupts nodes at prescribed step times *while* the system is still
  stabilizing;
* ``rewire`` — stabilize, then a dynamic-topology perturbation
  (:func:`~repro.faults.injection.perturb_topology`) rewires edges
  under the carried-over configuration and recovery is measured on the
  new graph;
* ``byzantine`` — permanent faults: ``density`` of the nodes run a
  :mod:`repro.resilience` Byzantine strategy forever and success is
  *containment* (:func:`~repro.analysis.containment.stabilized_outside`
  at the plan's ``radius``) instead of global stabilization;
* ``crash`` — permanent crash-stop faults at step ``times[0]``
  (default 0); measured like ``byzantine``.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, fields
from typing import Callable, Dict, Optional, Tuple

from repro.faults.injection import AU_START_BUILDERS
from repro.model.engine import ENGINE_NAMES
from repro.resilience.strategies import strategy_names
from repro.model.scheduler import (
    EnabledOnlyScheduler,
    LaggardScheduler,
    LocallyCentralScheduler,
    RandomSubsetScheduler,
    RoundRobinScheduler,
    Scheduler,
    ShuffledRoundRobinScheduler,
    SynchronousScheduler,
)

TASKS: Tuple[str, ...] = ("au", "le", "mis")

#: All engine names, for algorithm capability declarations.
ALL_ENGINES: Tuple[str, ...] = tuple(ENGINE_NAMES)

#: The AU start names: the adversarial battery (single source of truth
#: in :data:`repro.faults.injection.AU_START_BUILDERS`) plus the benign
#: ``uniform`` start.
AU_STARTS: Tuple[str, ...] = tuple(AU_START_BUILDERS) + ("uniform",)
TASK_STARTS: Dict[str, Tuple[str, ...]] = {
    "au": AU_STARTS,
    "le": ("random", "uniform", "ids"),
    "mis": ("random", "uniform", "ids"),
}

FAULT_KINDS: Tuple[str, ...] = (
    "none",
    "bursts",
    "storm",
    "rewire",
    "byzantine",
    "crash",
    "churn",
    "membership",
)

#: The fault kinds that model a *dynamic topology* (the graph itself is
#: the adversary): ``churn`` = seeded edge add/remove churn over a fixed
#: node set, ``membership`` = nodes joining with fresh state and leaving
#: as tombstones.  Both run through the engines' incremental
#: ``mutate_topology`` and the :class:`~repro.faults.churn.ChurnProcess`.
DYNAMIC_FAULT_KINDS: Tuple[str, ...] = ("churn", "membership")

#: The fault kinds that model *permanent* faults (success means
#: containment, not global stabilization).
PERMANENT_FAULT_KINDS: Tuple[str, ...] = ("byzantine", "crash")

#: The runtime axis: ``sim`` runs the scenario on a shared-memory
#: simulation engine (every pre-existing campaign), ``net`` runs it on
#: the message-passing deployment runtime of :mod:`repro.net` (same
#: engine name for the activation parity stream, plus the ``net_params``
#: link knobs).
RUNTIMES: Tuple[str, ...] = ("sim", "net")

#: Valid ``net_params`` keys — the :class:`repro.net.links.LinkConfig`
#: knobs a campaign spec may set (all in slot units / probabilities).
NET_PARAM_KEYS: Tuple[str, ...] = ("delay", "jitter", "loss", "duplicate")

#: Fault kinds the net runtime supports: permanent faults map onto
#: actor-level faults (crash = silenced timers, byzantine = omniscient
#: register rewrites); dynamic-topology kinds map deltas onto link
#: creation/teardown and actor spawn/stop; the transient kinds would
#: need a semantics for in-flight messages that the differential
#: contract does not cover yet.
NET_FAULT_KINDS: Tuple[str, ...] = (
    "none",
    "byzantine",
    "crash",
    "churn",
    "membership",
)

#: Scheduler factories by declarative name.  Factories (not instances):
#: several schedulers are stateful, so every scenario run gets a fresh
#: one.  The ``enabled-only`` / ``locally-central`` entries are the
#: enabled-aware daemon variants riding on the engines' incrementally
#: maintained enabled-set view (see
#: :mod:`repro.model.scheduler` for the daemon taxonomy).
SCHEDULER_FACTORIES: Dict[str, Callable[[], Scheduler]] = {
    "synchronous": SynchronousScheduler,
    "round-robin": RoundRobinScheduler,
    "shuffled-round-robin": ShuffledRoundRobinScheduler,
    "random-subset": lambda: RandomSubsetScheduler(0.5),
    "laggard": lambda: LaggardScheduler(victim=0, period=6),
    "enabled-only": EnabledOnlyScheduler,
    "locally-central": LocallyCentralScheduler,
}


#: Schedulers that consume the engines' enabled view; replica batching
#: excludes them (the fused ensemble pass keeps no per-replica enabled
#: view).  Derived from the factories so a new daemon cannot silently
#: slip into batched runs.
ENABLED_AWARE_SCHEDULERS: Tuple[str, ...] = tuple(
    sorted(
        name
        for name, factory in SCHEDULER_FACTORIES.items()
        if factory().uses_enabled_view
    )
)


def scheduler_names() -> Tuple[str, ...]:
    """All registered scheduler names, sorted."""
    return tuple(sorted(SCHEDULER_FACTORIES))


def make_scheduler(name: str) -> Scheduler:
    """A fresh scheduler instance for one scenario run."""
    try:
        factory = SCHEDULER_FACTORIES[name]
    except KeyError:
        valid = ", ".join(scheduler_names())
        raise ValueError(
            f"unknown scheduler {name!r}: valid schedulers are {valid}"
        ) from None
    return factory()


# ----------------------------------------------------------------------
# The algorithm axis.
# ----------------------------------------------------------------------

_ALL_SCHEDULERS: Tuple[str, ...] = tuple(sorted(SCHEDULER_FACTORIES))


def _thin_unison(diameter_bound: int, n_hint: int):
    from repro.core.algau import ThinUnison

    return ThinUnison(diameter_bound)


def _alg_le(diameter_bound: int, n_hint: int):
    from repro.tasks.le import AlgLE

    return AlgLE(diameter_bound)


def _alg_mis(diameter_bound: int, n_hint: int):
    from repro.tasks.mis import AlgMIS

    return AlgMIS(diameter_bound)


def _min_unison(diameter_bound: int, n_hint: int):
    from repro.baselines.min_unison import MinUnison

    return MinUnison()


def _reset_tail_unison(diameter_bound: int, n_hint: int):
    from repro.baselines.reset_tail_unison import ResetTailUnison

    return ResetTailUnison.for_diameter_bound(diameter_bound)


def _failed_reset_unison(diameter_bound: int, n_hint: int):
    from repro.baselines.failed_reset_au import FailedResetUnison

    return FailedResetUnison(diameter_bound)


def _id_flood_le(diameter_bound: int, n_hint: int):
    from repro.baselines.id_flood_le import IDFloodLE

    return IDFloodLE(n_hint)


def _id_greedy_mis(diameter_bound: int, n_hint: int):
    from repro.baselines.luby_mis import IDGreedyMIS

    return IDGreedyMIS(n_hint)


def _luby_mis(diameter_bound: int, n_hint: int):
    from repro.baselines.luby_mis import LubyTrialMIS

    return LubyTrialMIS()


def _min_unison_stable(algorithm, configuration) -> bool:
    from repro.baselines.min_unison import min_unison_stable

    return min_unison_stable(configuration)


def _reset_tail_stable(algorithm, configuration) -> bool:
    from repro.baselines.reset_tail_unison import reset_tail_stable

    return reset_tail_stable(algorithm, configuration)


def _failed_reset_stable(algorithm, configuration) -> bool:
    from repro.baselines.failed_reset_au import failed_reset_stable

    return failed_reset_stable(algorithm, configuration)


@dataclass(frozen=True)
class AlgorithmSpec:
    """Capability declaration for one :data:`ALGORITHM_FACTORIES` entry.

    The declaration is the single source of truth for spec-time
    validation: a :class:`Scenario` naming this algorithm must stay
    within the declared ``engines`` / ``schedulers`` / ``starts`` /
    ``fault_kinds``, and may set ``batch_replicas > 1`` only when
    ``batchable`` is true.  ``factory`` builds a fresh algorithm
    instance from ``(diameter_bound, n_hint)`` — algorithms that ignore
    one of the two simply discard it.
    """

    #: Registry name (the ``Scenario.algorithm`` axis value).
    name: str
    #: The task whose correctness oracle applies (``au``/``le``/``mis``).
    task: str
    #: ``(diameter_bound, n_hint) -> Algorithm`` builder.
    factory: Callable[[int, int], object]
    #: Engine names the algorithm can run on (object always included;
    #: ``array`` only with a vectorized kernel lane, differentially
    #: tested against the object engine).
    engines: Tuple[str, ...]
    #: Daemon names the algorithm is defined under.
    schedulers: Tuple[str, ...]
    #: Start names the algorithm supports (``ids`` = the algorithm's
    #: own :meth:`initial_configuration` with per-node unique IDs).
    starts: Tuple[str, ...]
    #: Fault kinds the runner may impose on this algorithm.
    fault_kinds: Tuple[str, ...]
    #: Whether the algorithm self-stabilizes from *arbitrary* states
    #: (informational; shown by ``repro algorithms`` and the docs).
    self_stabilizing: bool = True
    #: Whether replica-batched ensembles (PR 5/6) support it.
    batchable: bool = False
    #: Human-readable ``|Q|`` formula for tables (``D`` = diameter
    #: bound, ``n`` = node count).
    state_bits_formula: str = ""
    #: One-line description for ``repro algorithms`` and the docs.
    summary: str = ""
    #: AU-task stabilization predicate ``(algorithm, configuration) ->
    #: bool``; ``None`` means the engine's ``graph_is_good`` fast path
    #: (thin unison only).
    stable: Optional[Callable[[object, object], bool]] = field(
        default=None, compare=False
    )

    def make(self, diameter_bound: int, n_hint: int = 0):
        """A fresh algorithm instance for one scenario run."""
        return self.factory(diameter_bound, n_hint)

    def state_bits(self, diameter_bound: int, n_hint: int = 0) -> Optional[float]:
        """Exact bits per node, ``log2 |Q|`` from the declared state
        space; ``None`` when the state space is unbounded."""
        algorithm = self.make(diameter_bound, max(n_hint, 1))
        try:
            size = algorithm.state_space_size()
        except NotImplementedError:
            return None
        return math.log2(size)

    def coverage(self) -> int:
        """Scenario-axis generality: the number of supported start and
        fault-kind values, plus one for the self-stabilization
        guarantee.

        The Pareto aggregation uses this as a fourth frontier axis
        (maximized): a baseline that wins time/space/work only by
        giving up adversarial starts, fault tolerance, or
        self-stabilization itself — the Figure 2 strawman is fastest
        *and* thinnest from benign random starts — must not dominate
        an algorithm that keeps those guarantees.  That trade is the
        paper's Sec. 5 comparison, made literal.
        """
        return (
            len(self.starts)
            + len(self.fault_kinds)
            + int(self.self_stabilizing)
        )


#: The algorithm axis registry, mirroring :data:`ENGINE_FACTORIES` /
#: :data:`SCHEDULER_FACTORIES`: adding an entry here is the only step
#: needed to make an algorithm a campaign axis (capability validation,
#: ``repro algorithms``, and the docs drift test all derive from it).
ALGORITHM_FACTORIES: Dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in (
        AlgorithmSpec(
            name="thin-unison",
            task="au",
            factory=_thin_unison,
            engines=ALL_ENGINES,
            schedulers=_ALL_SCHEDULERS,
            starts=AU_STARTS,
            fault_kinds=FAULT_KINDS,
            self_stabilizing=True,
            batchable=True,
            state_bits_formula="log2(12D+6)",
            summary=(
                "The paper's AlgAU: constant state per node "
                "(|Q| = 12D+6), every engine tier and fault kind."
            ),
        ),
        AlgorithmSpec(
            name="alg-le",
            task="le",
            factory=_alg_le,
            engines=("object",),
            schedulers=_ALL_SCHEDULERS,
            starts=("random", "uniform"),
            fault_kinds=("none",),
            self_stabilizing=True,
            state_bits_formula="log2 |Q_LE(D)|",
            summary=(
                "The paper's leader election composed over the AU "
                "synchronizer (Theorem 13)."
            ),
        ),
        AlgorithmSpec(
            name="alg-mis",
            task="mis",
            factory=_alg_mis,
            engines=("object",),
            schedulers=_ALL_SCHEDULERS,
            starts=("random", "uniform"),
            fault_kinds=("none",),
            self_stabilizing=True,
            state_bits_formula="log2 |Q_MIS(D)|",
            summary=(
                "The paper's maximal independent set composed over the "
                "AU synchronizer (Theorem 14)."
            ),
        ),
        AlgorithmSpec(
            name="min-unison",
            task="au",
            factory=_min_unison,
            engines=("object",),
            schedulers=_ALL_SCHEDULERS,
            starts=("random", "uniform"),
            fault_kinds=("none",),
            self_stabilizing=True,
            state_bits_formula="unbounded",
            summary=(
                "Textbook min-increment unison over unbounded counters: "
                "fast, but no finite state space."
            ),
            stable=_min_unison_stable,
        ),
        AlgorithmSpec(
            name="reset-tail-unison",
            task="au",
            factory=_reset_tail_unison,
            engines=("object", "array"),
            schedulers=_ALL_SCHEDULERS,
            starts=("random", "uniform"),
            fault_kinds=("none",),
            self_stabilizing=True,
            state_bits_formula="log2(8D+6)",
            summary=(
                "Reset-wave unison with a climb-out tail (|Q| = 8D+6): "
                "fewer bits than AlgAU, paid for in reset-wave moves."
            ),
            stable=_reset_tail_stable,
        ),
        AlgorithmSpec(
            name="failed-reset-unison",
            task="au",
            factory=_failed_reset_unison,
            engines=("object",),
            schedulers=_ALL_SCHEDULERS,
            starts=("random", "uniform"),
            fault_kinds=("none",),
            self_stabilizing=False,
            state_bits_formula="log2(4D+2)",
            summary=(
                "The Figure 2 strawman: global reset waves with too few "
                "reset phases — livelocks under adversarial daemons."
            ),
            stable=_failed_reset_stable,
        ),
        AlgorithmSpec(
            name="id-flood-le",
            task="le",
            factory=_id_flood_le,
            engines=("object",),
            schedulers=_ALL_SCHEDULERS,
            starts=("ids",),
            fault_kinds=("none",),
            self_stabilizing=False,
            state_bits_formula="2*log2(n)",
            summary=(
                "Max-ID flooding leader election: needs unique IDs "
                "(the `ids` start), |Q| = n^2."
            ),
        ),
        AlgorithmSpec(
            name="id-greedy-mis",
            task="mis",
            factory=_id_greedy_mis,
            engines=("object",),
            schedulers=_ALL_SCHEDULERS,
            starts=("ids",),
            fault_kinds=("none",),
            self_stabilizing=False,
            state_bits_formula="log2(3n)",
            summary=(
                "Greedy local-minimum-ID MIS: needs unique IDs "
                "(the `ids` start), |Q| = 3n."
            ),
        ),
        AlgorithmSpec(
            name="luby-mis",
            task="mis",
            factory=_luby_mis,
            engines=("object",),
            schedulers=_ALL_SCHEDULERS,
            # Uniform (all-undecided) starts only: a random start can
            # contain adjacent decided-IN nodes, and decisions are
            # forever — there is no detection to recover from them.
            starts=("uniform",),
            fault_kinds=("none",),
            self_stabilizing=False,
            state_bits_formula="log2(12)",
            summary=(
                "Randomized Luby-style trial MIS: constant state, "
                "unsound under asynchrony by design (tie-blind)."
            ),
        ),
    )
}

#: The algorithm a task runs when a scenario leaves ``algorithm`` empty
#: — the paper's own algorithm for each task, so every pre-existing
#: campaign spec keeps meaning exactly what it meant.
DEFAULT_ALGORITHMS: Dict[str, str] = {
    "au": "thin-unison",
    "le": "alg-le",
    "mis": "alg-mis",
}


def algorithm_names() -> Tuple[str, ...]:
    """All registered algorithm names, sorted."""
    return tuple(sorted(ALGORITHM_FACTORIES))


def algorithm_spec(name: str) -> AlgorithmSpec:
    """The capability declaration for ``name``, with a clear error."""
    try:
        return ALGORITHM_FACTORIES[name]
    except KeyError:
        valid = ", ".join(algorithm_names())
        raise ValueError(
            f"unknown algorithm {name!r}: valid algorithms are {valid}"
        ) from None


@dataclass(frozen=True)
class FaultPlan:
    """The fault axis of a scenario (see the module docstring)."""

    kind: str = "none"
    #: ``bursts`` kind: number of post-stabilization bursts.
    bursts: int = 0
    #: ``bursts``/``storm`` kinds: fraction of nodes corrupted per hit.
    fraction: float = 0.25
    #: ``storm`` kind: step times at which the injector strikes.
    times: Tuple[int, ...] = ()
    #: ``rewire`` kind: edges removed / added by the perturbation.
    remove: int = 0
    add: int = 0
    #: ``byzantine`` kind: a :mod:`repro.resilience` strategy name.
    strategy: str = ""
    #: ``byzantine``/``crash`` kinds: fraction of permanently faulty
    #: nodes (at least one node, always leaving one correct).
    density: float = 0.0
    #: ``byzantine``/``crash`` kinds: the containment target — the run
    #: succeeds when every correct node at hop distance > ``radius``
    #: from the faulty set is stably clean.
    radius: int = 2
    #: ``churn``/``membership`` kinds: expected topology events per step
    #: during the churn window, split evenly between the two event
    #: directions (add/remove edges, join/leave nodes).  The window
    #: length in steps rides in ``times`` as its single entry; churn
    #: starts once the run first stabilizes.
    rate: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            valid = ", ".join(FAULT_KINDS)
            raise ValueError(
                f"unknown fault kind {self.kind!r}: valid kinds are {valid}"
            )
        if self.kind == "bursts" and self.bursts < 1:
            raise ValueError("bursts fault plan needs bursts >= 1")
        if self.kind == "storm" and not self.times:
            raise ValueError("storm fault plan needs at least one strike time")
        if self.kind == "rewire":
            if self.remove < 0 or self.add < 0:
                raise ValueError("rewire edge counts must be non-negative")
            if self.remove + self.add < 1:
                raise ValueError("rewire fault plan must change at least one edge")
        if self.kind in ("bursts", "storm") and not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fault fraction must be in (0, 1], got {self.fraction}")
        if self.kind == "byzantine":
            if self.strategy == "crash":
                raise ValueError(
                    "crash-stop faults have their own kind: use "
                    "FaultPlan(kind='crash', ...) so the crash time in "
                    "`times` is honored"
                )
            if self.strategy not in strategy_names():
                valid = ", ".join(
                    name for name in strategy_names() if name != "crash"
                )
                raise ValueError(
                    f"unknown Byzantine strategy {self.strategy!r}: valid "
                    f"strategies are {valid}"
                )
        if self.kind in PERMANENT_FAULT_KINDS:
            if not 0.0 < self.density < 1.0:
                raise ValueError(
                    f"permanent-fault density must be in (0, 1), got {self.density}"
                )
            if self.radius < 0:
                raise ValueError("containment radius must be >= 0")
        if self.kind == "crash" and len(self.times) > 1:
            raise ValueError("crash fault plan takes at most one crash time")
        if self.kind in DYNAMIC_FAULT_KINDS:
            if not self.rate > 0.0:
                raise ValueError(
                    f"{self.kind} fault plan needs rate > 0 (expected "
                    f"topology events per step), got {self.rate}"
                )
            if len(self.times) != 1 or self.times[0] < 1:
                raise ValueError(
                    f"{self.kind} fault plan needs times=(window,) with a "
                    f"churn-window length of at least one step, got "
                    f"{self.times}"
                )
        elif self.rate:
            raise ValueError(
                f"rate only applies to the dynamic-topology kinds "
                f"({', '.join(DYNAMIC_FAULT_KINDS)}); {self.kind} plans "
                "must leave it at 0"
            )
        object.__setattr__(self, "times", tuple(int(t) for t in self.times))

    @property
    def label(self) -> str:
        """A compact human-readable tag for aggregate rows."""
        if self.kind == "none":
            return "none"
        if self.kind == "bursts":
            return f"bursts(x{self.bursts}@{self.fraction:.2f})"
        if self.kind == "storm":
            return f"storm(x{len(self.times)}@{self.fraction:.2f})"
        if self.kind == "byzantine":
            return f"byz-{self.strategy}(d={self.density:.2f},r={self.radius})"
        if self.kind == "crash":
            at = self.times[0] if self.times else 0
            return f"crash(d={self.density:.2f},t={at},r={self.radius})"
        if self.kind in DYNAMIC_FAULT_KINDS:
            return f"{self.kind}(r={self.rate:g},w={self.times[0]})"
        return f"rewire(-{self.remove}+{self.add})"


NO_FAULTS = FaultPlan()


#: Version salt folded into every :meth:`Scenario.content_hash`.  Bump
#: it whenever the *meaning* of a spec field changes (a new axis with a
#: non-neutral default, a semantic change to an existing axis, a fault
#: plan re-interpretation): the bump invalidates every cached result at
#: once, which is always correct and never subtle.  Purely additive
#: axes whose defaults reproduce the old behavior do NOT need a bump —
#: the canonical payload includes them, so old hashes simply coexist
#: with new ones.
#:
#: Version 2: ``perturb_topology`` switched from permutation/sorted
#: non-edge enumeration to rejection sampling, changing the rng draws —
#: every ``rewire`` result (and, conservatively, every cached row)
#: predating the switch is invalidated.
CONTENT_HASH_VERSION = 2


@dataclass(frozen=True)
class Scenario:
    """One fully-determined experiment of a campaign."""

    campaign: str
    index: int
    task: str
    graph: str
    graph_params: Tuple[Tuple[str, object], ...]
    diameter_bound: int
    scheduler: str
    engine: str
    start: str
    seed: int
    max_rounds: int
    faults: FaultPlan = NO_FAULTS
    #: Aggregation group (one sweep point, e.g. ``"D=3"``); scenarios
    #: sharing a group are folded into one summary row.
    group: str = ""
    #: Free-form registry labels (e.g. ``(("trial", "2"),)``) carried
    #: through to result rows so benchmarks can re-fold along their own
    #: axes.
    tags: Tuple[Tuple[str, str], ...] = ()
    #: Replica-batching width.  ``1`` (default) runs the scenario solo;
    #: ``>= 2`` marks it eligible for the runner's replica-batched
    #: path: scenarios whose specs differ *only by seed* (same
    #: :meth:`batch_key`) are fused into
    #: :class:`~repro.model.replica_engine.ReplicaBatchExecution`
    #: ensembles of at most this many replicas.  Batching is a pure
    #: execution strategy — per-replica results are bit-identical to
    #: solo runs — so the value never enters ``scenario_id`` or the
    #: aggregates.  Only fault-free AU scenarios on the vectorized
    #: engines under oblivious schedulers qualify.
    batch_replicas: int = 1
    #: The algorithm axis: an :data:`ALGORITHM_FACTORIES` name.  The
    #: empty default resolves to the task's paper algorithm
    #: (:data:`DEFAULT_ALGORITHMS`), so pre-existing specs are
    #: unchanged.  Every other axis is validated against the
    #: algorithm's :class:`AlgorithmSpec` capability declaration.
    algorithm: str = ""
    #: The runtime lane (:data:`RUNTIMES`).  ``sim`` (default) is the
    #: shared-memory simulation; ``net`` runs the same spec on the
    #: asyncio message-passing runtime — the ``engine`` axis then names
    #: the sim engine whose activation/adversary RNG stream the net lane
    #: mirrors, which is what makes zero-noise net rows bit-comparable
    #: to their sim twins.
    runtime: str = "sim"
    #: Link knobs for the ``net`` runtime, as ``(key, value)`` pairs
    #: with keys from :data:`NET_PARAM_KEYS` (empty = ideal links, the
    #: differential-parity configuration).  Must be empty on ``sim``.
    net_params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.task not in TASKS:
            raise ValueError(
                f"unknown task {self.task!r}: valid tasks are "
                f"{', '.join(TASKS)}"
            )
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r}: valid engine names are "
                f"{', '.join(ENGINE_NAMES)}"
            )
        if self.scheduler not in SCHEDULER_FACTORIES:
            valid = ", ".join(scheduler_names())
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}: valid schedulers "
                f"are {valid}"
            )
        starts = TASK_STARTS[self.task]
        if self.start not in starts:
            raise ValueError(
                f"start {self.start!r} is not defined for task "
                f"{self.task!r}: valid starts are {', '.join(starts)}"
            )
        if not self.algorithm:
            object.__setattr__(self, "algorithm", DEFAULT_ALGORITHMS[self.task])
        spec = algorithm_spec(self.algorithm)
        if spec.task != self.task:
            raise ValueError(
                f"algorithm {self.algorithm!r} implements task "
                f"{spec.task!r}, not {self.task!r}"
            )
        if self.engine not in spec.engines:
            raise ValueError(
                f"algorithm {self.algorithm!r} does not support engine "
                f"{self.engine!r}: supported engines are "
                f"{', '.join(spec.engines)}"
            )
        if self.scheduler not in spec.schedulers:
            raise ValueError(
                f"algorithm {self.algorithm!r} is not defined under "
                f"scheduler {self.scheduler!r}: supported schedulers are "
                f"{', '.join(spec.schedulers)}"
            )
        if self.start not in spec.starts:
            raise ValueError(
                f"algorithm {self.algorithm!r} does not support start "
                f"{self.start!r}: supported starts are "
                f"{', '.join(spec.starts)}"
            )
        if self.faults.kind not in spec.fault_kinds:
            raise ValueError(
                f"algorithm {self.algorithm!r} does not support fault "
                f"kind {self.faults.kind!r}: supported kinds are "
                f"{', '.join(spec.fault_kinds)}"
            )
        if self.batch_replicas > 1 and not spec.batchable:
            raise ValueError(
                f"algorithm {self.algorithm!r} does not support "
                "replica-batched ensembles; only batchable algorithms "
                "(thin-unison) can set batch_replicas > 1"
            )
        if self.diameter_bound < 1:
            raise ValueError("diameter bound must be >= 1")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.batch_replicas < 1:
            raise ValueError(
                f"batch_replicas must be >= 1, got {self.batch_replicas}"
            )
        if self.batch_replicas > 1:
            if self.task != "au":
                raise ValueError(
                    "replica batching vectorizes the AU task only; "
                    f"task {self.task!r} cannot set batch_replicas > 1"
                )
            if self.faults.kind != "none":
                raise ValueError(
                    "replica batching covers fault-free scenarios only "
                    f"(got fault kind {self.faults.kind!r}); faulted "
                    "scenarios keep the per-scenario engines"
                )
            if self.engine == "object":
                raise ValueError(
                    "replica batching rides the vectorized backends; use "
                    "engine='array' or 'replica-batch' with "
                    "batch_replicas > 1"
                )
            if self.scheduler in ENABLED_AWARE_SCHEDULERS:
                raise ValueError(
                    f"scheduler {self.scheduler!r} consumes the per-replica "
                    "enabled view, which the fused replica batch does not "
                    "maintain; batched scenarios need an oblivious scheduler"
                )
        if self.runtime not in RUNTIMES:
            raise ValueError(
                f"unknown runtime {self.runtime!r}: valid runtimes are "
                f"{', '.join(RUNTIMES)}"
            )
        net_params = tuple((str(k), float(v)) for k, v in self.net_params)
        if self.runtime == "net":
            if self.task != "au" or self.algorithm != "thin-unison":
                raise ValueError(
                    "the net runtime carries constant-size encoded AlgAU "
                    f"clock messages; task {self.task!r} / algorithm "
                    f"{self.algorithm!r} has no net lane (use "
                    "task='au' with thin-unison)"
                )
            if self.scheduler in ENABLED_AWARE_SCHEDULERS:
                raise ValueError(
                    f"scheduler {self.scheduler!r} consumes the enabled "
                    "view, which the net runtime cannot provide (a timer "
                    "cannot see remote enabledness); use an oblivious daemon"
                )
            if self.faults.kind not in NET_FAULT_KINDS:
                raise ValueError(
                    f"fault kind {self.faults.kind!r} has no net-runtime "
                    "mapping: supported kinds are "
                    f"{', '.join(NET_FAULT_KINDS)}"
                )
            if self.batch_replicas > 1:
                raise ValueError(
                    "net scenarios run solo (each owns an event loop); "
                    "batch_replicas must be 1"
                )
            unknown = sorted(set(k for k, _ in net_params) - set(NET_PARAM_KEYS))
            if unknown:
                raise ValueError(
                    f"unknown net_params key(s) {', '.join(unknown)}: valid "
                    f"keys are {', '.join(NET_PARAM_KEYS)}"
                )
            for key, value in net_params:
                if value < 0.0:
                    raise ValueError(f"net_params {key} must be >= 0, got {value}")
                if key in ("loss", "duplicate") and value >= 1.0:
                    raise ValueError(
                        f"net_params {key} is a probability and must be "
                        f"< 1, got {value}"
                    )
        elif net_params:
            raise ValueError(
                "net_params only apply to runtime='net' scenarios; "
                "sim scenarios must leave them empty"
            )
        object.__setattr__(self, "net_params", net_params)
        object.__setattr__(
            self,
            "graph_params",
            tuple((str(k), v) for k, v in self.graph_params),
        )
        object.__setattr__(self, "tags", tuple((str(k), str(v)) for k, v in self.tags))

    @property
    def scenario_id(self) -> str:
        """Stable unique identifier — the checkpoint/resume key.

        Sim scenarios keep the pre-runtime-axis id format, so existing
        checkpoints stay resumable; net scenarios extend the engine
        segment with the lane and its link knobs.
        """
        params = ",".join(f"{k}={v}" for k, v in self.graph_params)
        engine = self.engine
        if self.runtime == "net":
            knobs = ",".join(f"{k}={v:g}" for k, v in self.net_params)
            engine = f"{engine}+net[{knobs}]"
        return (
            f"{self.campaign}/{self.index:04d}:{self.task}"
            f"@{self.graph}[{params}]"
            f"/D{self.diameter_bound}/{self.scheduler}/{self.start}"
            f"/{engine}/{self.algorithm}/{self.faults.label}/s{self.seed}"
        )

    def content_payload(self) -> Dict[str, object]:
        """The canonical execution-shaping payload behind
        :meth:`content_hash`.

        Covers exactly the axes a :class:`ScenarioResult`'s *measured*
        columns are a function of: task, graph family and parameters,
        diameter bound, scheduler, engine, runtime and link knobs,
        start, fault plan, algorithm, seed, and round budget.  The
        labels that only shape bookkeeping — ``campaign``, ``index``,
        ``group``, ``tags`` — and the pure execution strategy
        ``batch_replicas`` are deliberately excluded, so the same
        experiment reached from two different campaigns addresses the
        same cache entry.  ``graph_params`` are key-sorted: keyword
        order never reaches :func:`~repro.graphs.generators.make_graph`.
        """
        return {
            "version": CONTENT_HASH_VERSION,
            "task": self.task,
            "graph": self.graph,
            "graph_params": sorted([str(k), v] for k, v in self.graph_params),
            "diameter_bound": self.diameter_bound,
            "scheduler": self.scheduler,
            "engine": self.engine,
            "runtime": self.runtime,
            "net_params": sorted([str(k), v] for k, v in self.net_params),
            "start": self.start,
            "faults": dict(asdict(self.faults), times=list(self.faults.times)),
            "algorithm": self.algorithm,
            "seed": self.seed,
            "max_rounds": self.max_rounds,
        }

    def content_hash(self) -> str:
        """The canonical content address of this scenario's result.

        SHA-256 over the version-salted canonical JSON serialization of
        :meth:`content_payload` (sorted keys, no whitespace drift), so
        the hash is a stable, collision-resistant pure function of the
        execution-shaping spec: ``from_dict(to_dict(s))`` hashes
        identically, semantically different scenarios address different
        entries, and a :data:`CONTENT_HASH_VERSION` bump invalidates
        every previously cached result.  This is the key of the
        content-addressed result store (:mod:`repro.campaigns.cache`).
        """
        canonical = json.dumps(
            self.content_payload(),
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def batch_key(self) -> Tuple:
        """The replica-batching equivalence key: every axis that shapes
        the execution *except* the seed (and the labels — ``group``/
        ``tags`` — that only shape aggregation).  Scenarios sharing a
        key are the same experiment at different seeds, which is exactly
        what one :class:`~repro.model.replica_engine.ReplicaBatchExecution`
        ensemble runs."""
        return (
            self.campaign,
            self.task,
            self.graph,
            self.graph_params,
            self.diameter_bound,
            self.scheduler,
            self.engine,
            self.start,
            self.max_rounds,
            self.faults,
            self.batch_replicas,
            self.algorithm,
            self.runtime,
            self.net_params,
        )

    def params(self) -> Dict[str, object]:
        """``graph_params`` as a plain dict."""
        return dict(self.graph_params)

    def tag(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """The value of tag ``key`` (``default`` when absent)."""
        return dict(self.tags).get(key, default)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable snapshot (see ``from_dict``)."""
        data = asdict(self)
        data["graph_params"] = [list(pair) for pair in self.graph_params]
        data["tags"] = [list(pair) for pair in self.tags]
        data["net_params"] = [list(pair) for pair in self.net_params]
        data["faults"] = asdict(self.faults)
        data["faults"]["times"] = list(self.faults.times)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Scenario":
        """Rebuild a :class:`Scenario` from ``to_dict`` output."""
        payload = dict(data)
        payload["graph_params"] = tuple(
            (k, v) for k, v in payload.get("graph_params", ())
        )
        payload["tags"] = tuple((k, v) for k, v in payload.get("tags", ()))
        payload["net_params"] = tuple(
            (k, v) for k, v in payload.get("net_params", ())
        )
        faults = payload.get("faults", {})
        if isinstance(faults, dict):
            faults = dict(faults)
            faults["times"] = tuple(faults.get("times", ()))
            payload["faults"] = FaultPlan(**faults)
        return cls(**payload)


@dataclass(frozen=True)
class ScenarioResult:
    """The measured outcome of one scenario run.

    ``elapsed_ms`` is wall-clock and therefore excluded from campaign
    aggregates (which must be bit-identical across worker counts); it
    survives only in the JSONL checkpoint stream.
    """

    scenario_id: str
    index: int
    group: str
    stabilized: bool
    rounds: int
    steps: int
    n: int
    m: int
    recovered: Optional[bool] = None
    recovery_rounds: Optional[int] = None
    #: Permanent-fault kinds only: measured containment radius (worst
    #: over the confirmation window) and fraction of correct nodes
    #: clean at every boundary of that window (the same "settled"
    #: semantics as ``ContainmentMeasurement.clean_fraction``).
    containment_radius: Optional[int] = None
    clean_fraction: Optional[float] = None
    #: Pareto metrics (PR 7): exact state bits per node from the
    #: algorithm's declared state space (``None`` when unbounded), and
    #: total work in moves — node activations that changed the state —
    #: counted identically by the per-step monitors and the
    #: replica-batch retirement path.
    state_bits: Optional[float] = None
    moves: Optional[int] = None
    #: Dynamic-topology kinds only: topology events actually applied
    #: during the churn window, and the pulse-synchrony tightness (the
    #: minimal cyclic arc of the alive able clocks over the clock group,
    #: 1.0 while any alive node is faulty; 0.0 = perfectly pulsed) at
    #: the end of the run.
    churn_events: Optional[int] = None
    pulse_tightness: Optional[float] = None
    detail: str = ""
    #: Row disposition: ``""`` for a normally measured row, ``"timeout"``
    #: when the runner's per-scenario wall-clock guard cut the run short
    #: (the row's measured columns are then deterministic placeholders),
    #: ``"error"`` when the scenario raised.
    status: str = ""
    tags: Tuple[Tuple[str, str], ...] = ()
    elapsed_ms: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "tags", tuple((str(k), str(v)) for k, v in self.tags))

    def tag(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """The value of tag ``key`` (``default`` when absent)."""
        return dict(self.tags).get(key, default)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable snapshot (see ``from_dict``)."""
        data = asdict(self)
        data["tags"] = [list(pair) for pair in self.tags]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioResult":
        """Rebuild a :class:`ScenarioResult` from ``to_dict`` output."""
        payload = dict(data)
        payload["tags"] = tuple((k, v) for k, v in payload.get("tags", ()))
        known = {f.name for f in fields(cls)}
        payload = {k: v for k, v in payload.items() if k in known}
        return cls(**payload)
