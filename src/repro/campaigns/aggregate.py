"""Campaign aggregation and artifact emission.

:func:`aggregate_results` folds a campaign's index-sorted results into
one deterministic payload: per-scenario rows (scenario axes joined with
measured outcomes) plus per-group :class:`~repro.analysis.stats.Summary`
statistics.  Wall-clock timing never enters the payload — it lives in
the separate ``meta`` section of the artifact — so equal campaigns
serialize byte-identically regardless of worker count, shard sizes, or
completion order.

:func:`write_campaign_artifact` persists ``{"aggregates": ..., "meta":
...}`` via :func:`repro.analysis.tables.write_json`; the rendering side
lives in :func:`repro.analysis.report.campaign_report`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import Summary
from repro.analysis.tables import write_json
from repro.campaigns.spec import ALGORITHM_FACTORIES, Scenario, ScenarioResult


def _row(scenario: Scenario, result: ScenarioResult) -> Dict[str, object]:
    return {
        "index": scenario.index,
        "scenario_id": scenario.scenario_id,
        "group": scenario.group,
        "task": scenario.task,
        "graph": scenario.graph,
        "graph_params": dict(scenario.graph_params),
        "diameter_bound": scenario.diameter_bound,
        "scheduler": scenario.scheduler,
        "engine": scenario.engine,
        "runtime": scenario.runtime,
        "net_params": dict(scenario.net_params),
        "start": scenario.start,
        "algorithm": scenario.algorithm,
        "faults": scenario.faults.label,
        "seed": scenario.seed,
        "tags": dict(scenario.tags),
        "n": result.n,
        "m": result.m,
        "stabilized": result.stabilized,
        "rounds": result.rounds,
        "steps": result.steps,
        "recovered": result.recovered,
        "recovery_rounds": result.recovery_rounds,
        "containment_radius": result.containment_radius,
        "clean_fraction": result.clean_fraction,
        "state_bits": result.state_bits,
        "moves": result.moves,
        "churn_events": result.churn_events,
        "pulse_tightness": result.pulse_tightness,
        "detail": result.detail,
        "status": result.status,
    }


def _row_ok(row: Dict[str, object]) -> bool:
    """A scenario counts as failed if it did not stabilize *or* if its
    fault plan's recovery did not succeed — a recovery regression must
    fail the campaign (and therefore the CI smoke gate), not just dent
    a summary statistic."""
    return bool(row["stabilized"]) and row["recovered"] is not False


def _group_summary(rows: List[Dict[str, object]]) -> Dict[str, object]:
    stabilized = [r for r in rows if r["stabilized"]]
    recoveries = [
        r["recovery_rounds"]
        for r in rows
        if r["recovery_rounds"] is not None
    ]
    recovered_universe = [r for r in rows if r["recovered"] is not None]
    radii = [
        r["containment_radius"]
        for r in rows
        if r["containment_radius"] is not None
    ]
    clean = [
        r["clean_fraction"] for r in rows if r["clean_fraction"] is not None
    ]
    tightness = [
        r["pulse_tightness"]
        for r in rows
        if r.get("pulse_tightness") is not None
    ]
    return {
        "count": len(rows),
        "failures": sum(1 for r in rows if not _row_ok(r)),
        "rounds": (
            Summary.of([r["rounds"] for r in stabilized]).to_dict()
            if stabilized
            else None
        ),
        "recovered": (
            sum(1 for r in recovered_universe if r["recovered"])
            if recovered_universe
            else None
        ),
        "recovery_rounds": Summary.of(recoveries).to_dict() if recoveries else None,
        "containment_radius": Summary.of(radii).to_dict() if radii else None,
        "clean_fraction": Summary.of(clean).to_dict() if clean else None,
        "pulse_tightness": Summary.of(tightness).to_dict() if tightness else None,
    }


def _dominates(a: tuple, b: tuple) -> bool:
    """Pareto dominance: ``a`` no worse on every axis, better on one."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def compute_pareto(rows: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """The time/space/workload/generality Pareto structure of a
    multi-algorithm campaign.

    AU rows are folded per *cell* — ``graph family × daemon`` — and,
    within a cell, per algorithm: mean stabilization ``rounds``, exact
    ``state_bits`` per node (``None`` when the state space is
    unbounded, e.g. min-unison), mean work in ``moves``, all over the
    stabilized rows (engine-paired rows are bit-identical, so
    double-counting engines cannot shift a mean), plus the declared
    :meth:`~repro.campaigns.spec.AlgorithmSpec.coverage`.  The
    ``frontier`` of a cell is the non-dominated set under ``(rounds,
    state_bits, moves)`` minimized and ``coverage`` maximized, with
    unbounded state treated as ``+inf`` bits.  The generality axis is
    load-bearing: from benign random starts the Figure 2 strawman beats
    every sound algorithm on all three measured axes — precisely
    *because* it dropped the reset-interrupt rule that buys
    self-stabilization — so a three-axis frontier would crown it the
    winner.  With coverage as a fourth axis an algorithm can only be
    dominated by one at least as general, which is the paper's Sec. 5
    comparison stated as a dominance relation.  Algorithms with no
    stabilized row never enter the frontier but stay visible in
    ``cells``.  Cells covering fewer than two algorithms are dropped —
    a frontier needs a comparison — so single-algorithm campaigns get
    an empty result and no ``pareto`` section in their aggregates.

    Rows arrive index-sorted from :func:`aggregate_results`, so the
    folded payload is bit-identical across worker counts.
    """
    cells: Dict[tuple, Dict[str, List[Dict[str, object]]]] = {}
    for row in rows:
        if row["task"] != "au":
            continue
        key = (str(row["graph"]), str(row["scheduler"]))
        cells.setdefault(key, {}).setdefault(
            str(row["algorithm"]), []
        ).append(row)
    pareto: Dict[str, object] = {}
    for (graph, scheduler), algos in sorted(cells.items()):
        if len(algos) < 2:
            continue
        summaries: Dict[str, Dict[str, object]] = {}
        for algorithm, algo_rows in sorted(algos.items()):
            ok = [
                r
                for r in algo_rows
                if r["stabilized"] and r["moves"] is not None
            ]
            bits = next(
                (
                    r["state_bits"]
                    for r in algo_rows
                    if r["state_bits"] is not None
                ),
                None,
            )
            spec = ALGORITHM_FACTORIES.get(algorithm)
            summaries[algorithm] = {
                "rows": len(algo_rows),
                "stabilized": sum(1 for r in algo_rows if r["stabilized"]),
                "state_bits": bits,
                "rounds": (
                    sum(int(r["rounds"]) for r in ok) / len(ok) if ok else None
                ),
                "moves": (
                    sum(int(r["moves"]) for r in ok) / len(ok) if ok else None
                ),
                "coverage": spec.coverage() if spec is not None else 0,
            }
        contenders = {
            algorithm: summary
            for algorithm, summary in summaries.items()
            if summary["rounds"] is not None
        }

        def metric(summary: Dict[str, object]) -> tuple:
            """Minimized dominance key: (-coverage, rounds, bits, moves)."""
            bits = summary["state_bits"]
            return (
                -summary["coverage"],
                summary["rounds"],
                float("inf") if bits is None else bits,
                summary["moves"],
            )

        frontier = sorted(
            algorithm
            for algorithm, summary in contenders.items()
            if not any(
                other != algorithm
                and _dominates(metric(other_summary), metric(summary))
                for other, other_summary in contenders.items()
            )
        )
        pareto[f"{graph}|{scheduler}"] = {
            "graph": graph,
            "scheduler": scheduler,
            "cells": summaries,
            "frontier": frontier,
        }
    return pareto


def aggregate_results(
    name: str,
    scenarios: Sequence[Scenario],
    results: Sequence[ScenarioResult],
    seed: int,
) -> Dict[str, object]:
    """The deterministic aggregates of one completed campaign."""
    by_id = {result.scenario_id: result for result in results}
    ordered = sorted(scenarios, key=lambda s: s.index)
    rows = [_row(scenario, by_id[scenario.scenario_id]) for scenario in ordered]
    groups: Dict[str, List[Dict[str, object]]] = {}
    for row in rows:
        groups.setdefault(str(row["group"]), []).append(row)
    failures = [r["scenario_id"] for r in rows if not _row_ok(r)]
    payload: Dict[str, object] = {
        "campaign": name,
        "seed": seed,
        "scenario_count": len(rows),
        "stabilized_count": len(rows) - len(failures),
        "failure_count": len(failures),
        "failures": failures,
        "groups": {
            group: _group_summary(group_rows)
            for group, group_rows in sorted(groups.items())
        },
        "rows": rows,
    }
    pareto = compute_pareto(rows)
    if pareto:
        payload["pareto"] = pareto
    return payload


def fold_worst_rounds(
    rows: Sequence[Dict[str, object]], tag: str = "trial"
) -> Dict[tuple, int]:
    """Worst ``rounds`` per ``(group, tag value)`` over aggregate rows.

    The paper's scaling measurements report the worst stabilization
    over the adversarial-start suite per trial; campaigns encode each
    start as its own scenario, so benchmarks re-fold the rows with this
    helper before summarizing per sweep point.
    """
    worst: Dict[tuple, int] = {}
    for row in rows:
        value = row["tags"].get(tag)
        if value is None:
            raise ValueError(
                f"row {row['scenario_id']!r} carries no {tag!r} tag; "
                f"fold_worst_rounds needs a campaign whose scenarios are "
                f"tagged with {tag!r} (its tags: {sorted(row['tags'])})"
            )
        worst[(row["group"], value)] = max(
            worst.get((row["group"], value), 0), int(row["rounds"])
        )
    return worst


#: The measured (engine-independent) columns of an aggregate row —
#: everything except the identity/axis columns.
MEASURED_COLUMNS = (
    "n",
    "m",
    "stabilized",
    "rounds",
    "steps",
    "recovered",
    "recovery_rounds",
    "containment_radius",
    "clean_fraction",
    "state_bits",
    "moves",
    "churn_events",
    "pulse_tightness",
    "detail",
    "status",
)


def measured_payload(result: ScenarioResult) -> Dict[str, object]:
    """The measured columns of ``result``, as a plain dict.

    This is the slice of a result row that is a pure function of the
    scenario's :meth:`~repro.campaigns.spec.Scenario.content_payload`
    — everything except the identity labels (``scenario_id``/``index``/
    ``group``/``tags``) and the wall-clock ``elapsed_ms``.  It is what
    the content-addressed result cache (:mod:`repro.campaigns.cache`)
    persists and what :func:`verify_engine_pairing` compares, so the
    two layers can never drift apart on what "the measured outcome"
    means.
    """
    return {column: getattr(result, column) for column in MEASURED_COLUMNS}


def _lane(row: Dict[str, object]) -> str:
    """A row's execution lane: engine plus runtime (``runtime`` defaults
    to ``sim`` so pre-runtime-axis artifact rows keep verifying)."""
    return f"{row['engine']}/{row.get('runtime', 'sim')}"


def verify_engine_pairing(
    rows: Sequence[Dict[str, object]],
    tag: str = "pairing",
    allow_unpaired: bool = False,
) -> List[str]:
    """Cross-check engine-paired aggregate rows.

    Registries built with shared ``seed_index`` values (the
    ``byzantine`` campaign across engines, the ``net-smoke`` campaign
    across the sim/net runtime lanes) run every experiment once per
    *lane* — engine × runtime — under the same seed; since AlgAU and
    the permanent-fault adversary are deterministic (and the net lane's
    zero-noise runs mirror the sim parity stream), all measured columns
    must be bit-identical within a pairing.  Returns a list of
    human-readable mismatch descriptions (empty = the lanes agree), and
    raises :class:`ValueError` if the rows are not actually paired.
    ``allow_unpaired`` skips tag-less rows instead (for campaigns like
    ``net-smoke`` that mix paired cells with deliberately unpaired
    ones, e.g. lossy-link coverage that cannot be bit-compared).
    """
    pairs: Dict[str, List[Dict[str, object]]] = {}
    for row in rows:
        value = row["tags"].get(tag)
        if value is None:
            if allow_unpaired:
                continue
            raise ValueError(
                f"row {row['scenario_id']!r} carries no {tag!r} tag; "
                f"verify_engine_pairing needs an engine-paired campaign"
            )
        pairs.setdefault(str(value), []).append(row)
    mismatches: List[str] = []
    for value, paired in sorted(pairs.items()):
        lanes = sorted(_lane(r) for r in paired)
        if len(paired) < 2 or len(set(lanes)) < 2:
            raise ValueError(
                f"pairing {value!r} covers lanes {lanes}; expected "
                f"one row per engine/runtime lane"
            )
        reference = paired[0]
        for other in paired[1:]:
            for column in MEASURED_COLUMNS:
                if reference.get(column) != other.get(column):
                    mismatches.append(
                        f"pairing {value}: {column} differs between "
                        f"{_lane(reference)} ({reference.get(column)!r}) and "
                        f"{_lane(other)} ({other.get(column)!r}) "
                        f"[{reference['scenario_id']}]"
                    )
    return mismatches


def write_campaign_artifact(
    aggregates: Dict[str, object],
    path: str,
    meta: Optional[Dict[str, object]] = None,
) -> str:
    """Persist ``BENCH_campaign_<name>.json``.

    The ``aggregates`` section is bit-identical for equal campaigns;
    ``meta`` (worker count, wall-clock, checkpoint path) is the only
    run-dependent part and is kept strictly separated so artifact diffs
    across PRs and worker counts stay meaningful.
    """
    return write_json(path, {"aggregates": aggregates, "meta": meta or {}})


def default_artifact_path(name: str) -> str:
    """The conventional artifact filename for campaign ``name``."""
    return f"BENCH_campaign_{name}.json"
