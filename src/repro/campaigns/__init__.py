"""Scenario-campaign subsystem.

Declarative :class:`Scenario` specs (:mod:`repro.campaigns.spec`),
named campaign registries (:mod:`repro.campaigns.registry`), a parallel
runner with JSONL checkpointing behind pluggable dispatch backends
(:mod:`repro.campaigns.runner`, :mod:`repro.campaigns.dispatch`), a
content-addressed deterministic result cache
(:mod:`repro.campaigns.cache`), and deterministic aggregation into
``BENCH_campaign_*.json`` artifacts
(:mod:`repro.campaigns.aggregate`).  Exposed on the command line as
``repro campaign {list,run,report}`` and ``repro cache
{stats,verify,gc}``.
"""

from repro.campaigns.aggregate import (
    aggregate_results,
    default_artifact_path,
    fold_worst_rounds,
    measured_payload,
    verify_engine_pairing,
    write_campaign_artifact,
)
from repro.campaigns.cache import (
    CacheRunStats,
    ResultCache,
    default_cache_dir,
)
from repro.campaigns.dispatch import (
    DISPATCHER_NAMES,
    Dispatcher,
    ProcessPoolDispatcher,
    QueueDispatcher,
    SerialDispatcher,
    make_dispatcher,
)
from repro.campaigns.registry import (
    CampaignBuilder,
    build_campaign,
    campaign,
    describe_registry,
    registry_names,
)
from repro.campaigns.runner import (
    ScenarioTimeout,
    load_checkpoint,
    run_campaign,
    run_scenario,
    run_scenario_batch,
)
from repro.campaigns.spec import (
    CONTENT_HASH_VERSION,
    FaultPlan,
    Scenario,
    ScenarioResult,
    make_scheduler,
    scheduler_names,
)

__all__ = [
    "CONTENT_HASH_VERSION",
    "CacheRunStats",
    "CampaignBuilder",
    "DISPATCHER_NAMES",
    "Dispatcher",
    "FaultPlan",
    "ProcessPoolDispatcher",
    "QueueDispatcher",
    "ResultCache",
    "Scenario",
    "ScenarioResult",
    "ScenarioTimeout",
    "SerialDispatcher",
    "aggregate_results",
    "build_campaign",
    "campaign",
    "default_artifact_path",
    "default_cache_dir",
    "describe_registry",
    "fold_worst_rounds",
    "load_checkpoint",
    "make_dispatcher",
    "make_scheduler",
    "measured_payload",
    "registry_names",
    "run_campaign",
    "run_scenario",
    "run_scenario_batch",
    "scheduler_names",
    "verify_engine_pairing",
    "write_campaign_artifact",
]
