"""Scenario-campaign subsystem.

Declarative :class:`Scenario` specs (:mod:`repro.campaigns.spec`),
named campaign registries (:mod:`repro.campaigns.registry`), a sharded
parallel runner with JSONL checkpointing
(:mod:`repro.campaigns.runner`), and deterministic aggregation into
``BENCH_campaign_*.json`` artifacts
(:mod:`repro.campaigns.aggregate`).  Exposed on the command line as
``repro campaign {list,run,report}``.
"""

from repro.campaigns.aggregate import (
    aggregate_results,
    default_artifact_path,
    fold_worst_rounds,
    verify_engine_pairing,
    write_campaign_artifact,
)
from repro.campaigns.registry import (
    CampaignBuilder,
    build_campaign,
    campaign,
    describe_registry,
    registry_names,
)
from repro.campaigns.runner import (
    ScenarioTimeout,
    load_checkpoint,
    run_campaign,
    run_scenario,
    run_scenario_batch,
)
from repro.campaigns.spec import (
    FaultPlan,
    Scenario,
    ScenarioResult,
    make_scheduler,
    scheduler_names,
)

__all__ = [
    "CampaignBuilder",
    "FaultPlan",
    "Scenario",
    "ScenarioResult",
    "ScenarioTimeout",
    "aggregate_results",
    "build_campaign",
    "campaign",
    "default_artifact_path",
    "describe_registry",
    "fold_worst_rounds",
    "load_checkpoint",
    "make_scheduler",
    "registry_names",
    "run_campaign",
    "run_scenario",
    "run_scenario_batch",
    "scheduler_names",
    "verify_engine_pairing",
    "write_campaign_artifact",
]
