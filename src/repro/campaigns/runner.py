"""Sharded parallel campaign execution.

:func:`run_scenario` turns one declarative :class:`Scenario` into a
measured :class:`ScenarioResult`; :func:`run_campaign` drives a whole
campaign through a pool of worker processes.

Design constraints, in order:

1. **Determinism.**  Every scenario carries its own seed (derived from
   the campaign seed and the scenario index by the registry), so a
   scenario's result is a pure function of its spec — independent of
   which shard ran it, in which process, in which order.  Aggregates
   over a result set are computed from index-sorted rows, which is what
   makes 1-worker and N-worker campaign runs bit-identical.
2. **Resumability.**  Completed scenarios stream to a JSONL checkpoint
   as soon as their shard finishes (per scenario in the inline path);
   a killed campaign restarted with ``resume=True`` skips everything
   the checkpoint already holds and re-runs only the remainder.
3. **Throughput.**  Shards are sized so each worker receives several
   (amortizing process start-up) while keeping enough shards in flight
   to even out scenario-length skew; AU scenarios default to the
   vectorized array engine in the registries.

A scenario that raises is folded into a failed result (``stabilized
False``, ``detail`` holding the error) rather than aborting the
campaign: one unsatisfiable graph sample must not sink a
thousand-scenario sweep.
"""

from __future__ import annotations

import functools
import json
import logging
import os
import time
import traceback
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.containment import (
    execution_clean_mask,
    hop_distances,
    radius_of_mask,
)
from repro.analysis.monitors import MoveCounter
from repro.analysis.restabilization import RestabilizationTracker, pulse_tightness
from repro.campaigns.cache import ResultCache
from repro.campaigns.dispatch import make_dispatcher
from repro.campaigns.spec import (
    ALGORITHM_FACTORIES,
    DYNAMIC_FAULT_KINDS,
    PERMANENT_FAULT_KINDS,
    AlgorithmSpec,
    Scenario,
    ScenarioResult,
    make_scheduler,
)
from repro.faults.churn import ChurnProcess
from repro.faults.injection import (
    AU_START_BUILDERS,
    TransientFaultInjector,
    perturb_topology,
    random_configuration,
    uniform_configuration,
)
from repro.graphs.dynamic import TopologyDelta
from repro.graphs.generators import make_graph
from repro.graphs.topology import Topology
from repro.model.configuration import Configuration
from repro.model.engine import Monitor, create_execution
from repro.model.replica_engine import ReplicaSpec
from repro.resilience.adversary import (
    PermanentFaultAdversary,
    select_faulty_nodes,
)
from repro.resilience.strategies import Crash, make_strategy
from repro.tasks.spec import check_le_output, check_mis_output

logger = logging.getLogger(__name__)


# ----------------------------------------------------------------------
# Single-scenario execution.
# ----------------------------------------------------------------------


def _initial_configuration(
    scenario: Scenario, algorithm, topology: Topology, rng
) -> Configuration:
    if scenario.start == "uniform":
        return uniform_configuration(algorithm, topology)
    if scenario.start == "random":
        # Valid for every task; the AU builder battery covers AU only.
        return random_configuration(algorithm, topology, rng)
    if scenario.start == "ids":
        # The algorithm's own initializer (per-node unique IDs);
        # capability-gated to algorithms that define it.
        return algorithm.initial_configuration(topology)
    return AU_START_BUILDERS[scenario.start](algorithm, topology, rng)


def _algorithm_spec(scenario: Scenario) -> AlgorithmSpec:
    return ALGORITHM_FACTORIES[scenario.algorithm]


def _make_algorithm(scenario: Scenario, topology: Topology):
    """A fresh algorithm instance from the scenario's registry entry."""
    return _algorithm_spec(scenario).make(scenario.diameter_bound, topology.n)


def _state_bits(algorithm) -> Optional[float]:
    """Exact bits per node from the declared state space (``None`` when
    unbounded, e.g. min-unison's counters)."""
    try:
        size = algorithm.state_space_size()
    except NotImplementedError:
        return None
    return float(np.log2(size))


def _result(
    scenario: Scenario,
    topology: Topology,
    *,
    stabilized: bool,
    rounds: int,
    steps: int,
    recovered: Optional[bool] = None,
    recovery_rounds: Optional[int] = None,
    containment_radius: Optional[int] = None,
    clean_fraction: Optional[float] = None,
    state_bits: Optional[float] = None,
    moves: Optional[int] = None,
    churn_events: Optional[int] = None,
    pulse_tightness: Optional[float] = None,
    detail: str = "",
    started: float = 0.0,
) -> ScenarioResult:
    return ScenarioResult(
        scenario_id=scenario.scenario_id,
        index=scenario.index,
        group=scenario.group,
        stabilized=stabilized,
        rounds=rounds,
        steps=steps,
        n=topology.n,
        m=topology.m,
        recovered=recovered,
        recovery_rounds=recovery_rounds,
        containment_radius=containment_radius,
        clean_fraction=clean_fraction,
        state_bits=state_bits,
        moves=moves,
        churn_events=churn_events,
        pulse_tightness=pulse_tightness,
        detail=detail,
        tags=scenario.tags,
        elapsed_ms=(time.perf_counter() - started) * 1000.0,
    )


def _stabilization_round(execution) -> int:
    """The paper's unit: smallest ``i`` with stabilization by ``R(i)``
    (mirrors :func:`repro.analysis.stabilization.measure_au_stabilization`).

    Measured on the tracker's own clock (``rounds.time``), not the
    engine step counter: after a ``reset_schedule`` the tracker counts
    from the structural event while ``t`` keeps counting total work,
    and this is the number that must align with the boundaries.
    """
    at_boundary = execution.rounds.time == execution.rounds.boundaries[-1]
    return execution.completed_rounds + (0 if at_boundary else 1)


class ScenarioTimeout(Exception):
    """Raised by the deadline monitor when a scenario exceeds its
    per-scenario wall-clock budget."""


class _DeadlineMonitor(Monitor):
    """Raises :class:`ScenarioTimeout` once the wall clock passes the
    deadline.

    Riding the per-step monitor hook means the guard needs no threads
    or signals (both of which are off limits inside pool workers) and
    fires between steps, never mid-update — the execution it interrupts
    is simply abandoned.  The guard cannot preempt a single step that
    hangs internally, but every engine's step is bounded work.
    """

    def __init__(self, deadline: float) -> None:
        self.deadline = deadline

    def on_step(self, execution, record) -> None:
        """Check the wall clock after every step."""
        if time.perf_counter() >= self.deadline:
            raise ScenarioTimeout()


def _timeout_result(
    scenario: Scenario, timeout_s: float, started: float
) -> ScenarioResult:
    """The deterministic row for a timed-out scenario.

    Every measured column is a placeholder (not the partial measurement,
    which would depend on host speed): the row is a pure function of the
    spec and the budget, so timed-out campaigns still aggregate
    bit-identically across worker counts and machines — only
    ``elapsed_ms`` (excluded from aggregates) varies.
    """
    return ScenarioResult(
        scenario_id=scenario.scenario_id,
        index=scenario.index,
        group=scenario.group,
        stabilized=False,
        rounds=0,
        steps=0,
        n=0,
        m=0,
        detail=f"scenario exceeded the {timeout_s:g}s wall-clock budget",
        status="timeout",
        tags=scenario.tags,
        elapsed_ms=(time.perf_counter() - started) * 1000.0,
    )


def _create_scenario_execution(
    scenario: Scenario,
    topology: Topology,
    algorithm,
    initial: Configuration,
    rng,
    intervention=None,
    monitors: Tuple[Monitor, ...] = (),
):
    """Build the scenario's execution on its runtime lane.

    ``runtime="sim"`` dispatches to the engine registry;
    ``runtime="net"`` builds a message-passing
    :class:`~repro.net.runtime.NetExecution` through the
    :class:`~repro.net.adapter.NetAdapter` (link knobs from
    ``net_params``, link-noise stream seeded from the scenario seed).
    """
    if scenario.runtime == "net":
        from repro.net.adapter import NetAdapter

        return NetAdapter.create(
            scenario,
            topology,
            algorithm,
            initial,
            make_scheduler(scenario.scheduler),
            rng=rng,
            monitors=monitors,
            intervention=intervention,
        )
    return create_execution(
        topology,
        algorithm,
        initial,
        make_scheduler(scenario.scheduler),
        rng=rng,
        intervention=intervention,
        engine=scenario.engine,
        monitors=monitors,
    )


def _close_execution(execution) -> None:
    """Release an execution's runtime resources, if it holds any (the
    net engine owns an event loop; the sim engines are plain objects)."""
    close = getattr(execution, "close", None)
    if close is not None:
        close()


def _run_permanent(
    scenario: Scenario,
    topology: Topology,
    rng,
    extra_monitors: Tuple[Monitor, ...] = (),
) -> ScenarioResult:
    """Permanent-fault scenario: run under a Byzantine/crash adversary
    until the containment predicate (every correct node at hop distance
    > ``plan.radius`` from the faulty set is clean) holds and survives a
    confirmation window — the ``stabilized_outside`` check replacing the
    all-nodes stabilization predicate."""
    started = time.perf_counter()
    algorithm = _make_algorithm(scenario, topology)
    bits = _state_bits(algorithm)
    mover = MoveCounter()
    initial = _initial_configuration(scenario, algorithm, topology, rng)
    plan = scenario.faults

    faulty = select_faulty_nodes(topology, plan.density, rng)
    if plan.kind == "crash":
        strategy = Crash(at=plan.times[0] if plan.times else 0)
    else:
        strategy = make_strategy(plan.strategy)
    adversary = PermanentFaultAdversary(strategy, faulty, rng=rng)
    distances = hop_distances(topology, faulty)

    execution = _create_scenario_execution(
        scenario,
        topology,
        algorithm,
        initial,
        rng,
        intervention=adversary,
        monitors=(mover, *extra_monitors),
    )

    def outside_clean(e) -> bool:
        """Containment holds at the plan's radius right now."""
        return (
            radius_of_mask(execution_clean_mask(e, distances), distances)
            <= plan.radius
        )

    # Disruption travels in waves, so a single clean instant is not
    # containment: the predicate must also hold at every boundary of a
    # confirmation window before the scenario counts as contained.
    confirm = 4 * (scenario.diameter_bound + 1)
    try:
        while execution.completed_rounds < scenario.max_rounds:
            run = execution.run(
                max_rounds=scenario.max_rounds,
                until=outside_clean,
                check_until_each_step=False,
            )
            if not run.stopped_by_predicate:
                break
            contained_round = _stabilization_round(execution)
            held = True
            always_clean = execution_clean_mask(execution, distances)
            worst_radius = radius_of_mask(always_clean, distances)
            for _ in range(confirm):
                execution.run_rounds(1)
                clean = execution_clean_mask(execution, distances)
                always_clean &= clean
                radius = radius_of_mask(clean, distances)
                worst_radius = max(worst_radius, radius)
                if radius > plan.radius:
                    held = False
                    break
            if held:
                correct = distances > 0
                return _result(
                    scenario,
                    topology,
                    stabilized=True,
                    rounds=contained_round,
                    steps=execution.t,
                    containment_radius=worst_radius,
                    # Settled through the window, matching the semantics of
                    # ContainmentMeasurement.clean_fraction().
                    clean_fraction=float(
                        (always_clean & correct).sum() / correct.sum()
                    ),
                    state_bits=bits,
                    moves=mover.moves,
                    started=started,
                )
        return _result(
            scenario,
            topology,
            stabilized=False,
            rounds=execution.completed_rounds,
            steps=execution.t,
            containment_radius=int(
                radius_of_mask(
                    execution_clean_mask(execution, distances), distances
                )
            ),
            state_bits=bits,
            moves=mover.moves,
            detail=(
                f"containment at radius {plan.radius} not reached within the "
                f"round budget"
            ),
            started=started,
        )
    finally:
        _close_execution(execution)


def _run_au(
    scenario: Scenario,
    topology: Topology,
    rng,
    extra_monitors: Tuple[Monitor, ...] = (),
) -> ScenarioResult:
    if scenario.faults.kind in PERMANENT_FAULT_KINDS:
        return _run_permanent(scenario, topology, rng, extra_monitors)
    if scenario.faults.kind in DYNAMIC_FAULT_KINDS:
        return _run_churn(scenario, topology, rng, extra_monitors)
    started = time.perf_counter()
    spec = _algorithm_spec(scenario)
    algorithm = _make_algorithm(scenario, topology)
    bits = _state_bits(algorithm)
    mover = MoveCounter()
    initial = _initial_configuration(scenario, algorithm, topology, rng)
    plan = scenario.faults

    intervention = None
    injector = None
    if plan.kind == "storm":
        injector = TransientFaultInjector(
            algorithm, plan.times, fraction=plan.fraction, rng=rng
        )
        intervention = injector

    execution = _create_scenario_execution(
        scenario,
        topology,
        algorithm,
        initial,
        rng,
        intervention=intervention,
        monitors=(mover, *extra_monitors),
    )

    # The stabilization predicate: thin unison (spec.stable None) uses
    # the engines' incrementally counted goodness fast path; the zoo
    # algorithms declare a closed configuration predicate.
    if spec.stable is None:
        def stable_now(e) -> bool:
            """Goodness via the engine's incremental counters."""
            return e.graph_is_good()
    else:
        def stable_now(e) -> bool:
            """The algorithm's declared closed-configuration predicate."""
            return spec.stable(algorithm, e.configuration)

    def good(e) -> bool:
        """Stability, ignored while a fault storm is still scheduled."""
        if injector is not None and e.t <= max(plan.times):
            return False  # the storm is still raging; don't stop early
        return stable_now(e)

    try:
        run = execution.run(max_rounds=scenario.max_rounds, until=good)
        if not run.stopped_by_predicate:
            return _result(
                scenario,
                topology,
                stabilized=False,
                rounds=execution.completed_rounds,
                steps=execution.t,
                state_bits=bits,
                moves=mover.moves,
                detail="good graph not reached within the round budget",
                started=started,
            )
        rounds = _stabilization_round(execution)

        if plan.kind == "bursts":
            worst_recovery = 0
            for _ in range(plan.bursts):
                count = max(1, int(np.ceil(plan.fraction * topology.n)))
                victims = rng.choice(topology.n, size=count, replace=False)
                corrupted = execution.configuration.replace(
                    {int(v): algorithm.random_state(rng) for v in victims}
                )
                execution.replace_configuration(corrupted)
                start_round = execution.completed_rounds
                recovery = execution.run(
                    max_rounds=execution.completed_rounds + scenario.max_rounds,
                    until=stable_now,
                )
                if not recovery.stopped_by_predicate:
                    return _result(
                        scenario,
                        topology,
                        stabilized=True,
                        rounds=rounds,
                        steps=execution.t,
                        recovered=False,
                        state_bits=bits,
                        moves=mover.moves,
                        detail="burst recovery exceeded the round budget",
                        started=started,
                    )
                worst_recovery = max(
                    worst_recovery, execution.completed_rounds - start_round + 1
                )
            return _result(
                scenario,
                topology,
                stabilized=True,
                rounds=rounds,
                steps=execution.t,
                recovered=True,
                recovery_rounds=worst_recovery,
                state_bits=bits,
                moves=mover.moves,
                started=started,
            )

        if plan.kind == "rewire":
            perturbation = perturb_topology(
                topology,
                rng,
                remove=plan.remove,
                add=plan.add,
                diameter_bound=scenario.diameter_bound,
            )
            # The rewiring lands on the *running* execution as an
            # incremental delta — the engine patches its structure in
            # place instead of being rebuilt around a carried
            # configuration.
            execution.mutate_topology(
                TopologyDelta(
                    add_edges=perturbation.added,
                    remove_edges=perturbation.removed,
                )
            )
            # Nodes whose contact set changed re-enter from arbitrary
            # states: the rewiring invalidated exactly their neighborhood
            # assumptions (pure edge changes often leave a good
            # configuration good, which would make the recovery
            # measurement vacuous).
            touched = sorted(
                {v for edge in perturbation.removed + perturbation.added for v in edge}
            )
            if touched:
                execution.poke_states(
                    {v: algorithm.random_state(rng) for v in touched}
                )
            # Recovery is measured on a fresh round clock and scheduler,
            # exactly as a from-scratch execution on the perturbed graph
            # would count it; ``t`` keeps accumulating total work.
            execution.reset_schedule(make_scheduler(scenario.scheduler))
            recovery = execution.run(
                max_rounds=scenario.max_rounds,
                until=stable_now,
            )
            if not recovery.stopped_by_predicate:
                return _result(
                    scenario,
                    topology,
                    stabilized=True,
                    rounds=rounds,
                    steps=execution.t,
                    recovered=False,
                    state_bits=bits,
                    moves=mover.moves,
                    detail="post-rewire recovery exceeded the round budget",
                    started=started,
                )
            return _result(
                scenario,
                topology,
                stabilized=True,
                rounds=rounds,
                steps=execution.t,
                recovered=True,
                recovery_rounds=_stabilization_round(execution),
                state_bits=bits,
                moves=mover.moves,
                started=started,
            )

        return _result(
            scenario,
            topology,
            stabilized=True,
            rounds=rounds,
            steps=execution.t,
            state_bits=bits,
            moves=mover.moves,
            started=started,
        )
    finally:
        _close_execution(execution)


def _run_churn(
    scenario: Scenario,
    topology: Topology,
    rng,
    extra_monitors: Tuple[Monitor, ...] = (),
) -> ScenarioResult:
    """Dynamic-topology scenario: stabilize, survive a churn window,
    re-stabilize.

    The three phases map onto the result columns:

    1. **Stabilize** on the initial graph (``rounds``), as any static
       scenario would.
    2. **Churn window** — ``plan.times[0]`` engine steps driven by a
       :class:`~repro.faults.churn.ChurnProcess` seeded purely from the
       scenario seed, so every engine lane of a differential pair sees
       the bit-identical delta stream.  ``kind="churn"`` splits
       ``plan.rate`` evenly between edge additions and removals;
       ``kind="membership"`` splits it between joins (fresh nodes at
       the algorithm's rest state) and connectivity-preserving leaves.
       ``clean_fraction`` is the fraction of window steps spent good —
       the sustainable-churn order parameter — and the per-event
       re-stabilization episodes are summarized into ``detail``.
    3. **Re-stabilize** after the window closes (``recovered`` /
       ``recovery_rounds``, on a fresh round clock), then measure the
       final ``pulse_tightness`` of the surviving clocks.
    """
    started = time.perf_counter()
    spec = _algorithm_spec(scenario)
    algorithm = _make_algorithm(scenario, topology)
    bits = _state_bits(algorithm)
    mover = MoveCounter()
    initial = _initial_configuration(scenario, algorithm, topology, rng)
    plan = scenario.faults

    execution = _create_scenario_execution(
        scenario,
        topology,
        algorithm,
        initial,
        rng,
        monitors=(mover, *extra_monitors),
    )

    if spec.stable is None:
        def stable_now(e) -> bool:
            """Goodness via the engine's incremental counters."""
            return e.graph_is_good()
    else:
        def stable_now(e) -> bool:
            """The algorithm's declared closed-configuration predicate."""
            return spec.stable(algorithm, e.configuration)

    try:
        run = execution.run(max_rounds=scenario.max_rounds, until=stable_now)
        if not run.stopped_by_predicate:
            return _result(
                scenario,
                topology,
                stabilized=False,
                rounds=execution.completed_rounds,
                steps=execution.t,
                state_bits=bits,
                moves=mover.moves,
                detail="good graph not reached within the round budget",
                started=started,
            )
        rounds = _stabilization_round(execution)

        half = plan.rate / 2.0
        if plan.kind == "churn":
            churn = ChurnProcess(
                execution.topology,
                seed=scenario.seed,
                edge_add_rate=half,
                edge_remove_rate=half,
            )
        else:  # membership
            churn = ChurnProcess(
                execution.topology,
                seed=scenario.seed,
                join_rate=half,
                leave_rate=half,
                initial_state=algorithm.initial_state,
            )

        window = int(plan.times[0])
        tracker = RestabilizationTracker()
        good_steps = 0
        for delta in churn.deltas(window):
            if delta is not None:
                execution.mutate_topology(delta)
                tracker.on_event(execution.t)
            execution.step()
            is_good = stable_now(execution)
            if is_good:
                good_steps += 1
            tracker.on_step(execution.t, is_good)
        clean = good_steps / window

        # Post-window recovery on a fresh round clock, so
        # ``recovery_rounds`` counts from the end of the churn window
        # the way ``rounds`` counts from the start.
        execution.reset_schedule(make_scheduler(scenario.scheduler))
        recovery = execution.run(max_rounds=scenario.max_rounds, until=stable_now)
        recovered = recovery.stopped_by_predicate

        alive = getattr(
            execution.topology, "alive_nodes", execution.topology.nodes
        )
        tightness = pulse_tightness(
            algorithm, (execution.state_of(v) for v in alive)
        )

        detail = ""
        if not recovered:
            detail = "post-churn recovery exceeded the round budget"
        elif tracker.episodes:
            detail = (
                f"{len(tracker.episodes)} restabilization episodes, "
                f"mean {tracker.mean_time():.1f} steps"
            )
        return _result(
            scenario,
            topology,
            stabilized=True,
            rounds=rounds,
            steps=execution.t,
            recovered=recovered,
            recovery_rounds=(
                _stabilization_round(execution) if recovered else None
            ),
            clean_fraction=clean,
            churn_events=churn.events,
            pulse_tightness=tightness,
            state_bits=bits,
            moves=mover.moves,
            detail=detail,
            started=started,
        )
    finally:
        _close_execution(execution)


def _run_static(
    scenario: Scenario,
    topology: Topology,
    rng,
    extra_monitors: Tuple[Monitor, ...] = (),
) -> ScenarioResult:
    from repro.analysis.stabilization import measure_static_task_stabilization

    started = time.perf_counter()
    algorithm = _make_algorithm(scenario, topology)
    if scenario.task == "le":

        def is_valid(out):
            """A unique leader has been elected."""
            return check_le_output(out).valid

    else:

        def is_valid(out):
            """The output set is a maximal independent set."""
            return check_mis_output(topology, out).valid

    initial = _initial_configuration(scenario, algorithm, topology, rng)
    measurement = measure_static_task_stabilization(
        algorithm,
        topology,
        initial,
        make_scheduler(scenario.scheduler),
        rng,
        is_valid,
        max_rounds=scenario.max_rounds,
        confirm_rounds=8 * (scenario.diameter_bound + 1),
        monitors=extra_monitors,
    )
    return _result(
        scenario,
        topology,
        stabilized=measurement.stabilized,
        rounds=measurement.rounds,
        steps=measurement.steps,
        state_bits=_state_bits(algorithm),
        moves=measurement.moves,
        detail=measurement.detail,
        started=started,
    )


#: Failed-result tracebacks are truncated to this many trailing
#: characters: enough to keep the raising frame and the error line, not
#: enough to bloat checkpoint rows when a deep stack fails repeatedly.
TRACEBACK_LIMIT = 1200


def _failed_result(
    scenario: Scenario, error: Exception, started: float
) -> ScenarioResult:
    """Fold an exception into a failed result row.

    ``detail`` carries a truncated traceback alongside the message —
    ``str(exc)`` alone loses the raising frame, which made campaign
    failures undebuggable from the artifact.  The traceback is a pure
    function of the code, so failure rows still aggregate bit-identically
    across worker counts.
    """
    tb = traceback.format_exc()
    if len(tb) > TRACEBACK_LIMIT:
        tb = "...\n" + tb[-TRACEBACK_LIMIT:]
    return ScenarioResult(
        scenario_id=scenario.scenario_id,
        index=scenario.index,
        group=scenario.group,
        stabilized=False,
        rounds=0,
        steps=0,
        n=0,
        m=0,
        detail=f"error: {type(error).__name__}: {error}\n{tb}",
        status="error",
        tags=scenario.tags,
        elapsed_ms=(time.perf_counter() - started) * 1000.0,
    )


def run_scenario(
    scenario: Scenario, timeout_s: Optional[float] = None
) -> ScenarioResult:
    """Execute one scenario; a pure function of the spec.

    ``timeout_s`` arms a per-scenario wall-clock guard: a scenario that
    exceeds the budget stops between steps and reports the deterministic
    ``status="timeout"`` row from :func:`_timeout_result` instead of
    hanging its shard.
    """
    started = time.perf_counter()
    rng = np.random.default_rng(scenario.seed)
    extra_monitors: Tuple[Monitor, ...] = ()
    if timeout_s is not None:
        extra_monitors = (_DeadlineMonitor(started + timeout_s),)
    try:
        topology = make_graph(scenario.graph, rng, **scenario.params())
        if scenario.task == "au":
            return _run_au(scenario, topology, rng, extra_monitors)
        return _run_static(scenario, topology, rng, extra_monitors)
    except ScenarioTimeout:
        return _timeout_result(scenario, timeout_s, started)
    except Exception as error:  # one bad sample must not sink the campaign
        return _failed_result(scenario, error, started)


def run_scenario_batch(
    scenarios: Sequence[Scenario], timeout_s: Optional[float] = None
) -> List[ScenarioResult]:
    """Execute a group of scenarios that differ only by seed as one
    replica-batched ensemble.

    Every scenario gets its own ``np.random.default_rng(seed)`` stream,
    consumed in exactly the per-scenario order (graph sample, start
    configuration, then scheduling), so the returned results are
    bit-identical to :func:`run_scenario` on each member — batching is
    purely an execution strategy.  A scenario whose graph/start
    construction raises folds into a failed row without sinking the
    batch; if the fused run itself raises, the whole group falls back to
    per-scenario execution (isolating the failure to its scenario).
    With a ``timeout_s`` budget the whole group runs solo: the fused
    ensemble pass has no per-scenario step hook to hang the guard on,
    and a timed-out ensemble would discard every member's work at once.
    """
    if timeout_s is not None:
        return [run_scenario(scenario, timeout_s) for scenario in scenarios]
    if len(scenarios) == 1:
        return [run_scenario(scenarios[0])]
    keys = {scenario.batch_key() for scenario in scenarios}
    if len(keys) != 1:
        raise ValueError(
            f"run_scenario_batch needs scenarios differing only by seed; "
            f"got {len(keys)} distinct batch keys"
        )
    started = time.perf_counter()
    # Batching is capability-gated (spec validation) to batchable
    # algorithms, whose factories ignore the node-count hint.
    algorithm = _algorithm_spec(scenarios[0]).make(scenarios[0].diameter_bound)
    bits = _state_bits(algorithm)
    by_id: Dict[str, ScenarioResult] = {}
    specs: List[ReplicaSpec] = []
    members: List[Tuple[Scenario, Topology]] = []
    failed: List[Scenario] = []
    for scenario in scenarios:
        rng = np.random.default_rng(scenario.seed)
        try:
            topology = make_graph(scenario.graph, rng, **scenario.params())
            initial = _initial_configuration(scenario, algorithm, topology, rng)
        except Exception:
            failed.append(scenario)
            continue
        specs.append(
            ReplicaSpec(topology, initial, make_scheduler(scenario.scheduler), rng)
        )
        members.append((scenario, topology))
    for scenario in failed:
        # Delegate failed members to the solo path — outside the except
        # block, so the re-raised error carries no chained context and
        # the result row (traceback frames included; ``detail`` enters
        # the aggregates) is byte-identical to a --no-batch run.
        by_id[scenario.scenario_id] = run_scenario(scenario)
    if specs:
        try:
            from repro.model.native_engine import replica_batch_execution_class

            batch_cls = replica_batch_execution_class(scenarios[0].engine)
            batch = batch_cls.from_replicas(algorithm, specs)
            outcomes = batch.run_ensemble(max_rounds=scenarios[0].max_rounds)
        except Exception:
            return [run_scenario(scenario) for scenario in scenarios]
        for (scenario, topology), outcome in zip(members, outcomes):
            by_id[scenario.scenario_id] = _result(
                scenario,
                topology,
                stabilized=outcome.stabilized,
                rounds=outcome.rounds,
                steps=outcome.steps,
                state_bits=bits,
                moves=outcome.moves,
                detail=(
                    ""
                    if outcome.stabilized
                    else "good graph not reached within the round budget"
                ),
                started=started,
            )
    return [by_id[scenario.scenario_id] for scenario in scenarios]


# ----------------------------------------------------------------------
# Checkpointing.
# ----------------------------------------------------------------------


def load_checkpoint(path: str) -> Dict[str, ScenarioResult]:
    """Completed results from a JSONL checkpoint, keyed by scenario id.

    Truncated trailing lines (a worker killed mid-write) are skipped,
    which is exactly the crash the checkpoint exists to survive — but
    never *silently*: the skip count is logged, so a checkpoint that
    loses rows for any other reason (disk corruption, a concurrent
    writer without the append discipline) is visible instead of
    quietly re-running scenarios.  Rows are deduplicated by scenario
    *index* with last-write-wins: a kill-and-resume cycle can
    legitimately append a second row for a scenario whose first row was
    interrupted (or re-run), and the later row is the authoritative one
    — without the dedup, duplicate rows from a partially written shard
    leaked into resumed campaigns.
    """
    by_index: Dict[int, ScenarioResult] = {}
    if not path or not os.path.exists(path):
        return {}
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                result = ScenarioResult.from_dict(data)
            except (ValueError, TypeError, KeyError):
                skipped += 1
                continue
            by_index[result.index] = result
    if skipped:
        logger.warning(
            "checkpoint %s: skipped %d unparsable line(s) "
            "(torn write from a killed run, or external corruption)",
            path,
            skipped,
        )
    return {result.scenario_id: result for result in by_index.values()}


def _append_checkpoint(path: str, results: Iterable[ScenarioResult]) -> None:
    """Append result rows, one JSON object per line, atomically.

    The whole batch is serialized first and appended with a *single*
    ``write`` on an ``O_APPEND`` descriptor followed by flush + fsync:
    one syscall means a crash cannot interleave a half-row between two
    whole ones, and the kernel's append atomicity keeps concurrent
    shard flushes from interleaving either — the torn lines
    :func:`load_checkpoint` must skip can now only come from a kill
    inside the one final write, never from buffering boundaries.

    Opens in append+read mode so a truncated tail left by such a kill
    can be repaired first: without the newline fix-up, the first row
    appended by a resumed run concatenated onto the truncated line,
    silently destroying *both* rows on the next load (and forcing a
    later resume to re-run — and duplicate — the scenario).
    """
    payload = b"".join(
        json.dumps(result.to_dict(), sort_keys=True).encode("utf-8") + b"\n"
        for result in results
    )
    with open(path, "a+b") as handle:
        handle.seek(0, os.SEEK_END)
        if handle.tell() > 0:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) != b"\n":
                handle.write(b"\n")
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())


# ----------------------------------------------------------------------
# Sharded campaign driver.
# ----------------------------------------------------------------------


#: A job is the unit of work a shard executes atomically: a singleton
#: list (one solo scenario) or a replica batch (scenarios differing
#: only by seed, fused into one ensemble run).
Job = List[Scenario]


def _run_job(job: Job, timeout_s: Optional[float] = None) -> List[ScenarioResult]:
    if len(job) > 1:
        return run_scenario_batch(job, timeout_s)
    return [run_scenario(job[0], timeout_s)]


def _run_shard(
    shard: Sequence[Job], timeout_s: Optional[float] = None
) -> List[ScenarioResult]:
    results: List[ScenarioResult] = []
    for job in shard:
        results.extend(_run_job(job, timeout_s))
    return results


def _make_jobs(pending: Sequence[Scenario], batch: bool) -> List[Job]:
    """Group the pending scenarios into jobs.

    Scenarios with ``batch_replicas > 1`` (and ``batch`` enabled) are
    bucketed by :meth:`Scenario.batch_key` and chunked into ensembles of
    at most ``batch_replicas`` members; everything else runs solo.  Jobs
    keep the campaign's scenario order (each batch sits at the position
    of its first member), so inline runs checkpoint in a stable order.
    """
    if not batch:
        return [[scenario] for scenario in pending]
    groups: Dict[tuple, List[Scenario]] = {}
    for scenario in pending:
        if scenario.batch_replicas > 1:
            groups.setdefault(scenario.batch_key(), []).append(scenario)
    leader_chunk: Dict[str, Job] = {}
    follower_ids = set()
    for members in groups.values():
        width = members[0].batch_replicas
        for start in range(0, len(members), width):
            chunk = members[start : start + width]
            leader_chunk[chunk[0].scenario_id] = chunk
            follower_ids.update(s.scenario_id for s in chunk[1:])
    jobs: List[Job] = []
    for scenario in pending:
        if scenario.scenario_id in leader_chunk:
            jobs.append(leader_chunk[scenario.scenario_id])
        elif scenario.scenario_id not in follower_ids:
            jobs.append([scenario])
    return jobs


def run_campaign(
    scenarios: Sequence[Scenario],
    workers: int = 1,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    shard_size: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    batch: bool = True,
    timeout_s: Optional[float] = None,
    dispatch: Optional[str] = None,
    cache: Optional[ResultCache] = None,
    stats: Optional[Dict[str, object]] = None,
) -> List[ScenarioResult]:
    """Run a campaign through a pluggable dispatch backend.

    Returns one result per scenario, sorted by scenario index —
    independent of ``workers``/``shard_size``/``dispatch``/completion
    order *and* of ``batch`` (replica batching is an execution strategy
    with bit-identical per-scenario results; pass ``batch=False`` to
    force solo runs, e.g. for the differential CI shard), so downstream
    aggregation is reproducible bit for bit.  ``timeout_s`` arms the
    per-scenario wall-clock guard of :func:`run_scenario` in every
    worker (timed-out scenarios yield deterministic ``status="timeout"``
    rows; note the budget is per scenario, so the rows themselves stay
    machine-independent while *which* scenarios time out does not).

    ``dispatch`` picks the execution strategy by
    :data:`~repro.campaigns.dispatch.DISPATCHER_NAMES` name; ``None``
    keeps the historical behavior (inline ``serial`` at ``workers <=
    1``, static ``shards`` above).  Because scenario results are pure
    functions of their specs and aggregation re-sorts by index, every
    backend produces bit-identical campaign results.

    ``cache`` plugs in a content-addressed
    :class:`~repro.campaigns.cache.ResultCache`: before anything is
    dispatched, every pending scenario is looked up by its canonical
    :meth:`~repro.campaigns.spec.Scenario.content_hash`, hits stream
    straight into the result map and the checkpoint (a warm campaign
    never spawns a worker), and misses are computed then stored —
    except ``status="timeout"``/``"error"`` rows, which are not pure
    functions of the spec and are never cached.  ``stats`` (when given
    a dict) is filled with the run's dispatch name and cache
    hit/miss/compute-seconds-saved counters for the campaign summary.
    """
    done = load_checkpoint(checkpoint_path) if (resume and checkpoint_path) else {}
    wanted = {s.scenario_id for s in scenarios}
    results: Dict[str, ScenarioResult] = {
        sid: result for sid, result in done.items() if sid in wanted
    }
    pending = [s for s in scenarios if s.scenario_id not in results]
    total = len(scenarios)
    completed = total - len(pending)
    if progress is not None and completed:
        progress(completed, total)

    if checkpoint_path and not resume and os.path.exists(checkpoint_path):
        os.remove(checkpoint_path)  # a fresh run invalidates old lines

    if cache is not None:
        cache.reset_run_stats()
        misses: List[Scenario] = []
        hit_results: List[ScenarioResult] = []
        for scenario in pending:
            hit = cache.get(scenario)
            if hit is None:
                misses.append(scenario)
            else:
                results[hit.scenario_id] = hit
                hit_results.append(hit)
        if hit_results:
            if checkpoint_path:
                _append_checkpoint(checkpoint_path, hit_results)
            completed += len(hit_results)
            if progress is not None:
                progress(completed, total)
        pending = misses

    if dispatch is None:
        dispatch = "serial" if workers <= 1 else "shards"
        # The historical auto path ignored shard_size off the sharded
        # branch; explicit backend picks keep make_dispatcher's
        # stricter validation.
        if dispatch != "shards":
            shard_size = None
    dispatcher = make_dispatcher(dispatch, workers=workers, shard_size=shard_size)

    jobs = _make_jobs(pending, batch)
    run_job = functools.partial(_run_job, timeout_s=timeout_s)
    by_id = {s.scenario_id: s for s in pending}
    for job_results in dispatcher.dispatch(jobs, run_job):
        for result in job_results:
            results[result.scenario_id] = result
            if cache is not None:
                cache.put(by_id[result.scenario_id], result)
        if checkpoint_path:
            _append_checkpoint(checkpoint_path, job_results)
        completed += len(job_results)
        if progress is not None:
            progress(completed, total)

    if cache is not None:
        cache.write_last_run(
            {
                "campaign": scenarios[0].campaign if scenarios else "",
                "scenarios": total,
                "dispatch": dispatcher.name,
            }
        )
    if stats is not None:
        stats["dispatch"] = dispatcher.name
        stats["cache"] = (
            cache.run_stats.to_dict() if cache is not None else None
        )

    ordered = [results[s.scenario_id] for s in scenarios]
    return sorted(ordered, key=lambda r: r.index)
