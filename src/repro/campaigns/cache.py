"""Content-addressed deterministic result cache.

Every :class:`~repro.campaigns.spec.Scenario` run is a pure function of
its canonical spec + seed, so its measured result is cacheable forever:
a hot scenario costs one execution ever, and nightly campaigns, Pareto
sweeps, and bench gates stop re-paying for work already done.  The
store is keyed by :meth:`Scenario.content_hash` — a version-salted
SHA-256 of the execution-shaping spec — and holds only the *measured*
columns (:func:`repro.campaigns.aggregate.measured_payload`): the
identity labels (``scenario_id``/``index``/``group``/``tags``) are
re-attached from the requesting scenario at hit time, so the same
experiment reached from two campaigns shares one entry and a cache hit
aggregates bit-identically to a fresh computation (``elapsed_ms`` is
wall-clock and excluded from aggregates by construction).

On-disk layout (sharded so a million entries never sit in one
directory, atomic so a crash mid-write can never corrupt an entry)::

    <root>/objects/<hash[:2]>/<hash>.json   one entry per result
    <root>/last_run.json                    hit/miss stats of the last
                                            cache-enabled campaign run

Entries are written to a temp file in the destination directory and
published with :func:`os.replace`, read back with integrity
verification (the stored payload must re-hash to the file's own name),
and **never** written for ``status="timeout"`` or ``status="error"``
rows — a timeout depends on the host's wall clock and an error may be
environmental, so neither is a pure function of the spec.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.campaigns.aggregate import MEASURED_COLUMNS, measured_payload
from repro.campaigns.spec import (
    CONTENT_HASH_VERSION,
    Scenario,
    ScenarioResult,
)

#: Row dispositions the cache refuses to store (see module docstring).
UNCACHEABLE_STATUS: Tuple[str, ...] = ("timeout", "error")

#: Name of the per-run stats file kept beside the object store.
LAST_RUN_FILENAME = "last_run.json"


def default_cache_dir() -> str:
    """The result-store root when none is configured explicitly:
    ``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro-results``, else
    ``~/.cache/repro-results`` (mirroring the native kernel tier's
    ``.so`` cache convention)."""
    configured = os.environ.get("REPRO_CACHE_DIR")
    if configured:
        return configured
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-results")


@dataclass
class CacheRunStats:
    """Hit/miss accounting for one cache-enabled campaign run.

    ``saved_ms`` sums the *stored* compute cost of every hit — the
    ``elapsed_ms`` the original (miss) execution paid — which is what
    the campaign summary reports as compute seconds saved.
    """

    hits: int = 0
    misses: int = 0
    saved_ms: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable snapshot (artifact ``meta`` shape)."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else None,
            "saved_compute_s": self.saved_ms / 1000.0,
        }


@dataclass
class ResultCache:
    """The sharded content-addressed result store (see module docstring).

    One instance tracks one campaign run's hit/miss stats in
    :attr:`run_stats`; call :meth:`reset_run_stats` between runs (the
    runner does) and :meth:`write_last_run` to persist them for
    ``repro cache stats``.
    """

    root: str
    run_stats: CacheRunStats = field(default_factory=CacheRunStats)

    # -- layout ---------------------------------------------------------

    def _objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def entry_path(self, content_hash: str) -> str:
        """Where the entry for ``content_hash`` lives (whether or not it
        exists yet)."""
        return os.path.join(
            self._objects_dir(), content_hash[:2], f"{content_hash}.json"
        )

    def _entry_paths(self) -> List[str]:
        """All entry files, sorted for deterministic iteration."""
        paths: List[str] = []
        objects = self._objects_dir()
        if not os.path.isdir(objects):
            return paths
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    paths.append(os.path.join(shard_dir, name))
        return paths

    # -- store / load ---------------------------------------------------

    def put(self, scenario: Scenario, result: ScenarioResult) -> bool:
        """Store ``result`` under ``scenario``'s content hash.

        Returns ``True`` if an entry was written; timeout/error rows
        are refused (``False``).  The write is atomic (temp file +
        :func:`os.replace` in the destination directory), so concurrent
        writers and crashes can at worst lose the entry, never corrupt
        it — and equal scenarios write byte-identical payloads, so a
        lost race overwrites an entry with itself.
        """
        if result.status in UNCACHEABLE_STATUS:
            return False
        content_hash = scenario.content_hash()
        entry = {
            "hash": content_hash,
            "version": CONTENT_HASH_VERSION,
            "key": scenario.content_payload(),
            "measured": measured_payload(result),
            "elapsed_ms": result.elapsed_ms,
        }
        path = self.entry_path(content_hash)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True, indent=1)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.remove(temp_path)
            raise
        return True

    def _load_entry(self, path: str) -> Optional[Dict[str, object]]:
        """Parse and integrity-check one entry file.

        Returns ``None`` (a miss) for unreadable, unparsable,
        wrong-version, or tampered entries — the stored ``key`` payload
        must re-hash to the hash the file is filed under, and the
        ``measured`` section must cover exactly the measured columns.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("version") != CONTENT_HASH_VERSION:
            return None
        expected = os.path.basename(path)[: -len(".json")]
        if entry.get("hash") != expected:
            return None
        key = entry.get("key")
        measured = entry.get("measured")
        if not isinstance(key, dict) or not isinstance(measured, dict):
            return None
        canonical = json.dumps(
            key, sort_keys=True, separators=(",", ":"), ensure_ascii=True
        )
        if hashlib.sha256(canonical.encode("utf-8")).hexdigest() != expected:
            return None
        if set(measured) != set(MEASURED_COLUMNS):
            return None
        return entry

    def get(self, scenario: Scenario) -> Optional[ScenarioResult]:
        """The cached result for ``scenario``, or ``None`` on a miss.

        A hit rebuilds a full :class:`ScenarioResult` by joining the
        stored measured columns with the *requesting* scenario's
        identity labels; ``elapsed_ms`` is zero (the hit did no
        compute), which never enters aggregates.  Hits and misses are
        counted into :attr:`run_stats`.
        """
        entry = self._load_entry(self.entry_path(scenario.content_hash()))
        if entry is None:
            self.run_stats.misses += 1
            return None
        measured = dict(entry["measured"])
        measured["tags"] = scenario.tags
        try:
            result = ScenarioResult(
                scenario_id=scenario.scenario_id,
                index=scenario.index,
                group=scenario.group,
                elapsed_ms=0.0,
                **measured,
            )
        except TypeError:
            self.run_stats.misses += 1
            return None
        self.run_stats.hits += 1
        self.run_stats.saved_ms += float(entry.get("elapsed_ms") or 0.0)
        return result

    # -- maintenance ----------------------------------------------------

    def reset_run_stats(self) -> None:
        """Zero the per-run hit/miss counters (one campaign = one run)."""
        self.run_stats = CacheRunStats()

    def stats(self) -> Dict[str, object]:
        """Store-wide totals: entry count and bytes on disk."""
        paths = self._entry_paths()
        return {
            "root": self.root,
            "entries": len(paths),
            "bytes": sum(os.path.getsize(path) for path in paths),
        }

    def verify(self, remove: bool = False) -> List[str]:
        """Re-hash and cross-check every stored entry.

        Returns human-readable problem descriptions for entries that
        fail the integrity check (empty = the store is sound); with
        ``remove=True`` the corrupt entries are also deleted, so the
        next campaign run recomputes them instead of tripping over
        them forever.
        """
        problems: List[str] = []
        for path in self._entry_paths():
            if self._load_entry(path) is None:
                problems.append(f"corrupt cache entry: {path}")
                if remove:
                    os.remove(path)
        return problems

    def gc(self, older_than_s: float) -> Dict[str, object]:
        """Delete entries whose file mtime is older than
        ``older_than_s`` seconds; returns ``{"removed", "kept",
        "freed_bytes"}``."""
        cutoff = time.time() - older_than_s
        removed = kept = 0
        freed = 0
        for path in self._entry_paths():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            if stat.st_mtime < cutoff:
                freed += stat.st_size
                os.remove(path)
                removed += 1
            else:
                kept += 1
        return {"removed": removed, "kept": kept, "freed_bytes": freed}

    # -- last-run stats (for `repro cache stats`) -----------------------

    def write_last_run(self, meta: Optional[Dict[str, object]] = None) -> str:
        """Persist :attr:`run_stats` (plus optional campaign ``meta``)
        as the store's last-run record."""
        os.makedirs(self.root, exist_ok=True)
        payload = dict(self.run_stats.to_dict())
        if meta:
            payload.update(meta)
        path = os.path.join(self.root, LAST_RUN_FILENAME)
        fd, temp_path = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
            handle.write("\n")
        os.replace(temp_path, path)
        return path

    def load_last_run(self) -> Optional[Dict[str, object]]:
        """The last-run record, or ``None`` when no cache-enabled
        campaign has run against this store yet."""
        path = os.path.join(self.root, LAST_RUN_FILENAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None
