"""Pluggable campaign dispatch backends.

The runner used to hardwire two execution strategies (an inline loop
and static ``multiprocessing`` shards) into ``run_campaign`` itself;
this module factors them behind one seam so new strategies — and the
campaign-as-a-service worker pool the ROADMAP names — plug in without
touching the runner's determinism or checkpointing logic.

A dispatcher consumes the runner's job list (a job = one solo scenario
or one replica batch) and a picklable ``run_job`` callable, and yields
completed result batches in *completion* order.  Result ordering is
irrelevant to correctness: the runner re-sorts by scenario index before
aggregation, which is what keeps aggregates bit-identical across every
backend and worker count.

Shipped backends (:data:`DISPATCHER_NAMES`):

* ``serial`` — inline in-process loop; yields after every job, so
  checkpoints stream at per-job granularity (the 1-worker reference
  every identity gate compares against);
* ``shards`` — the classic static sharding: jobs are grouped into
  ~``4 × workers`` shards and mapped over a process pool, amortizing
  per-task dispatch overhead at the cost of per-shard checkpoint
  granularity and straggler exposure;
* ``queue`` — work-stealing over a shared task queue: every worker
  pulls the *next single job* the moment it goes idle (``chunksize=1``
  over the pool's shared inbound queue), so one slow job — a ``net``
  row, a targeted-adversary cell — delays only its own worker instead
  of idling a whole statically assigned shard.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, TypeVar

Job = TypeVar("Job")
Results = TypeVar("Results")

#: The dispatch backend registry, in documentation order.
DISPATCHER_NAMES = ("serial", "shards", "queue")


def _run_job_list(
    run_job: Callable[[Job], List[Results]], shard: Sequence[Job]
) -> List[Results]:
    """Run every job of one static shard in a worker process."""
    results: List[Results] = []
    for job in shard:
        results.extend(run_job(job))
    return results


class Dispatcher:
    """One campaign execution strategy.

    ``dispatch`` lazily yields lists of completed results; the runner
    folds each batch into the result map and the JSONL checkpoint as it
    arrives, so a kill mid-campaign loses at most the in-flight batch
    regardless of backend.
    """

    #: The registry name (set by subclasses).
    name = ""

    def dispatch(
        self,
        jobs: Sequence[Job],
        run_job: Callable[[Job], List[Results]],
    ) -> Iterator[List[Results]]:
        """Yield completed result batches in completion order."""
        raise NotImplementedError


class SerialDispatcher(Dispatcher):
    """Inline in-process execution, one job at a time."""

    name = "serial"

    def dispatch(self, jobs, run_job):
        """Run each job inline; yield its results immediately."""
        for job in jobs:
            yield run_job(job)


class ProcessPoolDispatcher(Dispatcher):
    """Static sharding over a ``multiprocessing`` pool.

    Shards are sized so each worker receives several (amortizing
    process start-up) while keeping enough shards in flight to even
    out scenario-length skew — the pre-seam ``run_campaign`` strategy,
    verbatim.
    """

    name = "shards"

    def __init__(self, workers: int, shard_size: Optional[int] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard_size is not None and shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        self.workers = workers
        self.shard_size = shard_size

    def make_shards(self, jobs: Sequence[Job]) -> List[List[Job]]:
        """Greedily pack jobs into shards of ``shard_size`` scenarios
        (default: ~4 shards in flight per worker)."""
        total = sum(len(job) for job in jobs)
        shard_size = self.shard_size
        if shard_size is None:
            shard_size = max(1, total // max(1, self.workers * 4))
        shards: List[List[Job]] = []
        current: List[Job] = []
        count = 0
        for job in jobs:
            current.append(job)
            count += len(job)
            if count >= shard_size:
                shards.append(current)
                current, count = [], 0
        if current:
            shards.append(current)
        return shards

    def dispatch(self, jobs, run_job):
        """Map shards over the pool; yield per completed shard."""
        import functools
        import multiprocessing

        shards = self.make_shards(jobs)
        if not shards:
            return
        context = multiprocessing.get_context()
        run_shard = functools.partial(_run_job_list, run_job)
        with context.Pool(processes=self.workers) as pool:
            yield from pool.imap_unordered(run_shard, shards)


class QueueDispatcher(Dispatcher):
    """Work-stealing dispatch over a shared task queue.

    Jobs are fed to the pool one at a time (``chunksize=1``), so the
    pool's inbound queue *is* the shared work queue: an idle worker
    steals the next pending job immediately, and a straggler delays
    only itself.  Pays one task-dispatch round-trip per job — noise for
    campaign-scale jobs, measurable only for micro-jobs (where
    ``shards`` remains the right backend).
    """

    name = "queue"

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def dispatch(self, jobs, run_job):
        """Stream single jobs through the pool; yield per completion."""
        import multiprocessing

        if not jobs:
            return
        context = multiprocessing.get_context()
        with context.Pool(processes=self.workers) as pool:
            yield from pool.imap_unordered(run_job, jobs, chunksize=1)


def make_dispatcher(
    name: str, workers: int = 1, shard_size: Optional[int] = None
) -> Dispatcher:
    """Build the named dispatch backend with a clear error.

    ``shard_size`` only applies to ``shards`` (the other backends have
    no static sharding to size) and is rejected elsewhere rather than
    silently ignored.
    """
    if name == "serial":
        if shard_size is not None:
            raise ValueError("the serial dispatcher takes no shard_size")
        return SerialDispatcher()
    if name == "shards":
        return ProcessPoolDispatcher(workers, shard_size)
    if name == "queue":
        if shard_size is not None:
            raise ValueError(
                "the queue dispatcher is shard-less by design; "
                "shard_size only applies to dispatch='shards'"
            )
        return QueueDispatcher(workers)
    valid = ", ".join(DISPATCHER_NAMES)
    raise ValueError(
        f"unknown dispatcher {name!r}: valid dispatchers are {valid}"
    )
