"""Permanent-fault models: Byzantine, crash-stop, and signal-noise.

Transient faults (:mod:`repro.faults.injection`) corrupt states and
move on; the strategies here model nodes that *stay* faulty for the
rest of the execution — the regime of Dubois et al.'s self-stabilizing
Byzantine unison and of biological pacemaker networks with permanently
damaged cells.  A strategy answers two questions about its faulty
nodes at every step ``t``:

* :meth:`ByzantineStrategy.masked_at` — are the faulty nodes *masked*
  (excluded from algorithmic updates) at ``t``?  Masked nodes never run
  δ; their states are whatever the adversary wrote last.
* :meth:`ByzantineStrategy.states_at` — which states does the adversary
  write into the faulty nodes before step ``t``?

Shipped strategies (registry :data:`BYZANTINE_STRATEGIES`):

==============  ====================================================
name            behavior of a faulty node
==============  ====================================================
``frozen``      broadcasts its (adversarially chosen) initial turn
                forever — the stopped-pacemaker cell
``random``      a fresh uniformly random turn every ``period`` steps
``oscillating`` alternates between the two extreme able turns
                ``+k`` and ``−k`` — the time-domain analog of a
                two-faced Byzantine node
``targeted``    greedily picks the turn maximizing the proof-aligned
                :func:`~repro.core.potential.disorder_potential`
``crash``       behaves correctly until step ``at``, then freezes at
                whatever turn it had reached (crash-stop)
``noisy``       runs the protocol honestly, but each step its
                broadcast state is replaced by a random turn with
                probability ``p`` (permanent signal noise)
==============  ====================================================

All strategies draw randomness only from the generator handed to them,
in a per-step call order that is independent of the execution engine —
which is what makes a permanent-fault run bit-identical across the
object and array backends.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Mapping, Tuple

import numpy as np

from repro.core.turns import Turn, able
from repro.model.errors import ModelError


class ByzantineStrategy(ABC):
    """How a set of permanently faulty nodes (mis)behaves."""

    #: Declarative name (the ``FaultPlan.strategy`` axis).
    name: str = "byzantine"

    def masked_at(self, t: int) -> bool:
        """Whether the faulty nodes are masked (do not run δ) at step
        ``t``.  Default: always — a Byzantine node never executes the
        protocol."""
        return True

    def initial_states(
        self, algorithm, topology, nodes: Tuple[int, ...], rng: np.random.Generator
    ) -> Mapping[int, Turn]:
        """States written into the faulty nodes before the first step
        (default: keep whatever the initial configuration assigned)."""
        return {}

    @abstractmethod
    def states_at(
        self, execution, nodes: Tuple[int, ...], rng: np.random.Generator, t: int
    ) -> Mapping[int, Turn]:
        """State overrides applied immediately before step ``t``."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class FrozenClock(ByzantineStrategy):
    """The node's clock never moves: it broadcasts its initial turn
    forever.  With ``level`` given, every faulty node is frozen at the
    able turn of that level instead of its adversarial start state."""

    name = "frozen"

    def __init__(self, level: int | None = None):
        self._level = level

    def initial_states(self, algorithm, topology, nodes, rng):
        if self._level is None:
            return {}
        algorithm.levels.require_level(self._level)
        return {v: able(self._level) for v in nodes}

    def states_at(self, execution, nodes, rng, t):
        return {}  # masked ⇒ the frozen state can never drift


class RandomClock(ByzantineStrategy):
    """A fresh uniformly random turn for every faulty node every
    ``period`` steps — maximal incoherent babbling."""

    name = "random"

    def __init__(self, period: int = 1):
        if period < 1:
            raise ModelError("random-clock period must be >= 1")
        self._period = period

    def states_at(self, execution, nodes, rng, t):
        if t % self._period:
            return {}
        algorithm = execution.algorithm
        return {v: algorithm.random_state(rng) for v in nodes}


class Oscillating(ByzantineStrategy):
    """Alternates all faulty nodes between the two extreme able turns
    ``+k`` and ``−k`` every ``period`` steps.

    This is the state-broadcast analog of a two-faced Byzantine node:
    neighbors see the maximal clock discrepancy the level system allows,
    flipped faster than any honest clock can follow.
    """

    name = "oscillating"

    def __init__(self, period: int = 1):
        if period < 1:
            raise ModelError("oscillation period must be >= 1")
        self._period = period

    def states_at(self, execution, nodes, rng, t):
        k = execution.algorithm.levels.k
        face = able(k) if (t // self._period) % 2 == 0 else able(-k)
        return {v: face for v in nodes}


class Targeted(ByzantineStrategy):
    """Max-disruption play: every ``period`` steps each faulty node
    greedily picks the turn that maximizes the proof-aligned
    :func:`~repro.core.potential.disorder_potential` of the resulting
    configuration (nodes decided in ascending id order, each seeing the
    previous choices; ties broken by turn order for determinism).

    This strategy inspects the full configuration, so on the array
    engine it pays one decode per probe — use it for adversarial stress
    on small graphs, not for throughput sweeps.
    """

    name = "targeted"

    def __init__(self, period: int = 1):
        if period < 1:
            raise ModelError("targeted period must be >= 1")
        self._period = period

    def states_at(self, execution, nodes, rng, t):
        if t % self._period:
            return {}
        from repro.core.potential import disorder_potential

        algorithm = execution.algorithm
        config = execution.configuration
        updates: Dict[int, Turn] = {}
        for v in nodes:
            best_turn = config[v]
            best_score = -1
            for turn in algorithm.turns.all_turns:
                score = disorder_potential(algorithm, config.replace({v: turn}))
                if score > best_score:
                    best_score = score
                    best_turn = turn
            config = config.replace({v: best_turn})
            updates[v] = best_turn
        return updates


class Crash(ByzantineStrategy):
    """Crash-stop at step ``at``: the node participates correctly until
    then, after which it freezes at whatever turn it had reached (its
    last broadcast state persists, as a dead cell's surface signal
    does)."""

    name = "crash"

    def __init__(self, at: int = 0):
        if at < 0:
            raise ModelError("crash time must be >= 0")
        self.at = at

    def masked_at(self, t: int) -> bool:
        return t >= self.at

    def states_at(self, execution, nodes, rng, t):
        return {}


class Noisy(ByzantineStrategy):
    """Permanent probabilistic signal noise: the node runs the protocol
    honestly (it is never masked), but before every step each noisy
    node's broadcast state is replaced by a uniformly random turn with
    probability ``p``."""

    name = "noisy"

    def __init__(self, p: float = 0.3):
        if not 0.0 < p <= 1.0:
            raise ModelError(f"noise probability must be in (0, 1], got {p}")
        self.p = p

    def masked_at(self, t: int) -> bool:
        return False

    def states_at(self, execution, nodes, rng, t):
        hits = rng.random(len(nodes)) < self.p
        algorithm = execution.algorithm
        return {
            v: algorithm.random_state(rng)
            for v, hit in zip(nodes, hits)
            if hit
        }


#: Strategy factories by declarative name — the single source of truth
#: shared by :func:`make_strategy`, the ``FaultPlan.strategy`` axis of
#: the campaign spec, and the benchmark sweeps.  Factories, not
#: instances: strategies may be stateful.
BYZANTINE_STRATEGIES: Dict[str, Callable[[], ByzantineStrategy]] = {
    "frozen": FrozenClock,
    "random": RandomClock,
    "oscillating": Oscillating,
    "targeted": Targeted,
    "crash": Crash,
    "noisy": Noisy,
}


def strategy_names() -> Tuple[str, ...]:
    return tuple(sorted(BYZANTINE_STRATEGIES))


def make_strategy(name: str, **params) -> ByzantineStrategy:
    """A fresh strategy instance by registry name."""
    try:
        factory = BYZANTINE_STRATEGIES[name]
    except KeyError:
        valid = ", ".join(strategy_names())
        raise ValueError(
            f"unknown Byzantine strategy {name!r}: valid strategies are {valid}"
        ) from None
    return factory(**params)
