"""Permanent-fault resilience subsystem.

Fault models for nodes that *stay* faulty — Byzantine clock strategies,
crash-stop, and probabilistic signal noise
(:mod:`repro.resilience.strategies`) — imposed on executions by the
:class:`~repro.resilience.adversary.PermanentFaultAdversary`
intervention, which composes with both execution engines (faulty nodes
become masked lanes on the vectorized backend).  Containment analytics
(per-node recovery vs hop distance, containment radius, the
``stabilized_outside`` predicate) live in
:mod:`repro.analysis.containment`; campaign integration (the
``byzantine`` registry and the ``byzantine``/``crash`` fault-plan
kinds) in :mod:`repro.campaigns`.
"""

from repro.resilience.adversary import (
    PermanentFaultAdversary,
    select_faulty_nodes,
)
from repro.resilience.strategies import (
    BYZANTINE_STRATEGIES,
    ByzantineStrategy,
    Crash,
    FrozenClock,
    Noisy,
    Oscillating,
    RandomClock,
    Targeted,
    make_strategy,
    strategy_names,
)

__all__ = [
    "BYZANTINE_STRATEGIES",
    "ByzantineStrategy",
    "Crash",
    "FrozenClock",
    "Noisy",
    "Oscillating",
    "PermanentFaultAdversary",
    "RandomClock",
    "Targeted",
    "make_strategy",
    "select_faulty_nodes",
    "strategy_names",
]
