"""The permanent-fault adversary: an execution-level intervention.

:class:`PermanentFaultAdversary` imposes a
:class:`~repro.resilience.strategies.ByzantineStrategy` on a fixed set
of faulty nodes.  It plugs into the ``intervention`` slot of any
execution engine (the same slot the transient
:class:`~repro.faults.injection.TransientFaultInjector` uses) and runs
before every step:

1. it (un)masks the faulty nodes according to the strategy's
   :meth:`~repro.resilience.strategies.ByzantineStrategy.masked_at` —
   masked nodes drop out of the engine's batched δ application, so the
   vectorized hot loop stays batched (the faulty lanes simply are not
   rows of the update);
2. it writes the strategy's per-step state overrides through
   :meth:`~repro.model.engine.ExecutionBase.poke_states`, which the
   array engine implements as sparse code-lane writes — no
   configuration decode/encode on the per-step path.

Because honest nodes evaluate their signals under the *pre-step*
configuration, they sense exactly the adversarial states for the whole
step, never a faulty node's hypothetical honest transition.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.core.turns import Turn
from repro.graphs.topology import Topology
from repro.model.errors import ModelError
from repro.resilience.strategies import ByzantineStrategy


def select_faulty_nodes(
    topology: Topology,
    density: float,
    rng: np.random.Generator,
) -> Tuple[int, ...]:
    """Pick ``ceil(density * n)`` distinct faulty nodes (at least one,
    and always leaving at least one correct node)."""
    if not 0.0 < density < 1.0:
        raise ModelError(f"fault density must be in (0, 1), got {density}")
    n = topology.n
    count = max(1, int(np.ceil(density * n)))
    if count >= n:
        raise ModelError(
            f"density {density} faults {count}/{n} nodes; at least one "
            f"node must stay correct"
        )
    victims = rng.choice(n, size=count, replace=False)
    return tuple(sorted(int(v) for v in victims))


class PermanentFaultAdversary:
    """Imposes a permanent-fault strategy on ``nodes`` of an execution.

    Pass an instance as the ``intervention`` of
    :func:`~repro.model.engine.create_execution`; it composes with both
    engines.  The adversary draws randomness from ``rng`` in an
    engine-independent per-step order, so the same seed produces
    bit-identical trajectories on the object and array backends.
    """

    def __init__(
        self,
        strategy: ByzantineStrategy,
        nodes: Iterable[int],
        rng: Optional[np.random.Generator] = None,
    ):
        self.strategy = strategy
        self.nodes: Tuple[int, ...] = tuple(sorted({int(v) for v in nodes}))
        if not self.nodes:
            raise ModelError("permanent-fault adversary needs at least one node")
        self._rng = rng if rng is not None else np.random.default_rng()
        self._masked: Optional[bool] = None
        self._initialized = False

    def __call__(self, execution):
        t = execution.t
        if not self._initialized:
            self._initialized = True
            if max(self.nodes) >= execution.topology.n:
                raise ModelError(
                    f"faulty nodes {self.nodes} exceed the topology "
                    f"({execution.topology.n} nodes)"
                )
            self._poke(
                execution,
                self.strategy.initial_states(
                    execution.algorithm, execution.topology, self.nodes, self._rng
                ),
            )
        masked = self.strategy.masked_at(t)
        if masked != self._masked:
            execution.mask_nodes(self.nodes if masked else ())
            self._masked = masked
        self._poke(
            execution, self.strategy.states_at(execution, self.nodes, self._rng, t)
        )
        return None  # states were poked in place; no configuration swap

    def _poke(self, execution, updates) -> None:
        # Drop no-op writes so the object engine keeps its memoized
        # signals (and the array engine skips the code-vector copy).
        effective: Dict[int, Turn] = {
            int(v): state
            for v, state in updates.items()
            if execution.state_of(int(v)) != state
        }
        if effective:
            execution.poke_states(effective)

    def __repr__(self) -> str:
        return (
            f"<PermanentFaultAdversary {self.strategy.name!r} "
            f"nodes={self.nodes}>"
        )
