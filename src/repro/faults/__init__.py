"""Transient fault injection, topology churn and adversarial starts."""

from repro.faults.churn import ChurnProcess
from repro.faults.injection import (
    FaultEvent,
    PeriodicFaultInjector,
    TransientFaultInjector,
    au_adversarial_suite,
    au_all_faulty,
    au_clock_tear,
    au_sign_split,
    random_configuration,
    uniform_configuration,
)

__all__ = [
    "ChurnProcess",
    "FaultEvent",
    "PeriodicFaultInjector",
    "TransientFaultInjector",
    "au_adversarial_suite",
    "au_all_faulty",
    "au_clock_tear",
    "au_sign_split",
    "random_configuration",
    "uniform_configuration",
]
