"""Transient faults and adversarial initial configurations.

Self-stabilization is exactly the guarantee that the system recovers
from *any* combination of transient faults, which the model captures by
letting the adversary pick the initial configuration.  This module
provides:

* adversarial initial-configuration builders (arbitrary random states,
  AlgAU-specific worst cases such as clock tears and sign splits);
* :class:`TransientFaultInjector`, an execution intervention that
  corrupts a random subset of nodes at prescribed times — this models
  mid-execution transient faults, after which the algorithm must
  re-stabilize;
* dynamic-topology perturbations (:func:`perturb_topology`,
  :func:`carry_configuration`): the environment rewires contacts under
  the running system — edges appear and disappear while every node
  keeps its state — after which the algorithm must re-stabilize on the
  new graph (the dynamic FTSS setting of Dubois et al. for unison).

Nodes that *stay* faulty (Byzantine strategies, crash-stop, permanent
signal noise) are the third fault regime and live in
:mod:`repro.resilience`; their success criterion is containment
(:mod:`repro.analysis.containment`), not global re-stabilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.core.algau import ThinUnison
from repro.core.turns import able
from repro.graphs.topology import Topology
from repro.model.algorithm import Algorithm
from repro.model.configuration import Configuration
from repro.model.errors import ModelError


# ----------------------------------------------------------------------
# Adversarial initial configurations (generic).
# ----------------------------------------------------------------------


def random_configuration(
    algorithm: Algorithm, topology: Topology, rng: np.random.Generator
) -> Configuration:
    """Every node in an independently random state — the canonical
    adversarial start."""
    return Configuration.from_function(topology, lambda v: algorithm.random_state(rng))


def uniform_configuration(algorithm: Algorithm, topology: Topology) -> Configuration:
    """All nodes in the designated initial state ``q*_0``."""
    return Configuration.uniform(topology, algorithm.initial_state())


# ----------------------------------------------------------------------
# AlgAU-specific adversarial starts.
# ----------------------------------------------------------------------


def au_sign_split(
    algorithm: ThinUnison, topology: Topology, rng: np.random.Generator
) -> Configuration:
    """Half the nodes near level ``+k``, half near ``-k`` — the maximal
    clock discrepancy the out-protection analysis must undo."""
    k = algorithm.levels.k
    def pick(v: int):
        if v % 2 == 0:
            return able(int(rng.integers(max(1, k - 1), k + 1)))
        return able(-int(rng.integers(max(1, k - 1), k + 1)))
    return Configuration.from_function(topology, pick)


def au_clock_tear(
    algorithm: ThinUnison, topology: Topology, rng: np.random.Generator
) -> Configuration:
    """A graded clock assignment with one large tear: node ``v`` gets a
    level proportional to its index, producing many unprotected edges."""
    k = algorithm.levels.k
    n = topology.n
    levels = algorithm.levels
    def pick(v: int):
        clock = (v * max(1, (2 * k) // max(1, n))) % levels.group_order
        return able(levels.level_of_clock(clock))
    return Configuration.from_function(topology, pick)


def au_all_faulty(
    algorithm: ThinUnison, topology: Topology, rng: np.random.Generator
) -> Configuration:
    """Every node in a random *faulty* turn (the detour states)."""
    faulty_turns = algorithm.turns.faulty_turns
    return Configuration.from_function(
        topology,
        lambda v: faulty_turns[int(rng.integers(len(faulty_turns)))],
    )


#: The adversarial-start battery by declarative name — the single
#: source of truth shared by :func:`au_adversarial_suite`, the campaign
#: runner, and the CLI ``--start`` choices.  Insertion order is part of
#: the contract: callers iterate it while drawing from a shared rng.
AU_START_BUILDERS: Dict[str, Callable] = {
    "random": random_configuration,
    "sign-split": au_sign_split,
    "clock-tear": au_clock_tear,
    "all-faulty": au_all_faulty,
}


def au_adversarial_suite(
    algorithm: ThinUnison, topology: Topology, rng: np.random.Generator
) -> Dict[str, Configuration]:
    """The named battery of adversarial starts used by experiments."""
    return {
        name: build(algorithm, topology, rng)
        for name, build in AU_START_BUILDERS.items()
    }


# ----------------------------------------------------------------------
# Mid-execution transient faults.
# ----------------------------------------------------------------------


@dataclass
class FaultEvent:
    """Record of one injected fault burst."""

    t: int
    nodes: Tuple[int, ...]


class TransientFaultInjector:
    """Corrupts a random fraction of nodes at prescribed step times.

    Instances are passed as the ``intervention`` of an
    :class:`~repro.model.execution.Execution`; at each scheduled time the
    injector replaces the states of ``ceil(fraction * n)`` random nodes
    with states drawn from ``algorithm.random_state``.

    The ``events`` list records what was corrupted and when, so
    experiments can measure recovery time per burst.
    """

    def __init__(
        self,
        algorithm: Algorithm,
        times: Sequence[int],
        fraction: float = 0.25,
        rng: Optional[np.random.Generator] = None,
    ):
        if not 0.0 < fraction <= 1.0:
            raise ModelError(f"fault fraction must be in (0, 1], got {fraction}")
        self._algorithm = algorithm
        self._times = frozenset(int(t) for t in times)
        self._fraction = fraction
        self._rng = rng if rng is not None else np.random.default_rng()
        self.events: List[FaultEvent] = []

    def __call__(self, execution) -> Optional[Configuration]:
        if execution.t not in self._times:
            return None
        topology = execution.topology
        count = max(1, int(np.ceil(self._fraction * topology.n)))
        victims = self._rng.choice(topology.n, size=count, replace=False)
        updates = {int(v): self._algorithm.random_state(self._rng) for v in victims}
        self.events.append(FaultEvent(t=execution.t, nodes=tuple(sorted(updates))))
        return execution.configuration.replace(updates)


# ----------------------------------------------------------------------
# Dynamic topology perturbations.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TopologyPerturbation:
    """One environmental rewiring: the new topology plus what changed."""

    topology: Topology
    removed: Tuple[Tuple[int, int], ...]
    added: Tuple[Tuple[int, int], ...]


def perturb_topology(
    topology: Topology,
    rng: np.random.Generator,
    remove: int = 1,
    add: int = 1,
    diameter_bound: Optional[int] = None,
    max_attempts: int = 200,
) -> TopologyPerturbation:
    """Rewire ``topology``: drop ``remove`` random edges and create
    ``add`` random non-edges, keeping the graph connected (and, when
    ``diameter_bound`` is given, within the bound).

    The node set is untouched — the perturbation models environmental
    obstacles moving between cells, not cells dying — so a running
    configuration can be carried over node-for-node with
    :func:`carry_configuration`.  The delivery is *exact*: an attempt
    that cannot remove ``remove`` edges (connectivity), add ``add``
    edges (not enough non-edges, never re-adding a just-removed edge),
    or stay within ``diameter_bound`` is resampled, and the function
    raises after ``max_attempts`` rather than silently under-delivering
    — a partially-applied perturbation would make recovery measurements
    vacuously easy.
    """
    if remove < 0 or add < 0:
        raise ModelError("perturbation sizes must be non-negative")
    if remove == 0 and add == 0:
        return TopologyPerturbation(topology, (), ())
    base = topology.graph
    for _ in range(max_attempts):
        graph = nx.Graph(base)
        edges = list(graph.edges())
        removable = rng.permutation(len(edges))
        removed = []
        for index in removable:
            if len(removed) >= remove:
                break
            u, v = edges[int(index)]
            graph.remove_edge(u, v)
            if not nx.is_connected(graph):
                graph.add_edge(u, v)
                continue
            removed.append((min(u, v), max(u, v)))
        if len(removed) < remove:
            continue
        non_edges = sorted(
            edge
            for edge in ((min(u, v), max(u, v)) for u, v in nx.non_edges(graph))
            if edge not in removed
        )
        added = []
        if non_edges and add:
            chosen = rng.choice(
                len(non_edges), size=min(add, len(non_edges)), replace=False
            )
            for index in sorted(int(i) for i in chosen):
                u, v = non_edges[index]
                graph.add_edge(u, v)
                added.append((u, v))
        if len(added) < add:
            continue
        if diameter_bound is not None and nx.diameter(graph) > diameter_bound:
            continue
        perturbed = Topology(
            graph, name=f"{topology.name}~(-{len(removed)}+{len(added)})"
        )
        return TopologyPerturbation(perturbed, tuple(removed), tuple(added))
    raise ModelError(
        f"could not perturb {topology.name!r} within {max_attempts} attempts "
        f"(remove={remove}, add={add}, diameter_bound={diameter_bound})"
    )


def carry_configuration(
    configuration: Configuration, topology: Topology
) -> Configuration:
    """Re-home ``configuration`` onto a same-node-set ``topology``.

    Every node keeps its state; only the communication structure (and
    therefore every signal) changes.  This is the state hand-off after a
    dynamic-topology perturbation: self-stabilization guarantees the
    system recovers from the resulting arbitrary "initial" configuration
    on the new graph.
    """
    if len(configuration) != topology.n:
        raise ModelError(
            f"cannot carry a {len(configuration)}-node configuration onto "
            f"{topology.name!r} with {topology.n} nodes"
        )
    return Configuration(topology, {v: configuration[v] for v in topology.nodes})


class PeriodicFaultInjector(TransientFaultInjector):
    """Injects a burst every ``period`` steps starting at ``start``."""

    def __init__(
        self,
        algorithm: Algorithm,
        period: int,
        start: int = 0,
        horizon: int = 10**7,
        fraction: float = 0.25,
        rng: Optional[np.random.Generator] = None,
    ):
        if period < 1:
            raise ModelError("fault period must be >= 1")
        times = range(start, horizon, period)
        super().__init__(algorithm, times, fraction=fraction, rng=rng)
