"""Transient faults and adversarial initial configurations.

Self-stabilization is exactly the guarantee that the system recovers
from *any* combination of transient faults, which the model captures by
letting the adversary pick the initial configuration.  This module
provides:

* adversarial initial-configuration builders (arbitrary random states,
  AlgAU-specific worst cases such as clock tears and sign splits);
* :class:`TransientFaultInjector`, an execution intervention that
  corrupts a random subset of nodes at prescribed times — this models
  mid-execution transient faults, after which the algorithm must
  re-stabilize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.algau import ThinUnison
from repro.core.turns import able, faulty
from repro.graphs.topology import Topology
from repro.model.algorithm import Algorithm
from repro.model.configuration import Configuration
from repro.model.errors import ModelError


# ----------------------------------------------------------------------
# Adversarial initial configurations (generic).
# ----------------------------------------------------------------------


def random_configuration(
    algorithm: Algorithm, topology: Topology, rng: np.random.Generator
) -> Configuration:
    """Every node in an independently random state — the canonical
    adversarial start."""
    return Configuration.from_function(
        topology, lambda v: algorithm.random_state(rng)
    )


def uniform_configuration(algorithm: Algorithm, topology: Topology) -> Configuration:
    """All nodes in the designated initial state ``q*_0``."""
    return Configuration.uniform(topology, algorithm.initial_state())


# ----------------------------------------------------------------------
# AlgAU-specific adversarial starts.
# ----------------------------------------------------------------------


def au_sign_split(
    algorithm: ThinUnison, topology: Topology, rng: np.random.Generator
) -> Configuration:
    """Half the nodes near level ``+k``, half near ``-k`` — the maximal
    clock discrepancy the out-protection analysis must undo."""
    k = algorithm.levels.k
    def pick(v: int):
        if v % 2 == 0:
            return able(int(rng.integers(max(1, k - 1), k + 1)))
        return able(-int(rng.integers(max(1, k - 1), k + 1)))
    return Configuration.from_function(topology, pick)


def au_clock_tear(
    algorithm: ThinUnison, topology: Topology, rng: np.random.Generator
) -> Configuration:
    """A graded clock assignment with one large tear: node ``v`` gets a
    level proportional to its index, producing many unprotected edges."""
    k = algorithm.levels.k
    n = topology.n
    levels = algorithm.levels
    def pick(v: int):
        clock = (v * max(1, (2 * k) // max(1, n))) % levels.group_order
        return able(levels.level_of_clock(clock))
    return Configuration.from_function(topology, pick)


def au_all_faulty(
    algorithm: ThinUnison, topology: Topology, rng: np.random.Generator
) -> Configuration:
    """Every node in a random *faulty* turn (the detour states)."""
    faulty_turns = algorithm.turns.faulty_turns
    return Configuration.from_function(
        topology,
        lambda v: faulty_turns[int(rng.integers(len(faulty_turns)))],
    )


def au_adversarial_suite(
    algorithm: ThinUnison, topology: Topology, rng: np.random.Generator
) -> Dict[str, Configuration]:
    """The named battery of adversarial starts used by experiments."""
    return {
        "random": random_configuration(algorithm, topology, rng),
        "sign-split": au_sign_split(algorithm, topology, rng),
        "clock-tear": au_clock_tear(algorithm, topology, rng),
        "all-faulty": au_all_faulty(algorithm, topology, rng),
    }


# ----------------------------------------------------------------------
# Mid-execution transient faults.
# ----------------------------------------------------------------------


@dataclass
class FaultEvent:
    """Record of one injected fault burst."""

    t: int
    nodes: Tuple[int, ...]


class TransientFaultInjector:
    """Corrupts a random fraction of nodes at prescribed step times.

    Instances are passed as the ``intervention`` of an
    :class:`~repro.model.execution.Execution`; at each scheduled time the
    injector replaces the states of ``ceil(fraction * n)`` random nodes
    with states drawn from ``algorithm.random_state``.

    The ``events`` list records what was corrupted and when, so
    experiments can measure recovery time per burst.
    """

    def __init__(
        self,
        algorithm: Algorithm,
        times: Sequence[int],
        fraction: float = 0.25,
        rng: Optional[np.random.Generator] = None,
    ):
        if not 0.0 < fraction <= 1.0:
            raise ModelError(f"fault fraction must be in (0, 1], got {fraction}")
        self._algorithm = algorithm
        self._times = frozenset(int(t) for t in times)
        self._fraction = fraction
        self._rng = rng if rng is not None else np.random.default_rng()
        self.events: List[FaultEvent] = []

    def __call__(self, execution) -> Optional[Configuration]:
        if execution.t not in self._times:
            return None
        topology = execution.topology
        count = max(1, int(np.ceil(self._fraction * topology.n)))
        victims = self._rng.choice(topology.n, size=count, replace=False)
        updates = {
            int(v): self._algorithm.random_state(self._rng) for v in victims
        }
        self.events.append(FaultEvent(t=execution.t, nodes=tuple(sorted(updates))))
        return execution.configuration.replace(updates)


class PeriodicFaultInjector(TransientFaultInjector):
    """Injects a burst every ``period`` steps starting at ``start``."""

    def __init__(
        self,
        algorithm: Algorithm,
        period: int,
        start: int = 0,
        horizon: int = 10**7,
        fraction: float = 0.25,
        rng: Optional[np.random.Generator] = None,
    ):
        if period < 1:
            raise ModelError("fault period must be >= 1")
        times = range(start, horizon, period)
        super().__init__(algorithm, times, fraction=fraction, rng=rng)
