"""Transient faults and adversarial initial configurations.

Self-stabilization is exactly the guarantee that the system recovers
from *any* combination of transient faults, which the model captures by
letting the adversary pick the initial configuration.  This module
provides:

* adversarial initial-configuration builders (arbitrary random states,
  AlgAU-specific worst cases such as clock tears and sign splits);
* :class:`TransientFaultInjector`, an execution intervention that
  corrupts a random subset of nodes at prescribed times — this models
  mid-execution transient faults, after which the algorithm must
  re-stabilize;
* dynamic-topology perturbations (:func:`perturb_topology`,
  :func:`carry_configuration`): the environment rewires contacts under
  the running system — edges appear and disappear while every node
  keeps its state — after which the algorithm must re-stabilize on the
  new graph (the dynamic FTSS setting of Dubois et al. for unison).

Nodes that *stay* faulty (Byzantine strategies, crash-stop, permanent
signal noise) are the third fault regime and live in
:mod:`repro.resilience`; their success criterion is containment
(:mod:`repro.analysis.containment`), not global re-stabilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.core.algau import ThinUnison
from repro.core.turns import able
from repro.graphs.topology import Topology
from repro.model.algorithm import Algorithm
from repro.model.configuration import Configuration
from repro.model.errors import ModelError


# ----------------------------------------------------------------------
# Adversarial initial configurations (generic).
# ----------------------------------------------------------------------


def random_configuration(
    algorithm: Algorithm, topology: Topology, rng: np.random.Generator
) -> Configuration:
    """Every node in an independently random state — the canonical
    adversarial start."""
    return Configuration.from_function(topology, lambda v: algorithm.random_state(rng))


def uniform_configuration(algorithm: Algorithm, topology: Topology) -> Configuration:
    """All nodes in the designated initial state ``q*_0``."""
    return Configuration.uniform(topology, algorithm.initial_state())


# ----------------------------------------------------------------------
# AlgAU-specific adversarial starts.
# ----------------------------------------------------------------------


def au_sign_split(
    algorithm: ThinUnison, topology: Topology, rng: np.random.Generator
) -> Configuration:
    """Half the nodes near level ``+k``, half near ``-k`` — the maximal
    clock discrepancy the out-protection analysis must undo."""
    k = algorithm.levels.k
    def pick(v: int):
        if v % 2 == 0:
            return able(int(rng.integers(max(1, k - 1), k + 1)))
        return able(-int(rng.integers(max(1, k - 1), k + 1)))
    return Configuration.from_function(topology, pick)


def au_clock_tear(
    algorithm: ThinUnison, topology: Topology, rng: np.random.Generator
) -> Configuration:
    """A graded clock assignment with one large tear: node ``v`` gets a
    level proportional to its index, producing many unprotected edges."""
    k = algorithm.levels.k
    n = topology.n
    levels = algorithm.levels
    def pick(v: int):
        clock = (v * max(1, (2 * k) // max(1, n))) % levels.group_order
        return able(levels.level_of_clock(clock))
    return Configuration.from_function(topology, pick)


def au_all_faulty(
    algorithm: ThinUnison, topology: Topology, rng: np.random.Generator
) -> Configuration:
    """Every node in a random *faulty* turn (the detour states)."""
    faulty_turns = algorithm.turns.faulty_turns
    return Configuration.from_function(
        topology,
        lambda v: faulty_turns[int(rng.integers(len(faulty_turns)))],
    )


#: The adversarial-start battery by declarative name — the single
#: source of truth shared by :func:`au_adversarial_suite`, the campaign
#: runner, and the CLI ``--start`` choices.  Insertion order is part of
#: the contract: callers iterate it while drawing from a shared rng.
AU_START_BUILDERS: Dict[str, Callable] = {
    "random": random_configuration,
    "sign-split": au_sign_split,
    "clock-tear": au_clock_tear,
    "all-faulty": au_all_faulty,
}


def au_adversarial_suite(
    algorithm: ThinUnison, topology: Topology, rng: np.random.Generator
) -> Dict[str, Configuration]:
    """The named battery of adversarial starts used by experiments."""
    return {
        name: build(algorithm, topology, rng)
        for name, build in AU_START_BUILDERS.items()
    }


# ----------------------------------------------------------------------
# Mid-execution transient faults.
# ----------------------------------------------------------------------


@dataclass
class FaultEvent:
    """Record of one injected fault burst."""

    t: int
    nodes: Tuple[int, ...]


class TransientFaultInjector:
    """Corrupts a random fraction of nodes at prescribed step times.

    Instances are passed as the ``intervention`` of an
    :class:`~repro.model.execution.Execution`; at each scheduled time the
    injector replaces the states of ``ceil(fraction * n)`` random nodes
    with states drawn from ``algorithm.random_state``.

    The ``events`` list records what was corrupted and when, so
    experiments can measure recovery time per burst.
    """

    def __init__(
        self,
        algorithm: Algorithm,
        times: Sequence[int],
        fraction: float = 0.25,
        rng: Optional[np.random.Generator] = None,
    ):
        if not 0.0 < fraction <= 1.0:
            raise ModelError(f"fault fraction must be in (0, 1], got {fraction}")
        self._algorithm = algorithm
        self._times = frozenset(int(t) for t in times)
        self._fraction = fraction
        self._rng = rng if rng is not None else np.random.default_rng()
        self.events: List[FaultEvent] = []

    def __call__(self, execution) -> Optional[Configuration]:
        if execution.t not in self._times:
            return None
        topology = execution.topology
        count = max(1, int(np.ceil(self._fraction * topology.n)))
        victims = self._rng.choice(topology.n, size=count, replace=False)
        updates = {int(v): self._algorithm.random_state(self._rng) for v in victims}
        self.events.append(FaultEvent(t=execution.t, nodes=tuple(sorted(updates))))
        return execution.configuration.replace(updates)


# ----------------------------------------------------------------------
# Dynamic topology perturbations.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TopologyPerturbation:
    """One environmental rewiring: the new topology plus what changed."""

    topology: Topology
    removed: Tuple[Tuple[int, int], ...]
    added: Tuple[Tuple[int, int], ...]


def perturb_topology(
    topology: Topology,
    rng: np.random.Generator,
    remove: int = 1,
    add: int = 1,
    diameter_bound: Optional[int] = None,
    max_attempts: int = 200,
) -> TopologyPerturbation:
    """Rewire ``topology``: drop ``remove`` random edges and create
    ``add`` random non-edges, keeping the graph connected (and, when
    ``diameter_bound`` is given, within the bound).

    The node set is untouched — the perturbation models environmental
    obstacles moving between cells, not cells dying — so a running
    configuration can be carried over node-for-node with
    :func:`carry_configuration`.  The delivery is *exact*: an attempt
    that cannot remove ``remove`` edges (connectivity), add ``add``
    edges (not enough non-edges, never re-adding a just-removed edge),
    or stay within ``diameter_bound`` is resampled, and the function
    raises after ``max_attempts`` rather than silently under-delivering
    — a partially-applied perturbation would make recovery measurements
    vacuously easy.
    """
    if remove < 0 or add < 0:
        raise ModelError("perturbation sizes must be non-negative")
    if remove == 0 and add == 0:
        return TopologyPerturbation(topology, (), ())

    # One mutable working graph for the whole call: a dict-of-sets
    # adjacency plus a swap-remove edge list for O(1) uniform edge
    # draws.  Candidate edges/non-edges are rejection-sampled (with an
    # exact enumeration fallback, so delivery stays exact on dense or
    # bridge-heavy graphs) instead of materializing and sorting every
    # non-edge of the graph per attempt.
    n = topology.n
    adj: Dict[int, set] = {v: set(topology.neighbors(v)) for v in topology.nodes}
    edges: List[Tuple[int, int]] = [
        (u, v) if u < v else (v, u) for u, v in topology.graph.edges()
    ]
    edge_pos: Dict[Tuple[int, int], int] = {e: i for i, e in enumerate(edges)}

    def drop(e: Tuple[int, int]) -> None:
        u, v = e
        adj[u].discard(v)
        adj[v].discard(u)
        i = edge_pos.pop(e)
        last = edges.pop()
        if last != e:
            edges[i] = last
            edge_pos[last] = i

    def insert(e: Tuple[int, int]) -> None:
        u, v = e
        adj[u].add(v)
        adj[v].add(u)
        edge_pos[e] = len(edges)
        edges.append(e)

    def connected_without(u: int, v: int) -> bool:
        """Does ``u`` still reach ``v`` once (u, v) is removed?"""
        if len(adj[u]) == 1 or len(adj[v]) == 1:
            return False
        seen = {u}
        frontier = [u]
        while frontier:
            nxt: List[int] = []
            for w in frontier:
                for x in adj[w]:
                    if w == u and x == v:
                        continue
                    if x == v:
                        return True
                    if x not in seen:
                        seen.add(x)
                        nxt.append(x)
            frontier = nxt
        return False

    def diameter_within(bound: int) -> bool:
        for source in adj:
            seen = {source}
            frontier = [source]
            depth = 0
            while frontier:
                depth += 1
                nxt = []
                for w in frontier:
                    for x in adj[w]:
                        if x not in seen:
                            seen.add(x)
                            nxt.append(x)
                frontier = nxt
                if frontier and depth > bound:
                    return False
            if len(seen) != n:
                return False
        return True

    def pick_removal() -> Optional[Tuple[int, int]]:
        for _ in range(max_attempts):
            e = edges[int(rng.integers(len(edges)))]
            if connected_without(*e):
                return e
        # Exact fallback: test every edge in a random order.
        for i in rng.permutation(len(edges)):
            e = edges[int(i)]
            if connected_without(*e):
                return e
        return None

    def pick_addition(removed_set: set) -> Optional[Tuple[int, int]]:
        for _ in range(max_attempts):
            u = int(rng.integers(n))
            v = int(rng.integers(n))
            if u == v:
                continue
            e = (u, v) if u < v else (v, u)
            if e in removed_set or e[1] in adj[e[0]]:
                continue
            return e
        # Exact fallback (dense graphs): enumerate the non-edges once.
        pool = sorted(
            (u, v)
            for u in adj
            for v in adj
            if u < v and v not in adj[u] and (u, v) not in removed_set
        )
        if not pool:
            return None
        return pool[int(rng.integers(len(pool)))]

    for _ in range(max_attempts):
        removed: List[Tuple[int, int]] = []
        added: List[Tuple[int, int]] = []
        ok = True
        for _ in range(remove):
            e = pick_removal()
            if e is None:
                ok = False
                break
            drop(e)
            removed.append(e)
        if ok:
            removed_set = set(removed)
            for _ in range(add):
                e = pick_addition(removed_set)
                if e is None:
                    ok = False
                    break
                insert(e)
                added.append(e)
        if ok and diameter_bound is not None:
            ok = diameter_within(diameter_bound)
        if ok:
            graph = nx.Graph()
            graph.add_nodes_from(topology.nodes)
            graph.add_edges_from(edges)
            perturbed = Topology(
                graph, name=f"{topology.name}~(-{len(removed)}+{len(added)})"
            )
            return TopologyPerturbation(perturbed, tuple(removed), tuple(added))
        # Revert the working graph and resample (only the diameter gate
        # or an unsatisfiable size can land here).
        for e in added:
            drop(e)
        for e in removed:
            insert(e)
    raise ModelError(
        f"could not perturb {topology.name!r} within {max_attempts} attempts "
        f"(remove={remove}, add={add}, diameter_bound={diameter_bound})"
    )


def carry_configuration(
    configuration: Configuration, topology: Topology
) -> Configuration:
    """Re-home ``configuration`` onto a same-node-set ``topology``.

    Every node keeps its state; only the communication structure (and
    therefore every signal) changes.  This is the state hand-off after a
    dynamic-topology perturbation: self-stabilization guarantees the
    system recovers from the resulting arbitrary "initial" configuration
    on the new graph.
    """
    if len(configuration) != topology.n:
        raise ModelError(
            f"cannot carry a {len(configuration)}-node configuration onto "
            f"{topology.name!r} with {topology.n} nodes"
        )
    return Configuration(topology, {v: configuration[v] for v in topology.nodes})


class PeriodicFaultInjector(TransientFaultInjector):
    """Injects a burst every ``period`` steps starting at ``start``."""

    def __init__(
        self,
        algorithm: Algorithm,
        period: int,
        start: int = 0,
        horizon: int = 10**7,
        fraction: float = 0.25,
        rng: Optional[np.random.Generator] = None,
    ):
        if period < 1:
            raise ModelError("fault period must be >= 1")
        times = range(start, horizon, period)
        super().__init__(algorithm, times, fraction=fraction, rng=rng)
