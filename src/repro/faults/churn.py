"""Seeded topology-churn processes (the dynamic-graph adversary).

The paper's biological networks are not static: cells die, divide and
rewire while the clock-synchronization protocol runs.  This module
models that adversary as a :class:`ChurnProcess` — a seeded generator
of :class:`~repro.graphs.dynamic.TopologyDelta` events that the engines
consume through ``mutate_topology`` — so the same delta stream can be
replayed bit-identically against every execution lane of a
differential pair (the process owns its rng; engines never see it).

Two regimes, selected by the rates:

* **edge churn** (``edge_add_rate`` / ``edge_remove_rate``) — the node
  set is fixed, links appear and disappear;
* **membership churn** (``join_rate`` / ``leave_rate``) — nodes join
  with fresh state (a cell is born unsynchronized) and leave as
  tombstones.

Event counts per step are Poisson draws, so a rate is "expected events
per sampled step".  The process mirrors the graph in its own
dict-of-sets adjacency plus a swap-remove edge list — sampling never
copies the topology (let alone a networkx graph) and connectivity
preservation is a BFS over the mirror, O(n + m) per *candidate*, paid
only for removal/leave events.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.graphs.dynamic import TopologyDelta, canonical_edge

__all__ = ["ChurnProcess"]


class ChurnProcess:
    """A seeded stream of topology deltas over an evolving mirror graph.

    Parameters
    ----------
    topology:
        The starting graph (any object with ``nodes`` / ``neighbors``;
        tombstones from a prior ``left_nodes`` attribute are honoured).
    rates:
        Expected events per sampled step, one per event kind.  Rates of
        zero disable the kind.
    seed:
        Seeds the process-private rng.  Two processes built with the
        same topology, rates and seed emit identical delta streams —
        the property the engine-differential campaigns rely on.
    initial_state:
        Zero-argument factory for the state a joining node starts in
        (the algorithm's rest state in every campaign use).
    preserve_connectivity:
        When set (default), leave/removal candidates that would
        disconnect the *alive* part are rejected and resampled; an
        event is skipped entirely once ``max_attempts`` candidates in a
        row failed (logged in :attr:`skipped_events`).
    join_degree:
        Attachment count for joining nodes (capped by the alive count).
    """

    def __init__(
        self,
        topology,
        *,
        seed: int,
        edge_add_rate: float = 0.0,
        edge_remove_rate: float = 0.0,
        join_rate: float = 0.0,
        leave_rate: float = 0.0,
        initial_state=None,
        preserve_connectivity: bool = True,
        join_degree: int = 2,
        max_attempts: int = 64,
    ) -> None:
        for name, rate in (
            ("edge_add_rate", edge_add_rate),
            ("edge_remove_rate", edge_remove_rate),
            ("join_rate", join_rate),
            ("leave_rate", leave_rate),
        ):
            if rate < 0:
                raise ValueError(f"{name} must be >= 0, got {rate!r}")
        if (join_rate or leave_rate) and initial_state is None:
            raise ValueError(
                "membership churn (join/leave rates) needs an "
                "initial_state factory for joining nodes"
            )
        self.edge_add_rate = float(edge_add_rate)
        self.edge_remove_rate = float(edge_remove_rate)
        self.join_rate = float(join_rate)
        self.leave_rate = float(leave_rate)
        self.initial_state = initial_state
        self.preserve_connectivity = bool(preserve_connectivity)
        self.join_degree = int(join_degree)
        self.max_attempts = int(max_attempts)
        self.skipped_events = 0
        self.events = 0
        self._rng = np.random.default_rng([int(seed), 0x6368726E])

        left = set(getattr(topology, "left_nodes", ()))
        self._adj: Dict[int, Set[int]] = {
            v: set(topology.neighbors(v)) for v in topology.nodes if v not in left
        }
        self._alive: List[int] = sorted(self._adj)
        self._alive_pos: Dict[int, int] = {
            v: i for i, v in enumerate(self._alive)
        }
        self._next_id = (max(topology.nodes) + 1) if len(topology.nodes) else 0
        self._edges: List[Tuple[int, int]] = sorted(
            {canonical_edge(u, v) for u in self._adj for v in self._adj[u]}
        )
        self._edge_pos: Dict[Tuple[int, int], int] = {
            e: i for i, e in enumerate(self._edges)
        }

    # ------------------------------------------------------------------
    # Mirror maintenance (swap-remove lists for O(1) uniform choice).
    # ------------------------------------------------------------------

    @property
    def alive_count(self) -> int:
        return len(self._alive)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def _add_edge(self, u: int, v: int) -> None:
        self._adj[u].add(v)
        self._adj[v].add(u)
        e = canonical_edge(u, v)
        self._edge_pos[e] = len(self._edges)
        self._edges.append(e)

    def _remove_edge(self, u: int, v: int) -> None:
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        e = canonical_edge(u, v)
        i = self._edge_pos.pop(e)
        last = self._edges.pop()
        if last != e:
            self._edges[i] = last
            self._edge_pos[last] = i

    def _remove_alive(self, v: int) -> None:
        i = self._alive_pos.pop(v)
        last = self._alive.pop()
        if last != v:
            self._alive[i] = last
            self._alive_pos[last] = i

    def _connected_without_node(self, skip: int) -> bool:
        """Is the alive part minus ``skip`` still connected (BFS)?"""
        remaining = len(self._alive) - 1
        if remaining <= 1:
            return True
        source = self._alive[0] if self._alive[0] != skip else self._alive[1]
        seen = {source, skip}
        frontier = [source]
        count = 1
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                for w in self._adj[u]:
                    if w not in seen:
                        seen.add(w)
                        count += 1
                        nxt.append(w)
            frontier = nxt
        return count == remaining

    def _connected_without_edge(self, u: int, v: int) -> bool:
        """Does ``u`` still reach ``v`` with the edge (u, v) removed?"""
        if len(self._adj[u]) == 1 or len(self._adj[v]) == 1:
            return False
        seen = {u}
        frontier = [u]
        while frontier:
            nxt: List[int] = []
            for w in frontier:
                for x in self._adj[w]:
                    if w == u and x == v:
                        continue
                    if x == v:
                        return True
                    if x not in seen:
                        seen.add(x)
                        nxt.append(x)
            frontier = nxt
        return False

    # ------------------------------------------------------------------
    # Sampling.
    # ------------------------------------------------------------------

    def sample(self) -> Optional[TopologyDelta]:
        """Draw one step's delta; ``None`` when no event fired.

        Event kinds are sampled in a fixed order (leaves, joins,
        removals, additions) against the evolving mirror, so the emitted
        delta is always internally consistent: removals and additions
        never touch this step's leavers or joiners.
        """
        rng = self._rng
        n_leave = int(rng.poisson(self.leave_rate)) if self.leave_rate else 0
        n_join = int(rng.poisson(self.join_rate)) if self.join_rate else 0
        n_remove = (
            int(rng.poisson(self.edge_remove_rate)) if self.edge_remove_rate else 0
        )
        n_add = int(rng.poisson(self.edge_add_rate)) if self.edge_add_rate else 0
        if not (n_leave or n_join or n_remove or n_add):
            return None

        leavers: List[int] = []
        for _ in range(n_leave):
            v = self._sample_leaver()
            if v is None:
                self.skipped_events += 1
                continue
            for u in tuple(self._adj[v]):
                self._remove_edge(v, u)
            del self._adj[v]
            self._remove_alive(v)
            leavers.append(v)

        joins: List[Tuple[int, Tuple[int, ...], object]] = []
        joiners: Set[int] = set()
        for _ in range(n_join):
            if not self._alive:
                self.skipped_events += 1
                continue
            degree = min(self.join_degree, len(self._alive))
            picks = rng.choice(len(self._alive), size=degree, replace=False)
            hood = tuple(sorted(self._alive[int(i)] for i in picks))
            v = self._next_id
            self._next_id += 1
            self._adj[v] = set()
            self._alive_pos[v] = len(self._alive)
            self._alive.append(v)
            for u in hood:
                self._add_edge(v, u)
            joiners.add(v)
            joins.append((v, hood, self.initial_state()))

        removals: List[Tuple[int, int]] = []
        for _ in range(n_remove):
            e = self._sample_removable_edge(joiners)
            if e is None:
                self.skipped_events += 1
                continue
            self._remove_edge(*e)
            removals.append(e)

        additions: List[Tuple[int, int]] = []
        removed_now = set(removals)
        for _ in range(n_add):
            e = self._sample_absent_pair(joiners, removed_now)
            if e is None:
                self.skipped_events += 1
                continue
            self._add_edge(*e)
            additions.append(e)

        if not (leavers or joins or removals or additions):
            return None
        self.events += len(leavers) + len(joins) + len(removals) + len(additions)
        return TopologyDelta(
            add_edges=tuple(additions),
            remove_edges=tuple(removals),
            join=tuple(joins),
            leave=tuple(sorted(leavers)),
        )

    def deltas(self, steps: int) -> Iterator[Optional[TopologyDelta]]:
        """``steps`` consecutive draws (``None`` entries for quiet
        steps, so the stream aligns with engine steps one-to-one)."""
        for _ in range(steps):
            yield self.sample()

    def _sample_leaver(self) -> Optional[int]:
        rng = self._rng
        if len(self._alive) <= 2:
            return None
        for _ in range(self.max_attempts):
            v = self._alive[int(rng.integers(len(self._alive)))]
            if not self.preserve_connectivity or self._connected_without_node(v):
                return v
        return None

    def _sample_removable_edge(
        self, joiners: Set[int]
    ) -> Optional[Tuple[int, int]]:
        rng = self._rng
        if not self._edges:
            return None
        for _ in range(self.max_attempts):
            u, v = self._edges[int(rng.integers(len(self._edges)))]
            if u in joiners or v in joiners:
                continue  # this step's attachments are off limits
            if not self.preserve_connectivity or self._connected_without_edge(u, v):
                return (u, v)
        return None

    def _sample_absent_pair(
        self, joiners: Set[int], removed_now: Set[Tuple[int, int]]
    ) -> Optional[Tuple[int, int]]:
        rng = self._rng
        candidates = len(self._alive) - len(joiners)
        if candidates < 2:
            return None
        for _ in range(self.max_attempts):
            i, j = rng.integers(len(self._alive)), rng.integers(len(self._alive))
            u, v = self._alive[int(i)], self._alive[int(j)]
            if u == v or u in joiners or v in joiners:
                continue
            if v in self._adj[u]:
                continue
            e = canonical_edge(u, v)
            if e in removed_now:
                # Re-adding an edge removed this very step would make
                # the delta internally inconsistent.
                continue
            return e
        return None
