"""Containment analytics for permanent faults.

With permanently Byzantine nodes the global AlgAU stabilization
predicate (*every* node able, *every* edge protected) is unreachable by
construction — the interesting question, following Dubois et al.'s
self-stabilizing Byzantine unison, is *containment*: does the
disruption stay within a bounded hop radius of the faulty nodes, with
everything farther away stabilizing as if the faults did not exist?

The vocabulary used here:

* ``distances[v]`` — hop distance from ``v`` to the nearest faulty
  node (0 exactly on the faulty nodes themselves);
* a correct node ``v`` is **clean** when it holds an able turn and
  every incident edge to a neighbor *no closer to the faulty set*
  (``distances[u] >= distances[v]``) is protected.  Edges pointing
  inwards are charged to the inner endpoint, and edges to faulty
  nodes (distance 0 < any correct distance) never count against a
  correct node — a Byzantine neighbor cannot be required to agree;
* the graph is **stabilized outside radius r**
  (:func:`stabilized_outside`) when every correct node at distance
  ``> r`` is clean — equivalently, the subgraph induced by
  ``{v : distances[v] > r}`` is a good graph;
* the **containment radius** (:func:`containment_radius`) of a
  configuration is the smallest such ``r``: the largest distance of
  any unclean correct node (0 when every correct node is clean).

:func:`measure_containment` runs a full fixed-horizon measurement with
a :class:`ContainmentTracker` monitor and reports the stable radius
(the worst radius over a trailing confirmation window — a snapshot can
look clean while a disruption wave is mid-flight) plus per-node
recovery rounds as a function of hop distance, the subsystem's
headline curve.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.core.algau import ThinUnison
from repro.graphs.topology import Topology
from repro.model.array_engine import ArrayExecution
from repro.model.configuration import Configuration
from repro.model.engine import ExecutionBase, Monitor, StepRecord, create_execution
from repro.model.errors import ModelError
from repro.model.scheduler import Scheduler
from repro.resilience.adversary import PermanentFaultAdversary
from repro.resilience.strategies import ByzantineStrategy


def hop_distances(topology: Topology, sources: Iterable[int]) -> np.ndarray:
    """Hop distance from every node to the nearest of ``sources``
    (multi-source BFS; the topology is connected, so all distances are
    finite)."""
    source_set = {int(v) for v in sources}
    if not source_set:
        raise ModelError("hop_distances needs at least one source node")
    unknown = source_set - set(topology.nodes)
    if unknown:
        raise ModelError(f"unknown source nodes {sorted(unknown)}")
    distances = np.full(topology.n, -1, dtype=np.int64)
    queue = deque(sorted(source_set))
    for v in queue:
        distances[v] = 0
    while queue:
        v = queue.popleft()
        for u in topology.neighbors(v):
            if distances[u] < 0:
                distances[u] = distances[v] + 1
                queue.append(u)
    return distances


# ----------------------------------------------------------------------
# The per-node clean mask (object and vectorized paths).
# ----------------------------------------------------------------------


def clean_node_mask(
    algorithm: ThinUnison,
    configuration: Configuration,
    distances: np.ndarray,
) -> np.ndarray:
    """Boolean mask of clean correct nodes (faulty nodes — distance 0 —
    are never clean).  Reference object-model implementation."""
    topology = configuration.topology
    levels = algorithm.levels
    clean = np.zeros(topology.n, dtype=bool)
    for v in topology.nodes:
        if distances[v] == 0:
            continue
        state = configuration[v]
        if state.faulty:
            continue
        ok = True
        for u in topology.neighbors(v):
            if distances[u] < distances[v]:
                continue  # charged to the inner endpoint (or Byzantine)
            other = configuration[u]
            if other.faulty or not levels.adjacent(state.level, other.level):
                ok = False
                break
        clean[v] = ok
    return clean


def clean_node_mask_codes(kernel, codes: np.ndarray, csr, distances: np.ndarray):
    """Vectorized :func:`clean_node_mask` on the array engine's dense
    turn codes and CSR neighborhoods — one pass over the edge arrays,
    no configuration decode."""
    k2 = kernel.num_clocks
    rows = csr.row_index
    cols = csr.indices
    able = codes < k2
    # Edges charged to the row endpoint: neighbor strictly no closer to
    # the faulty set (faulty nodes have distance 0, so they never
    # qualify), excluding the CSR self-entries.
    relevant = (cols != rows) & (distances[cols] >= distances[rows])
    diff = (codes[cols] - codes[rows]) % k2
    adjacent = (diff <= 1) | (diff == k2 - 1)
    bad_entry = relevant & (~able[rows] | ~able[cols] | ~adjacent)
    dirty = np.zeros(len(codes), dtype=bool)
    dirty[rows[bad_entry]] = True
    return able & ~dirty & (distances > 0)


def execution_clean_mask(
    execution: ExecutionBase, distances: np.ndarray
) -> np.ndarray:
    """The clean mask of an execution's current configuration, using
    the vectorized path on the array engine (bit-identical to the
    object path — verified by the resilience test suite)."""
    if isinstance(execution, ArrayExecution):
        return clean_node_mask_codes(
            execution.algorithm.vector_kernel(),
            execution.codes,
            execution.topology.inclusive_csr(),
            distances,
        )
    return clean_node_mask(execution.algorithm, execution.configuration, distances)


# ----------------------------------------------------------------------
# Containment predicates.
# ----------------------------------------------------------------------


def radius_of_mask(clean: np.ndarray, distances: np.ndarray) -> int:
    """The containment radius encoded by one clean mask: the largest
    distance of an unclean correct node (0 when all are clean)."""
    unclean = (distances > 0) & ~np.asarray(clean, dtype=bool)
    if not unclean.any():
        return 0
    return int(distances[unclean].max())


def containment_radius(
    algorithm: ThinUnison,
    configuration: Configuration,
    distances: np.ndarray,
) -> int:
    """Smallest ``r`` such that the configuration is stabilized outside
    radius ``r``."""
    return radius_of_mask(
        clean_node_mask(algorithm, configuration, distances), distances
    )


def stabilized_outside(
    algorithm: ThinUnison,
    configuration: Configuration,
    distances: np.ndarray,
    radius: int,
) -> bool:
    """Whether every correct node at hop distance ``> radius`` from the
    faulty set is clean — the predicate that replaces the all-nodes
    stabilization check when permanent faults are present.  Vacuously
    true when no node lies beyond the radius."""
    return containment_radius(algorithm, configuration, distances) <= radius


def execution_stabilized_outside(
    execution: ExecutionBase, distances: np.ndarray, radius: int
) -> bool:
    """Engine-aware :func:`stabilized_outside` (vectorized on the array
    engine)."""
    clean = execution_clean_mask(execution, distances)
    return radius_of_mask(clean, distances) <= radius


# ----------------------------------------------------------------------
# Round-resolution tracking.
# ----------------------------------------------------------------------


class ContainmentTracker(Monitor):
    """Records, at every round boundary, the clean mask's containment
    radius and each node's last unclean round.

    ``last_unclean_round[v] == i`` means node ``v`` was unclean at the
    boundary of round ``i`` and clean at every later sampled boundary
    (0 means never observed unclean) — the per-node recovery time in
    the paper's round unit.
    """

    def __init__(self, faulty_nodes: Sequence[int]):
        self.faulty_nodes: Tuple[int, ...] = tuple(sorted(int(v) for v in faulty_nodes))
        self.distances: Optional[np.ndarray] = None
        self.radius_timeline: list = []
        self._last_unclean: Optional[np.ndarray] = None
        self._rounds = 0

    def on_start(self, execution: ExecutionBase) -> None:
        self.distances = hop_distances(execution.topology, self.faulty_nodes)
        self._last_unclean = np.zeros(execution.topology.n, dtype=np.int64)

    def on_step(self, execution: ExecutionBase, record: StepRecord) -> None:
        if not record.completed_round:
            return
        self._rounds += 1
        clean = execution_clean_mask(execution, self.distances)
        unclean = (self.distances > 0) & ~clean
        self._last_unclean[unclean] = self._rounds
        self.radius_timeline.append(radius_of_mask(clean, self.distances))

    @property
    def rounds(self) -> int:
        return self._rounds

    @property
    def last_unclean_round(self) -> np.ndarray:
        if self._last_unclean is None:
            raise ModelError("tracker observed no execution yet")
        return self._last_unclean

    def stable_radius(self, window: int) -> int:
        """The worst containment radius over the trailing ``window``
        round boundaries — robust against sampling a disruption wave at
        a lucky instant."""
        if not self.radius_timeline:
            raise ModelError("tracker observed no completed round yet")
        window = max(1, min(window, len(self.radius_timeline)))
        return int(max(self.radius_timeline[-window:]))


# ----------------------------------------------------------------------
# The full measurement harness.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ContainmentMeasurement:
    """Outcome of one fixed-horizon permanent-fault run."""

    faulty_nodes: Tuple[int, ...]
    distances: Tuple[int, ...]
    rounds: int
    confirm_rounds: int
    #: Worst containment radius over the trailing confirmation window.
    stable_radius: int
    #: Per-round-boundary containment radius trace.
    radius_timeline: Tuple[int, ...]
    #: Last round at which each node was observed unclean (0 = never).
    last_unclean_round: Tuple[int, ...]

    @property
    def max_distance(self) -> int:
        return max(self.distances)

    @property
    def contained(self) -> bool:
        """Whether some correct nodes lie strictly beyond the stable
        radius — i.e. the disruption did *not* engulf the graph."""
        return self.stable_radius < self.max_distance

    def settled(self, v: int) -> bool:
        """Whether node ``v`` was clean throughout the confirmation
        window."""
        return self.last_unclean_round[v] <= self.rounds - self.confirm_rounds

    def clean_fraction(self) -> float:
        """Fraction of correct nodes settled by the end of the run."""
        correct = [v for v, d in enumerate(self.distances) if d > 0]
        return sum(1 for v in correct if self.settled(v)) / len(correct)

    def recovery_by_distance(self) -> Dict[int, Dict[str, float]]:
        """Per hop distance: how many nodes, how many settled, and the
        mean/max recovery round among the settled ones — the
        recovery-time-vs-distance curve."""
        buckets: Dict[int, list] = {}
        for v, d in enumerate(self.distances):
            if d > 0:
                buckets.setdefault(int(d), []).append(v)
        curve: Dict[int, Dict[str, float]] = {}
        for d, nodes in sorted(buckets.items()):
            settled = [v for v in nodes if self.settled(v)]
            recoveries = [int(self.last_unclean_round[v]) for v in settled]
            curve[d] = {
                "nodes": len(nodes),
                "settled": len(settled),
                "mean_recovery_rounds": (
                    float(np.mean(recoveries)) if recoveries else None
                ),
                "max_recovery_rounds": max(recoveries) if recoveries else None,
            }
        return curve


def measure_containment(
    algorithm: ThinUnison,
    topology: Topology,
    initial: Configuration,
    scheduler: Scheduler,
    rng: np.random.Generator,
    faulty_nodes: Sequence[int],
    strategy: ByzantineStrategy,
    rounds: int,
    confirm_rounds: int = 10,
    engine: str = "array",
) -> ContainmentMeasurement:
    """Run ``rounds`` rounds under a permanent-fault adversary and
    measure containment.

    Unlike the transient-fault measurements there is no ``until``
    predicate — a Byzantine system never globally stabilizes — so the
    run is a fixed horizon and the reported radius is the worst over
    the trailing ``confirm_rounds`` boundaries.
    """
    if rounds < 1:
        raise ModelError("containment measurement needs rounds >= 1")
    if not 1 <= confirm_rounds <= rounds:
        raise ModelError("confirm window must lie in [1, rounds]")
    adversary = PermanentFaultAdversary(strategy, faulty_nodes, rng=rng)
    tracker = ContainmentTracker(faulty_nodes)
    execution = create_execution(
        topology,
        algorithm,
        initial,
        scheduler,
        rng=rng,
        monitors=(tracker,),
        intervention=adversary,
        engine=engine,
    )
    execution.run(max_rounds=rounds)
    return ContainmentMeasurement(
        faulty_nodes=tracker.faulty_nodes,
        distances=tuple(int(d) for d in tracker.distances),
        rounds=tracker.rounds,
        confirm_rounds=confirm_rounds,
        stable_radius=tracker.stable_radius(confirm_rounds),
        radius_timeline=tuple(tracker.radius_timeline),
        last_unclean_round=tuple(int(r) for r in tracker.last_unclean_round),
    )
