"""Re-stabilization analytics for dynamic-topology (churn) runs.

Static campaigns measure one number — the stabilization round.  Under
churn the interesting quantities are *trajectories*: how long the
system needs to re-absorb each topology event, what fraction of the
churn window it spends in a good configuration, and how tightly the
surviving clocks pulse once the dust settles.  This module owns those
three measurements so the campaign runner, the churn benchmark and the
tests share one definition:

* :class:`RestabilizationTracker` — per-event time-to-re-stabilize,
  fed step-by-step by whoever drives the execution;
* :func:`pulse_tightness` — the minimal cyclic arc of ``Z_{2k}``
  covering the alive able clocks, normalized to ``[0, 1]`` (0.0 is a
  perfect pulse, 1.0 means the clocks smear around the whole cycle or
  a faulty turn survives);
* :func:`churn_phase_boundary` — the sustainable-churn phase
  transition extracted from a (rate, clean-fraction) sweep.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "RestabilizationTracker",
    "churn_phase_boundary",
    "pulse_tightness",
]


class RestabilizationTracker:
    """Per-event re-stabilization times under a churn stream.

    The driver calls :meth:`on_event` when it applies a topology delta
    and :meth:`on_step` after every engine step with the current
    goodness verdict.  An *episode* opens at the first event that finds
    the system good (or at the event following a recovery) and closes
    at the first good step after it; events landing inside an open
    episode extend it rather than opening a second one, so episode
    times measure the response to event *clusters* the way the paper's
    adversary would see them.
    """

    def __init__(self) -> None:
        self._open: Optional[int] = None
        self.episodes: List[Tuple[int, int]] = []

    def on_event(self, t: int) -> None:
        """A topology delta was applied at engine time ``t``."""
        if self._open is None:
            self._open = t

    def on_step(self, t: int, good: bool) -> None:
        """One engine step completed at time ``t`` with verdict ``good``."""
        if good and self._open is not None:
            self.episodes.append((self._open, t))
            self._open = None

    @property
    def unresolved(self) -> bool:
        """An episode is still open (the run ended before recovery)."""
        return self._open is not None

    def times(self) -> List[int]:
        """Steps-to-re-stabilize of every closed episode, in order."""
        return [end - start for start, end in self.episodes]

    def mean_time(self) -> Optional[float]:
        times = self.times()
        if not times:
            return None
        return sum(times) / len(times)

    def max_time(self) -> Optional[int]:
        times = self.times()
        if not times:
            return None
        return max(times)


def pulse_tightness(algorithm, states: Iterable) -> Optional[float]:
    """Pulse-synchrony tightness of ``states`` on the clock cycle.

    ``states`` are the *alive* nodes' states.  For AlgAU-family
    algorithms (anything exposing a ``levels``/:class:`LevelSystem`
    attribute) the result is the length of the minimal cyclic arc of
    ``Z_{2k}`` containing every able clock, divided by the group order:
    0.0 when all clocks agree (a perfect pulse, the paper's biological
    reading of unison), approaching 1.0 as they smear around the whole
    cycle.  A surviving faulty turn pins the value at 1.0 — the colony
    is not pulsing at all.  Algorithms without a level system yield
    ``None`` (the column stays empty for the zoo tasks).
    """
    levels = getattr(algorithm, "levels", None)
    if levels is None or not hasattr(levels, "clock_value"):
        return None
    group = levels.group_order
    clocks = set()
    for state in states:
        if getattr(state, "faulty", False):
            return 1.0
        clocks.add(levels.clock_value(state.level))
    if len(clocks) <= 1:
        return 0.0
    ordered = sorted(clocks)
    # Largest cyclic gap between consecutive occupied clocks; the
    # minimal covering arc is the rest of the cycle.
    gaps = [b - a for a, b in zip(ordered, ordered[1:])]
    gaps.append(group - ordered[-1] + ordered[0])
    return float(group - max(gaps)) / float(group)


def churn_phase_boundary(
    points: Sequence[Tuple[float, float]], threshold: float = 0.5
) -> Optional[float]:
    """The sustainable-churn phase boundary of a rate sweep.

    ``points`` are ``(churn_rate, clean_fraction)`` observations —
    typically one per scenario, several per rate.  Fractions are
    averaged per rate, rates are scanned in increasing order, and the
    boundary is the midpoint between the last *sustainable* rate (mean
    clean fraction at or above ``threshold``) and the first
    *unsustainable* one.  Returns ``None`` when the sweep never
    collapses (the boundary lies beyond the sweep — not measurable),
    and the smallest swept rate when even that rate is unsustainable.
    """
    if not points:
        return None
    by_rate: Dict[float, List[float]] = {}
    for rate, fraction in points:
        by_rate.setdefault(float(rate), []).append(float(fraction))
    rates = sorted(by_rate)
    previous: Optional[float] = None
    for rate in rates:
        mean = sum(by_rate[rate]) / len(by_rate[rate])
        if mean < threshold:
            if previous is None:
                return rate
            return (previous + rate) / 2.0
        previous = rate
    return None
