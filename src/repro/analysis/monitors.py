"""Execution monitors.

Monitors observe executions step by step without influencing them; the
analysis layer uses them to measure stabilization in the paper's units,
count AlgAU transition types, verify invariant closure (the paper's
Observations), and record output-vector dynamics for the static tasks.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.algau import ThinUnison, TransitionType
from repro.core.predicates import (
    is_good_graph,
    is_out_protected_graph,
    out_protected_nodes,
    unjustifiably_faulty_nodes,
)
from repro.model.configuration import Configuration
from repro.model.execution import Execution, Monitor, StepRecord


class TransitionCounter(Monitor):
    """Tallies AlgAU transition types (AA/AF/FA) per node and overall."""

    def __init__(self, algorithm: ThinUnison):
        self.algorithm = algorithm
        self.totals: TallyCounter = TallyCounter()
        self.per_node: Dict[int, TallyCounter] = {}

    def on_start(self, execution: Execution) -> None:
        self.per_node = {v: TallyCounter() for v in execution.topology.nodes}

    def on_step(self, execution: Execution, record: StepRecord) -> None:
        for node, old, new in record.changed:
            kind = self.algorithm.classify_change(old, new)
            if kind is not None and kind is not TransitionType.STAY:
                self.totals[kind] += 1
                self.per_node[node][kind] += 1

    def pulses(self, node: int) -> int:
        """Type-AA count for ``node`` (its unison pulses)."""
        return self.per_node.get(node, TallyCounter())[TransitionType.AA]


class MoveCounter(Monitor):
    """Counts *moves* — node activations that changed the state — the
    workload axis of the time/space/work Pareto trade-off.

    A step's moves are exactly ``len(record.changed)``: the engines put
    only real state changes (``delta`` transitions applied by the step)
    into ``StepRecord.changed``, so activations where ``delta`` returned
    the current state are free, and out-of-band corruption (pokes,
    ``replace_configuration``) is never billed as algorithm work.  The
    count accumulates across :meth:`on_start` boundaries so one counter
    can total a multi-phase run (e.g. stabilize + recover).
    """

    def __init__(self) -> None:
        self.moves = 0

    def on_step(self, execution: Execution, record: StepRecord) -> None:
        self.moves += len(record.changed)


class GoodGraphMonitor(Monitor):
    """Records when the graph first becomes good and asserts closure
    (Lem 2.10: goodness, once reached, is never lost).

    The check goes through :meth:`ExecutionBase.graph_is_good`, which
    every engine answers from its incrementally maintained goodness
    counts — O(changes) amortized per step, not an O(n + m)
    configuration scan.  Goodness is therefore always evaluated under
    the *execution's own* algorithm; the ``algorithm`` parameter is
    retained only for backwards compatibility and is ignored."""

    def __init__(
        self, algorithm: Optional[ThinUnison] = None, check_every_step: bool = False
    ):
        self.check_every_step = check_every_step
        self.first_good_time: Optional[int] = None
        self.first_good_round: Optional[int] = None
        self.goodness_lost_at: Optional[int] = None

    def _check(self, execution: Execution, t: int) -> None:
        good = execution.graph_is_good()
        if good and self.first_good_time is None:
            self.first_good_time = t
            self.first_good_round = execution.rounds.round_of_time(
                min(t, execution.rounds.boundaries[-1])
            ) if t <= execution.rounds.boundaries[-1] else None
        if not good and self.first_good_time is not None:
            self.goodness_lost_at = t

    def on_start(self, execution: Execution) -> None:
        self._check(execution, 0)

    def on_step(self, execution: Execution, record: StepRecord) -> None:
        if self.check_every_step or record.completed_round:
            self._check(execution, record.t + 1)


class InvariantViolation(AssertionError):
    """Raised by :class:`AlgAUInvariantMonitor` when a proved invariant
    fails — this would indicate an implementation bug."""


class AlgAUInvariantMonitor(Monitor):
    """Checks the paper's monotone invariants after every step:

    * Obs 2.3 — out-protected nodes stay out-protected;
    * Lem 2.16 — after the graph is out-protected, no node *becomes*
      unjustifiably faulty;
    * Lem 2.10 — a good graph stays good.

    Expensive (recomputes global predicates every step); used by tests
    on small instances only.
    """

    def __init__(self, algorithm: ThinUnison):
        self.algorithm = algorithm
        self._previous_out_protected: frozenset = frozenset()
        self._was_out_protected_graph = False
        self._previous_unjustified: frozenset = frozenset()
        self._was_good = False

    def on_start(self, execution: Execution) -> None:
        config = execution.configuration
        self._previous_out_protected = out_protected_nodes(self.algorithm, config)
        self._was_out_protected_graph = is_out_protected_graph(self.algorithm, config)
        self._previous_unjustified = unjustifiably_faulty_nodes(self.algorithm, config)
        self._was_good = is_good_graph(self.algorithm, config)

    def on_step(self, execution: Execution, record: StepRecord) -> None:
        config = execution.configuration
        now_out_protected = out_protected_nodes(self.algorithm, config)
        if not self._previous_out_protected <= now_out_protected:
            lost = self._previous_out_protected - now_out_protected
            raise InvariantViolation(
                f"Obs 2.3 violated at t={record.t}: nodes {sorted(lost)} "
                "lost out-protection"
            )
        now_unjustified = unjustifiably_faulty_nodes(self.algorithm, config)
        if self._was_out_protected_graph:
            fresh = now_unjustified - self._previous_unjustified
            if fresh:
                raise InvariantViolation(
                    f"Lem 2.16 violated at t={record.t}: nodes "
                    f"{sorted(fresh)} became unjustifiably faulty"
                )
        now_good = is_good_graph(self.algorithm, config)
        if self._was_good and not now_good:
            raise InvariantViolation(
                f"Lem 2.10 violated at t={record.t}: goodness was lost"
            )
        self._previous_out_protected = now_out_protected
        self._was_out_protected_graph = (
            self._was_out_protected_graph
            or is_out_protected_graph(self.algorithm, config)
        )
        self._previous_unjustified = now_unjustified
        self._was_good = now_good


class OutputChangeMonitor(Monitor):
    """Tracks the output vector of a static-task algorithm: when it
    last changed and whether all nodes are in output states.

    The stabilization round of a static task is the first round from
    which the output vector is valid and never changes again.

    The vector and the completeness counter are folded forward from
    each record's change set — O(|changed|) per step instead of the
    former full-configuration snapshot, so sparse schedules pay for
    activity, not for ``n``.  Records only cover ``_apply``'s updates,
    so the monitor watches :attr:`ExecutionBase.state_epoch` and falls
    back to a full re-snapshot on the (rare) steps where an
    intervention, ``poke_states`` or ``replace_configuration`` mutated
    state out-of-band.
    """

    def __init__(self, algorithm):
        self.algorithm = algorithm
        self.last_change_time = 0
        self._vector: Optional[List] = None
        self._vector_tuple: Optional[Tuple] = None
        self._incomplete = 1  # "incomplete" until the first snapshot
        self._epoch = 0

    def _output_of(self, state):
        if self.algorithm.is_output_state(state):
            return self.algorithm.output(state)
        return None

    def _snapshot(self, execution: Execution) -> None:
        config = execution.configuration
        self._vector = [self._output_of(q) for q in config.states()]
        self._vector_tuple = None
        self._incomplete = sum(1 for out in self._vector if out is None)
        self._epoch = execution.state_epoch

    def on_start(self, execution: Execution) -> None:
        self._snapshot(execution)

    def on_step(self, execution: Execution, record: StepRecord) -> None:
        if execution.state_epoch != self._epoch:
            # Out-of-band mutation since the last snapshot: the record
            # stream alone no longer describes the configuration.  The
            # net before/after comparison is not enough on its own: a
            # poke landing in the same step as a tracked delta can be
            # exactly undone by it (poke moves a node's output, δ moves
            # it back), leaving the post-step vector equal to the
            # previous one even though the output passed through a
            # different value at the C_t boundary.  Any output-changing
            # delta in the record therefore counts as a change too — if
            # it exists and the net vector is unchanged, a poke must
            # have counter-moved it.
            before = self._vector
            self._snapshot(execution)
            moved = self._vector != before or any(
                self._output_of(old) != self._output_of(new)
                for _, old, new in record.changed
            )
            if moved:
                self.last_change_time = record.t + 1
            return
        if not record.changed:
            return
        moved = False
        vector = self._vector
        for v, old, new in record.changed:
            old_out = self._output_of(old)
            new_out = self._output_of(new)
            if old_out == new_out:
                continue
            vector[v] = new_out
            self._incomplete += (new_out is None) - (old_out is None)
            moved = True
        if moved:
            self.last_change_time = record.t + 1
            self._vector_tuple = None

    @property
    def current_vector(self) -> Optional[Tuple]:
        if self._vector is None:
            return None
        if self._vector_tuple is None:
            self._vector_tuple = tuple(self._vector)
        return self._vector_tuple

    @property
    def currently_complete(self) -> bool:
        return self._incomplete == 0


class PredicateTimeline(Monitor):
    """Records, per completed round, the value of a configuration
    predicate — handy for plots/tables of recovery dynamics."""

    def __init__(self, predicate: Callable[[Configuration], object]):
        self.predicate = predicate
        self.timeline: List[Tuple[int, object]] = []

    def on_start(self, execution: Execution) -> None:
        self.timeline.append((0, self.predicate(execution.configuration)))

    def on_step(self, execution: Execution, record: StepRecord) -> None:
        if record.completed_round:
            self.timeline.append(
                (
                    execution.completed_rounds,
                    self.predicate(execution.configuration),
                )
            )
