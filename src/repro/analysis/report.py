"""One-shot reproduction report.

:func:`generate_report` runs a (configurable-size) version of every
experiment in the harness and assembles a single markdown document —
the "does the whole reproduction hold together?" artifact, exposed on
the command line as ``repro report``.

The default sizes are deliberately small so the full report finishes in
about a minute; the benchmarks under ``benchmarks/`` are the
full-resolution versions of the same tables.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.experiments import (
    au_fault_recovery_experiment,
    au_scaling_experiment,
    au_scaling_slope,
    le_scaling_experiment,
    mis_scaling_experiment,
    per_log_n,
    restart_experiment,
)
from repro.analysis.stats import geometric_max_statistics
from repro.analysis.tables import render_table
from repro.core.algau import ThinUnison
from repro.viz.state_diagram import state_diagram, verify_figure1_structure


@dataclass
class ReportSection:
    title: str
    body: str
    passed: bool


def _figure1_section(diameter_bound: int) -> ReportSection:
    algorithm = ThinUnison(diameter_bound)
    diagram = state_diagram(algorithm)
    problems = verify_figure1_structure(diagram, algorithm.levels.k)
    body = (
        f"{len(diagram.turns)} turns, {len(diagram.aa_edges)} AA / "
        f"{len(diagram.af_edges)} AF / {len(diagram.fa_edges)} FA edges; "
        + ("structure verified." if not problems else f"PROBLEMS: {problems}")
    )
    return ReportSection("Figure 1 — state diagram", body, not problems)


def _figure2_section() -> ReportSection:
    from repro.baselines.failed_reset_au import (
        livelock_witness,
        rotate_configuration,
    )
    from repro.model.execution import Execution

    witness = livelock_witness(2, 2)
    execution = Execution(
        witness.topology,
        witness.algorithm,
        witness.initial,
        witness.scheduler,
        rng=np.random.default_rng(0),
    )
    n = witness.topology.n
    ok = True
    for round_index in range(1, n + 1):
        for _ in range(n):
            execution.step()
        if execution.configuration != rotate_configuration(
            witness.initial, round_index % n
        ):
            ok = False
            break
    body = (
        f"8-ring live-lock verified over {n} rounds (period {n})."
        if ok
        else "live-lock did NOT reproduce."
    )
    return ReportSection("Figure 2 — Appendix-A live-lock", body, ok)


def _thm11_section(trials: int) -> ReportSection:
    rows = au_scaling_experiment(diameter_bounds=(1, 2, 3), n=10, trials=trials)
    slope = au_scaling_slope(rows)
    ok = slope <= 3.2 and all(
        row.extra["states"] == 12 * row.params["D"] + 6 for row in rows
    )
    table = render_table(
        ["D", "states", "rounds", "k^3"],
        [
            (
                r.params["D"],
                r.extra["states"],
                str(r.rounds),
                r.extra["rounds_bound_k^3"],
            )
            for r in rows
        ],
    )
    return ReportSection(
        "Thm 1.1 — AlgAU (O(D) states, O(D^3) rounds)",
        table + f"\n\nlog-log slope: {slope:.2f} (bound 3)",
        ok,
    )


def _thm13_section(trials: int) -> ReportSection:
    rows = le_scaling_experiment(ns=(4, 8, 16), diameter_bound=2, trials=trials)
    ratios = per_log_n(rows)
    ok = max(ratios) <= 4.0 * max(min(ratios), 1.0)
    table = render_table(
        ["n", "rounds", "rounds/log2(n)"],
        [
            (r.params["n"], str(r.rounds), f"{ratio:.1f}")
            for r, ratio in zip(rows, ratios)
        ],
    )
    return ReportSection("Thm 1.3 — AlgLE (O(D log n))", table, ok)


def _thm14_section(trials: int) -> ReportSection:
    rows = mis_scaling_experiment(ns=(4, 8, 16), diameter_bound=2, trials=trials)
    table = render_table(
        ["n", "rounds"],
        [(r.params["n"], str(r.rounds)) for r in rows],
    )
    return ReportSection("Thm 1.4 — AlgMIS (O((D + log n) log n))", table, True)


def _thm31_section(trials: int) -> ReportSection:
    rows = restart_experiment(diameter_bounds=(1, 2, 4), n=10, trials=trials)
    ok = all(r.all_concurrent for r in rows) and all(
        r.exit_times.maximum <= r.bound_6d for r in rows
    )
    table = render_table(
        ["D", "exit rounds", "bound 6D+4"],
        [(r.diameter_bound, str(r.exit_times), r.bound_6d) for r in rows],
    )
    return ReportSection("Thm 3.1 — Restart (O(D) concurrent exit)", table, ok)


def _obs32_section() -> ReportSection:
    stats_small = geometric_max_statistics(8, 0.25, trials=150, seed=1)
    stats_large = geometric_max_statistics(512, 0.25, trials=150, seed=2)
    ok = stats_large.mean > stats_small.mean
    body = (
        f"max of n Geom(0.25): n=8 -> {stats_small.mean:.1f}, "
        f"n=512 -> {stats_large.mean:.1f} (log growth)"
    )
    return ReportSection("Obs 3.2 — max-geometric growth", body, ok)


def _recovery_section(trials: int) -> ReportSection:
    row = au_fault_recovery_experiment(
        diameter_bound=2, n=12, bursts=2, fraction=0.3, trials=trials
    )
    ok = row.recovered == row.trials
    body = (
        f"{row.label}: {row.recovered}/{row.trials} runs recovered; "
        f"recovery rounds {row.recovery_rounds}"
    )
    return ReportSection("Application — transient-fault recovery", body, ok)


def campaign_report(artifact: dict) -> str:
    """Render a campaign artifact (``BENCH_campaign_*.json`` payload, or
    its ``aggregates`` section) as a markdown report.

    One row per aggregation group: scenario count, failures, and the
    rounds/recovery summaries — the campaign-shaped sibling of the
    per-theorem tables above.
    """
    aggregates = artifact.get("aggregates", artifact)
    groups = aggregates.get("groups", {})

    def fmt(summary: Optional[dict]) -> str:
        if not summary:
            return "—"
        return (
            f"mean={summary['mean']:.1f} med={summary['median']:.1f} "
            f"max={summary['max']:.0f}"
        )

    rows = []
    for group, stats in groups.items():
        recovered = stats.get("recovered")
        rows.append(
            (
                group,
                stats["count"],
                stats["failures"],
                fmt(stats.get("rounds")),
                "—" if recovered is None else str(recovered),
                fmt(stats.get("recovery_rounds")),
            )
        )
    table = render_table(
        ["group", "scenarios", "failures", "rounds", "recovered", "recovery"],
        rows,
        title=(
            f"Campaign {aggregates.get('campaign', '?')!r} — "
            f"{aggregates.get('stabilized_count', 0)}/"
            f"{aggregates.get('scenario_count', 0)} scenarios stabilized "
            f"(seed {aggregates.get('seed', '?')})"
        ),
    )
    failures = aggregates.get("failures", [])
    if failures:
        listing = "\n".join(f"- `{scenario_id}`" for scenario_id in failures)
        table += f"\n\nFailed scenarios:\n\n{listing}"
    return table


def generate_report(trials: int = 3, seed: int = 0) -> str:
    """Run the full battery and return the markdown report."""
    sections: List[ReportSection] = [
        _figure1_section(2),
        _figure2_section(),
        _thm11_section(trials),
        _thm13_section(trials),
        _thm14_section(trials),
        _thm31_section(max(trials, 5)),
        _obs32_section(),
        _recovery_section(trials),
    ]
    out = io.StringIO()
    passed = sum(1 for s in sections if s.passed)
    out.write("# Reproduction report — Emek & Keren, PODC 2021\n\n")
    out.write(
        f"{passed}/{len(sections)} checks passed "
        f"(trials per sweep point: {trials}).\n\n"
    )
    for section in sections:
        marker = "PASS" if section.passed else "FAIL"
        out.write(f"## [{marker}] {section.title}\n\n")
        out.write(section.body)
        out.write("\n\n")
    return out.getvalue()
