"""Stabilization measurement in the paper's units.

The paper defines the stabilization time of an execution as the
smallest round index ``i`` such that the execution has stabilized by
time ``R(i)``.  For AlgAU, stabilization coincides with the graph being
*good* (Sec. 2.3.2); for the static tasks (LE/MIS) it is the first time
from which the configuration is an output configuration with a valid,
never-again-changing output vector.

Measurement strategy for static tasks: run with an
:class:`~repro.analysis.monitors.OutputChangeMonitor` until the output
vector is valid and complete, then keep running for a confirmation
window; if the vector changes, continue from the new candidate point.
The reported round is the round of the *last* output change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.core.algau import ThinUnison
from repro.graphs.topology import Topology
from repro.model.algorithm import Algorithm
from repro.model.configuration import Configuration
from repro.model.engine import create_execution
from repro.model.errors import StabilizationError
from repro.model.execution import Execution
from repro.model.scheduler import Scheduler
from repro.analysis.monitors import MoveCounter, OutputChangeMonitor


@dataclass(frozen=True)
class StabilizationResult:
    """Outcome of one stabilization measurement."""

    stabilized: bool
    rounds: int  # the paper's unit: smallest i with stabilization by R(i)
    steps: int
    detail: str = ""
    #: Total work: node activations that changed the state (see
    #: :class:`~repro.analysis.monitors.MoveCounter`).
    moves: int = 0


def measure_au_stabilization(
    algorithm: ThinUnison,
    topology: Topology,
    initial: Configuration,
    scheduler: Scheduler,
    rng: np.random.Generator,
    max_rounds: int,
    confirm_rounds: int = 0,
    engine: str = "object",
) -> StabilizationResult:
    """Rounds until the graph becomes good (AlgAU stabilization).

    ``confirm_rounds`` optionally re-checks closure (Lem 2.10 proves it,
    so tests use it as a tripwire, experiments leave it at 0).
    ``engine`` selects the execution backend (``"object"`` or
    ``"array"``); since AlgAU is deterministic the measured trajectory —
    and therefore the reported rounds — is identical either way.  Both
    engines answer the per-step goodness predicate from incrementally
    maintained counts (O(changes) amortized, no per-step O(n + m)
    configuration scan), so polling ``until`` every step costs activity,
    not ``n`` — which is what makes large-``n`` sweeps under sparse
    asynchronous schedules practical.
    """
    moves = MoveCounter()
    execution = create_execution(
        topology, algorithm, initial, scheduler, rng=rng, engine=engine,
        monitors=(moves,),
    )

    def good(e) -> bool:
        return e.graph_is_good()

    result = execution.run(max_rounds=max_rounds, until=good)
    if not result.stopped_by_predicate:
        return StabilizationResult(
            False, result.rounds, result.steps, "good graph not reached",
            moves=moves.moves,
        )
    stabilization_round = execution.completed_rounds + (
        0
        if execution.t == execution.rounds.boundaries[-1]
        else 1
    )
    if confirm_rounds:
        execution.run_rounds(confirm_rounds)
        if not good(execution):
            return StabilizationResult(
                False,
                stabilization_round,
                execution.t,
                "goodness lost after being reached (bug!)",
                moves=moves.moves,
            )
    return StabilizationResult(
        True, stabilization_round, execution.t, moves=moves.moves
    )


def measure_static_task_stabilization(
    algorithm: Algorithm,
    topology: Topology,
    initial: Configuration,
    scheduler: Scheduler,
    rng: np.random.Generator,
    is_valid_output: Callable[[Sequence], bool],
    max_rounds: int,
    confirm_rounds: int = 50,
    monitors: Tuple = (),
) -> StabilizationResult:
    """Rounds until a static task's output is valid and stays fixed.

    The measurement loop alternates "run until the output looks valid"
    with a ``confirm_rounds`` stability window; the reported round is
    the round containing the last output change.  The
    :class:`OutputChangeMonitor` folds the output vector forward from
    each step's change set, so the per-step predicate is O(1) until the
    vector is complete — no full-configuration snapshot per step.
    Extra ``monitors`` (e.g. the campaign runner's wall-clock deadline
    guard) are attached after the measurement's own.
    """
    monitor = OutputChangeMonitor(algorithm)
    moves = MoveCounter()
    execution = Execution(
        topology, algorithm, initial, scheduler, rng=rng,
        monitors=(monitor, moves, *monitors),
    )

    def looks_stable(e: Execution) -> bool:
        return monitor.currently_complete and is_valid_output(monitor.current_vector)

    while execution.completed_rounds < max_rounds:
        result = execution.run(max_rounds=max_rounds, until=looks_stable)
        if not result.stopped_by_predicate:
            return StabilizationResult(
                False,
                execution.completed_rounds,
                execution.t,
                "no valid output configuration reached",
                moves=moves.moves,
            )
        change_marker = monitor.last_change_time
        execution.run_rounds(confirm_rounds)
        if monitor.last_change_time == change_marker and looks_stable(execution):
            rounds = _round_of_time(execution, monitor.last_change_time)
            return StabilizationResult(
                True, rounds, execution.t, moves=moves.moves
            )
        # The output moved during the confirmation window — keep going.
    return StabilizationResult(
        False,
        execution.completed_rounds,
        execution.t,
        "output kept changing within the round budget",
        moves=moves.moves,
    )


def _round_of_time(execution: Execution, t: int) -> int:
    boundaries = execution.rounds.boundaries
    if t > boundaries[-1]:
        return execution.completed_rounds + 1
    return execution.rounds.round_of_time(t)


def run_trials(
    measure: Callable[[np.random.Generator], StabilizationResult],
    trials: int,
    seed: int = 0,
    require_all: bool = True,
) -> Tuple[StabilizationResult, ...]:
    """Run ``trials`` seeded measurements; optionally require success."""
    results = []
    for trial in range(trials):
        rng = np.random.default_rng(seed + trial)
        result = measure(rng)
        if require_all and not result.stabilized:
            raise StabilizationError(
                f"trial {trial} failed to stabilize: {result.detail}"
            )
        results.append(result)
    return tuple(results)
