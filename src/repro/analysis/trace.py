"""Execution tracing, persistence and replay.

Distributed-algorithm debugging lives and dies by reproducible traces.
This module provides:

* :class:`TraceRecorder` — a monitor that records every step (activation
  set, state changes, round boundaries) into a structured, JSON-
  serializable trace;
* :class:`ScheduleRecorder` — records just the activation sets, so that
  any run can be replayed under an
  :class:`~repro.model.scheduler.ExplicitScheduler` (deterministic
  algorithms replay exactly; randomized algorithms replay exactly when
  re-seeded identically);
* :func:`save_trace` / :func:`load_trace` — JSON round-tripping.

States are rendered with ``str`` for the trace (human-oriented); replay
fidelity comes from re-running with the recorded schedule and seed, not
from parsing states back.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.model.execution import Execution, Monitor, StepRecord
from repro.model.scheduler import ExplicitScheduler


@dataclass
class TraceStep:
    """One recorded step."""

    t: int
    activated: Tuple[int, ...]
    changes: Tuple[Tuple[int, str, str], ...]  # (node, old, new)
    completed_round: bool


@dataclass
class Trace:
    """A full recorded execution."""

    algorithm: str
    topology: str
    n: int
    steps: List[TraceStep] = field(default_factory=list)
    initial: Tuple[str, ...] = ()
    final: Tuple[str, ...] = ()

    @property
    def length(self) -> int:
        return len(self.steps)

    def rounds(self) -> int:
        return sum(1 for step in self.steps if step.completed_round)

    def changes_of(self, node: int) -> List[Tuple[int, str, str]]:
        """All state changes of one node: (t, old, new)."""
        out = []
        for step in self.steps:
            for v, old, new in step.changes:
                if v == node:
                    out.append((step.t, old, new))
        return out

    def activation_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for step in self.steps:
            for v in step.activated:
                counts[v] = counts.get(v, 0) + 1
        return counts

    def to_json(self) -> str:
        payload = {
            "algorithm": self.algorithm,
            "topology": self.topology,
            "n": self.n,
            "initial": list(self.initial),
            "final": list(self.final),
            "steps": [
                {
                    "t": step.t,
                    "activated": list(step.activated),
                    "changes": [list(c) for c in step.changes],
                    "completed_round": step.completed_round,
                }
                for step in self.steps
            ],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        payload = json.loads(text)
        trace = cls(
            algorithm=payload["algorithm"],
            topology=payload["topology"],
            n=payload["n"],
            initial=tuple(payload.get("initial", ())),
            final=tuple(payload.get("final", ())),
        )
        for raw in payload["steps"]:
            trace.steps.append(
                TraceStep(
                    t=raw["t"],
                    activated=tuple(raw["activated"]),
                    changes=tuple((int(v), old, new) for v, old, new in raw["changes"]),
                    completed_round=raw["completed_round"],
                )
            )
        return trace


class TraceRecorder(Monitor):
    """Records a :class:`Trace` of the execution it monitors."""

    def __init__(self) -> None:
        self.trace: Optional[Trace] = None

    def on_start(self, execution: Execution) -> None:
        config = execution.configuration
        self.trace = Trace(
            algorithm=execution.algorithm.name,
            topology=execution.topology.name,
            n=execution.topology.n,
            initial=tuple(str(config[v]) for v in execution.topology.nodes),
        )

    def on_step(self, execution: Execution, record: StepRecord) -> None:
        assert self.trace is not None
        self.trace.steps.append(
            TraceStep(
                t=record.t,
                activated=tuple(sorted(record.activated)),
                changes=tuple(
                    (v, str(old), str(new)) for v, old, new in record.changed
                ),
                completed_round=record.completed_round,
            )
        )
        self.trace.final = tuple(
            str(execution.configuration[v]) for v in execution.topology.nodes
        )


class ScheduleRecorder(Monitor):
    """Records the activation sets so a run can be replayed."""

    def __init__(self) -> None:
        self.activations: List[Tuple[int, ...]] = []

    def on_step(self, execution: Execution, record: StepRecord) -> None:
        self.activations.append(tuple(sorted(record.activated)))

    def as_scheduler(self, repeat: bool = False) -> ExplicitScheduler:
        """The recorded schedule as a replayable scheduler."""
        return ExplicitScheduler(self.activations, repeat=repeat)


def save_trace(trace: Trace, path: str) -> None:
    """Write a trace to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace.to_json())


def load_trace(path: str) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    with open(path, "r", encoding="utf-8") as handle:
        return Trace.from_json(handle.read())
