"""The experiment harness: one function per paper claim.

Each function runs a seeded Monte-Carlo sweep and returns structured
rows; the benchmarks print them via :mod:`repro.analysis.tables` and
record paper-vs-measured in EXPERIMENTS.md.  All experiments are
laptop-scale by construction (the paper's claims are about rounds, not
wall-clock, so modest ``n`` suffices to check shapes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stabilization import (
    measure_au_stabilization,
    measure_static_task_stabilization,
)
from repro.analysis.stats import Summary, loglog_slope, ratio_to_log
from repro.core.algau import ThinUnison
from repro.faults.injection import (
    au_adversarial_suite,
    random_configuration,
)
from repro.graphs.generators import (
    bounded_diameter_family,
    damaged_clique,
    complete_graph,
)
from repro.graphs.topology import Topology
from repro.model.engine import create_execution
from repro.model.execution import Execution
from repro.model.scheduler import (
    Scheduler,
    ShuffledRoundRobinScheduler,
    SynchronousScheduler,
)
from repro.sync.synchronizer import Synchronizer
from repro.tasks.le import AlgLE
from repro.tasks.mis import AlgMIS
from repro.tasks.restart import IdleState, RestartState, StandaloneRestart
from repro.tasks.spec import check_le_output, check_mis_output


@dataclass(frozen=True)
class SweepRow:
    """One row of an experiment table."""

    label: str
    params: Dict[str, object]
    rounds: Summary
    extra: Dict[str, object] = field(default_factory=dict)


def _bounded_topology(n: int, diameter_bound: int, rng) -> Topology:
    """The sweep workload: a damaged clique with diameter within the
    bound — degenerating to the complete graph at ``D = 1`` (removing
    any edge from a clique already exceeds diameter 1)."""
    if diameter_bound == 1:
        return complete_graph(n)
    return damaged_clique(n, diameter_bound, rng, damage=0.4)


# ----------------------------------------------------------------------
# Thm 1.1 — AlgAU scaling in D.
# ----------------------------------------------------------------------


def au_scaling_experiment(
    diameter_bounds: Sequence[int] = (1, 2, 3, 4, 5),
    n: int = 16,
    trials: int = 10,
    scheduler_factory: Callable[[], Scheduler] = ShuffledRoundRobinScheduler,
    seed: int = 0,
    engine: str = "object",
) -> List[SweepRow]:
    """Stabilization rounds and exact state counts of AlgAU as ``D``
    grows (paper: states ``= 12D + 6``, rounds ``= O(D^3)``).

    Each trial takes the worst adversarial start from the named suite
    (random / sign-split / clock-tear / all-faulty).  ``engine`` picks
    the execution backend; AlgAU is deterministic, so the rows are
    engine-independent.
    """
    rows: List[SweepRow] = []
    for d in diameter_bounds:
        algorithm = ThinUnison(d)
        worst_rounds: List[int] = []
        for trial in range(trials):
            rng = np.random.default_rng(seed + 1000 * d + trial)
            topology = bounded_diameter_family(d, n, rng)
            per_start = []
            for name, initial in au_adversarial_suite(algorithm, topology, rng).items():
                result = measure_au_stabilization(
                    algorithm,
                    topology,
                    initial,
                    scheduler_factory(),
                    rng,
                    max_rounds=200 * (3 * d + 2) ** 3,
                    engine=engine,
                )
                assert result.stabilized, (d, name, result.detail)
                per_start.append(result.rounds)
            worst_rounds.append(max(per_start))
        k = algorithm.levels.k
        rows.append(
            SweepRow(
                label=f"D={d}",
                params={"D": d, "n": n, "k": k},
                rounds=Summary.of(worst_rounds),
                extra={
                    "states": algorithm.state_space_size(),
                    "states_bound_12D+6": 12 * d + 6,
                    "rounds_bound_k^3": k**3,
                },
            )
        )
    return rows


def au_scaling_slope(rows: Sequence[SweepRow]) -> float:
    """Empirical polynomial degree of rounds vs D (paper bound: <= 3)."""
    return loglog_slope(
        [row.params["D"] for row in rows],
        [row.rounds.mean for row in rows],
    )


# ----------------------------------------------------------------------
# Thm 1.3 / 1.4 — LE and MIS scaling.
# ----------------------------------------------------------------------


def _static_task_rows(
    make_algorithm: Callable[[int], object],
    validity: str,
    ns: Sequence[int],
    diameter_bound: int,
    trials: int,
    seed: int,
    scheduler_factory: Callable[[], Scheduler],
    max_rounds: int,
) -> List[SweepRow]:
    rows: List[SweepRow] = []
    for n in ns:
        algorithm = make_algorithm(diameter_bound)
        rounds: List[int] = []
        for trial in range(trials):
            rng = np.random.default_rng(seed + 1000 * n + trial)
            topology = _bounded_topology(n, diameter_bound, rng)
            if validity == "le":

                def is_valid(out):
                    return check_le_output(out).valid

            else:

                def is_valid(out, topo=topology):
                    return check_mis_output(topo, out).valid

            initial = random_configuration(algorithm, topology, rng)
            result = measure_static_task_stabilization(
                algorithm,
                topology,
                initial,
                scheduler_factory(),
                rng,
                is_valid,
                max_rounds=max_rounds,
                confirm_rounds=8 * (diameter_bound + 1),
            )
            assert result.stabilized, (n, trial, result.detail)
            rounds.append(result.rounds)
        rows.append(
            SweepRow(
                label=f"n={n}",
                params={"n": n, "D": diameter_bound},
                rounds=Summary.of(rounds),
                extra={"states": algorithm.state_space_size()},
            )
        )
    return rows


def le_scaling_experiment(
    ns: Sequence[int] = (4, 8, 16, 32),
    diameter_bound: int = 2,
    trials: int = 5,
    seed: int = 0,
    scheduler_factory: Callable[[], Scheduler] = SynchronousScheduler,
    max_rounds: int = 40_000,
) -> List[SweepRow]:
    """AlgLE stabilization rounds as ``n`` grows (paper: O(D log n))."""
    return _static_task_rows(
        lambda d: AlgLE(d),
        "le",
        ns,
        diameter_bound,
        trials,
        seed,
        scheduler_factory,
        max_rounds,
    )


def mis_scaling_experiment(
    ns: Sequence[int] = (4, 8, 16, 32),
    diameter_bound: int = 2,
    trials: int = 5,
    seed: int = 0,
    scheduler_factory: Callable[[], Scheduler] = SynchronousScheduler,
    max_rounds: int = 40_000,
) -> List[SweepRow]:
    """AlgMIS stabilization rounds as ``n`` grows
    (paper: O((D + log n) log n))."""
    return _static_task_rows(
        lambda d: AlgMIS(d),
        "mis",
        ns,
        diameter_bound,
        trials,
        seed,
        scheduler_factory,
        max_rounds,
    )


def per_log_n(rows: Sequence[SweepRow]) -> Tuple[float, ...]:
    """rounds / log2(n) per row — flat means Θ(log n) growth."""
    return ratio_to_log(
        [row.params["n"] for row in rows],
        [row.rounds.mean for row in rows],
    )


# ----------------------------------------------------------------------
# Thm 3.1 — Restart.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RestartRow:
    diameter_bound: int
    exit_times: Summary
    bound_6d: int
    all_concurrent: bool


def restart_experiment(
    diameter_bounds: Sequence[int] = (1, 2, 3, 4, 6, 8),
    n: int = 14,
    trials: int = 20,
    seed: int = 0,
) -> List[RestartRow]:
    """From random configurations containing at least one σ-state, all
    nodes must exit *concurrently* within ``O(D)`` synchronous rounds
    (we check against ``6D + 4``; isolated early exits of single nodes
    from garbage configurations are re-absorbed by rule 1 and do not
    count — see Thm 3.1's case analysis)."""
    rows: List[RestartRow] = []
    for d in diameter_bounds:
        exit_times: List[int] = []
        all_concurrent = True
        algorithm = StandaloneRestart(d)
        for trial in range(trials):
            rng = np.random.default_rng(seed + 100 * d + trial)
            topology = bounded_diameter_family(d, n, rng)
            initial = random_configuration(algorithm, topology, rng)
            if not any(isinstance(initial[v], RestartState) for v in topology.nodes):
                initial = initial.replace({0: RestartState(0)})
            execution = Execution(
                topology, algorithm, initial, SynchronousScheduler(), rng=rng
            )
            exit_time: Optional[int] = None
            for _ in range(10 * d + 20):
                record = execution.step()
                exits = [
                    v
                    for v, old, new in record.changed
                    if isinstance(old, RestartState)
                    and isinstance(new, IdleState)
                ]
                if len(exits) == topology.n:
                    exit_time = record.t + 1
                    break
            if exit_time is None:
                all_concurrent = False
                exit_time = 10 * d + 20
            exit_times.append(exit_time)
        rows.append(
            RestartRow(
                diameter_bound=d,
                exit_times=Summary.of(exit_times),
                bound_6d=6 * d + 4,
                all_concurrent=all_concurrent,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Cor 1.2 — synchronizer overhead.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SynchronizerRow:
    task: str
    n: int
    diameter_bound: int
    sync_rounds: Summary
    async_rounds: Summary
    inner_states: int
    product_states: int


def synchronizer_experiment(
    task: str = "mis",
    ns: Sequence[int] = (6, 10, 14),
    diameter_bound: int = 2,
    trials: int = 4,
    seed: int = 0,
    max_rounds: int = 120_000,
) -> List[SynchronizerRow]:
    """Synchronous Π vs asynchronous Π* stabilization rounds, plus the
    exact ``|Q*| = O(D·|Q|^2)`` accounting."""
    rows: List[SynchronizerRow] = []
    for n in ns:
        make = (lambda d: AlgMIS(d)) if task == "mis" else (lambda d: AlgLE(d))
        sync_rounds: List[int] = []
        async_rounds: List[int] = []
        inner_states = product_states = 0
        for trial in range(trials):
            rng = np.random.default_rng(seed + 1000 * n + trial)
            topology = _bounded_topology(n, diameter_bound, rng)
            if task == "mis":

                def is_valid(out, topo=topology):
                    return check_mis_output(topo, out).valid

            else:

                def is_valid(out):
                    return check_le_output(out).valid

            inner = make(diameter_bound)
            wrapped = Synchronizer(inner, diameter_bound)
            inner_states = inner.state_space_size()
            product_states = wrapped.state_space_size()
            sync_result = measure_static_task_stabilization(
                inner,
                topology,
                random_configuration(inner, topology, rng),
                SynchronousScheduler(),
                rng,
                is_valid,
                max_rounds=max_rounds,
                confirm_rounds=8 * (diameter_bound + 1),
            )
            assert sync_result.stabilized, sync_result.detail
            sync_rounds.append(sync_result.rounds)
            async_result = measure_static_task_stabilization(
                wrapped,
                topology,
                random_configuration(wrapped, topology, rng),
                ShuffledRoundRobinScheduler(),
                rng,
                is_valid,
                max_rounds=max_rounds,
                confirm_rounds=12 * (diameter_bound + 1),
            )
            assert async_result.stabilized, async_result.detail
            async_rounds.append(async_result.rounds)
        rows.append(
            SynchronizerRow(
                task=task,
                n=n,
                diameter_bound=diameter_bound,
                sync_rounds=Summary.of(sync_rounds),
                async_rounds=Summary.of(async_rounds),
                inner_states=inner_states,
                product_states=product_states,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Fault recovery (the title application).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RecoveryRow:
    label: str
    recovered: int
    trials: int
    recovery_rounds: Optional[Summary]


def au_fault_recovery_experiment(
    diameter_bound: int = 2,
    n: int = 16,
    bursts: int = 3,
    fraction: float = 0.3,
    trials: int = 10,
    seed: int = 0,
    engine: str = "object",
) -> RecoveryRow:
    """Inject ``bursts`` transient fault bursts into a stabilized AlgAU
    run and measure re-stabilization (always succeeds: Thm 1.1)."""
    recovery_rounds: List[int] = []
    recovered = 0
    for trial in range(trials):
        rng = np.random.default_rng(seed + trial)
        topology = _bounded_topology(n, diameter_bound, rng)
        algorithm = ThinUnison(diameter_bound)
        execution = create_execution(
            topology,
            algorithm,
            random_configuration(algorithm, topology, rng),
            ShuffledRoundRobinScheduler(),
            rng=rng,
            engine=engine,
        )

        def good(e):
            return e.graph_is_good()

        execution.run(max_rounds=10_000, until=good)
        ok = True
        for burst in range(bursts):
            count = max(1, int(np.ceil(fraction * topology.n)))
            victims = rng.choice(topology.n, size=count, replace=False)
            corrupted = execution.configuration.replace(
                {int(v): algorithm.random_state(rng) for v in victims}
            )
            execution.replace_configuration(corrupted)  # the fault strikes
            start = execution.completed_rounds
            result = execution.run(
                max_rounds=execution.completed_rounds + 10_000,
                until=good,
            )
            if not result.stopped_by_predicate:
                ok = False
                break
            recovery_rounds.append(execution.completed_rounds - start + 1)
        if ok:
            recovered += 1
    return RecoveryRow(
        label=f"AlgAU(D={diameter_bound}) n={n} {bursts} bursts @{fraction:.0%}",
        recovered=recovered,
        trials=trials,
        recovery_rounds=Summary.of(recovery_rounds) if recovery_rounds else None,
    )
