"""Statistics helpers for the experiment harness.

The paper's quantitative claims are asymptotic ("O(D^3) rounds",
"O(D log n) whp"); the harness validates their *shape* with seeded
Monte-Carlo sweeps: summary statistics per sweep point plus log-log
growth-rate fits across sweep points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of one sweep point."""

    count: int
    mean: float
    std: float
    median: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        data = np.asarray(list(values), dtype=float)
        if data.size == 0:
            raise ValueError("cannot summarize an empty sample")
        return cls(
            count=int(data.size),
            mean=float(data.mean()),
            std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
            median=float(np.median(data)),
            minimum=float(data.min()),
            maximum=float(data.max()),
        )

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.1f} ±{self.std:.1f} "
            f"med={self.median:.1f} max={self.maximum:.0f}"
        )

    def to_dict(self) -> dict:
        """A JSON-ready dict; float fields are bit-exact round-trips,
        so summaries over the same samples serialize identically."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "median": self.median,
            "min": self.minimum,
            "max": self.maximum,
        }


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x`` — the
    empirical polynomial degree of a scaling curve."""
    lx = np.log(np.asarray(list(xs), dtype=float))
    ly = np.log(np.asarray(list(ys), dtype=float))
    if lx.size < 2:
        raise ValueError("need at least two sweep points for a slope")
    slope, _ = np.polyfit(lx, ly, 1)
    return float(slope)


def ratio_to_log(ns: Sequence[int], ys: Sequence[float]) -> Tuple[float, ...]:
    """``y / log2(n)`` per sweep point — flat means ``Θ(log n)``."""
    return tuple(float(y) / math.log2(n) if n > 1 else float(y) for n, y in zip(ns, ys))


def max_geometric_sample(n: int, p: float, rng: np.random.Generator) -> int:
    """One draw of ``max`` of ``n`` i.i.d. Geom(p) variables (support
    starting at 1) — the distribution behind RandPhase/RandCount
    (Obs 3.2)."""
    return int(rng.geometric(p, size=n).max())


def geometric_max_statistics(n: int, p: float, trials: int, seed: int = 0) -> Summary:
    """Monte-Carlo summary of ``max`` of ``n`` Geom(p)."""
    rng = np.random.default_rng(seed)
    return Summary.of([max_geometric_sample(n, p, rng) for _ in range(trials)])


def within_factor(measured: float, reference: float, factor: float) -> bool:
    """Whether ``measured <= factor * reference`` — the harness's notion
    of "the shape holds" for upper-bound claims."""
    return measured <= factor * reference
