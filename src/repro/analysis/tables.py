"""ASCII/markdown table rendering for the experiment harness.

Benchmarks print the paper-shaped rows with these helpers and persist
them under ``benchmarks/results/`` so that EXPERIMENTS.md can reference
stable artifacts.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a github-markdown table (also readable as plain text)."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return (
            "| "
            + " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))
            + " |"
        )

    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append(fmt(list(headers)))
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def results_dir() -> str:
    """``benchmarks/results`` relative to the repository root (created
    on demand)."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(os.path.join(here, "..", "..", ".."))
    path = os.path.join(root, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def persist_table(name: str, content: str) -> str:
    """Write a rendered table under ``benchmarks/results/<name>.md``."""
    path = os.path.join(results_dir(), f"{name}.md")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content + "\n")
    return path


def write_json(path: str, payload: object) -> str:
    """Write a ``BENCH_*.json`` artifact deterministically.

    ``sort_keys`` plus a fixed indent makes equal payloads produce
    byte-identical files, which is what lets campaign artifacts be
    compared bit for bit across worker counts and across PRs.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def persist_json(name: str, payload: object) -> str:
    """Write a JSON artifact under ``benchmarks/results/<name>.json``."""
    return write_json(os.path.join(results_dir(), f"{name}.json"), payload)
