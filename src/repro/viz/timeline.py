"""ASCII timelines of executions.

Terminal-friendly renderings used by the examples and the CLI:

* :func:`clock_timeline` — per-round clock/level values of every node
  (AlgAU executions), with faulty turns marked;
* :func:`output_timeline` — per-round output bits of a static task
  (LE/MIS), with undecided/restarting nodes marked;
* :func:`sparkline` — a one-line sparkline of a numeric series
  (e.g. the number of good nodes per round).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.algau import ThinUnison
from repro.core.turns import Turn
from repro.model.configuration import Configuration

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render a numeric series as a unicode sparkline."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if high == low:
        return _SPARK_LEVELS[0] * len(values)
    span = high - low
    chars = []
    for value in values:
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def clock_timeline(
    algorithm: ThinUnison,
    snapshots: Sequence[Configuration],
    node_width: int = 4,
) -> str:
    """Render per-round AlgAU configurations.

    Able turns show their clock value, faulty turns show ``^level``.
    One row per snapshot (typically one per round).
    """
    if not snapshots:
        return ""
    n = snapshots[0].topology.n
    header = "round | " + " ".join(f"v{v}".rjust(node_width) for v in range(n))
    lines = [header, "-" * len(header)]
    for index, config in enumerate(snapshots):
        cells = []
        for v in range(n):
            turn = config[v]
            if isinstance(turn, Turn) and turn.able:
                cells.append(str(algorithm.output(turn)).rjust(node_width))
            else:
                cells.append(str(turn).rjust(node_width))
        lines.append(f"{index:5d} | " + " ".join(cells))
    return "\n".join(lines)


def output_timeline(
    algorithm,
    snapshots: Sequence[Configuration],
    symbols: Optional[dict] = None,
) -> str:
    """Render per-round output bits of a static-task execution.

    Default symbols: ``1`` and ``0`` for outputs, ``?`` for non-output
    (undecided) states, ``R`` for Restart states.
    """
    from repro.tasks.restart import RestartState

    if symbols is None:
        symbols = {1: "1", 0: "0", None: "?", "restart": "R"}
    if not snapshots:
        return ""
    n = snapshots[0].topology.n
    lines = []
    for index, config in enumerate(snapshots):
        cells = []
        for v in range(n):
            state = config[v]
            if isinstance(state, RestartState):
                cells.append(symbols["restart"])
            elif algorithm.is_output_state(state):
                cells.append(symbols[algorithm.output(state)])
            else:
                cells.append(symbols[None])
        lines.append(f"{index:5d} | " + "".join(cells))
    return "\n".join(lines)


def record_snapshots(
    execution,
    rounds: int,
    per_round: bool = True,
) -> List[Configuration]:
    """Advance ``execution`` by ``rounds`` rounds, collecting the
    configuration at every boundary (including the starting one)."""
    snapshots = [execution.configuration]
    for _ in range(rounds):
        execution.run_rounds(1)
        snapshots.append(execution.configuration)
    return snapshots
