"""Figure 1 — the turn/transition diagram of AlgAU.

The figure shows all turns of AlgAU and three families of arrows:

* solid arrows (type **AA**): the clock cycle
  ``-k → ... → -1 → 1 → ... → k → -k`` over the able turns;
* dashed arrows (type **AF**): from each able turn ``ℓ̄`` (``|ℓ| ≥ 2``)
  to its faulty twin ``ℓ̂``;
* dotted arrows (type **FA**): from each faulty turn ``ℓ̂`` to the able
  turn one unit inwards ``ψ^{-1}(ℓ)``.

:func:`state_diagram` extracts the exact edge sets from the implemented
transition function (by probing ``δ`` with single-purpose signals), so
the regenerated figure is a *witness* of the implementation rather than
a re-drawing of the paper; :func:`to_dot` renders it as Graphviz and
:func:`to_text` as a terminal-friendly listing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core.algau import ThinUnison, TransitionType
from repro.core.turns import Turn, able, faulty
from repro.model.signal import Signal


@dataclass(frozen=True)
class StateDiagram:
    """The extracted diagram: nodes and typed edges."""

    turns: Tuple[Turn, ...]
    aa_edges: Tuple[Tuple[Turn, Turn], ...]
    af_edges: Tuple[Tuple[Turn, Turn], ...]
    fa_edges: Tuple[Tuple[Turn, Turn], ...]

    @property
    def edge_count(self) -> int:
        return len(self.aa_edges) + len(self.af_edges) + len(self.fa_edges)


def state_diagram(algorithm: ThinUnison) -> StateDiagram:
    """Extract the diagram by probing the transition function.

    For each turn we synthesize the minimal signal that triggers each
    transition type (a lone node for AA; a non-adjacent neighbor for AF;
    an isolated faulty node for FA) and record the successor.
    """
    levels = algorithm.levels
    aa: List[Tuple[Turn, Turn]] = []
    af: List[Tuple[Turn, Turn]] = []
    fa: List[Tuple[Turn, Turn]] = []
    for level in levels.levels:
        src = able(level)
        # AA: alone in the neighborhood, good and unblocked.
        alone = Signal((src,))
        assert algorithm.classify(src, alone) is TransitionType.AA
        aa.append((src, algorithm.successor(src, alone)))
        # AF: a neighbor two forward-steps away breaks protection.
        if algorithm.turns.has_faulty(level):
            offender = able(levels.forward(level, 2))
            broken = Signal((src, offender))
            assert algorithm.classify(src, broken) is TransitionType.AF
            af.append((src, algorithm.successor(src, broken)))
            # FA: the faulty twin, sensing nothing outwards.
            fsrc = faulty(level)
            quiet = Signal((fsrc,))
            assert algorithm.classify(fsrc, quiet) is TransitionType.FA
            fa.append((fsrc, algorithm.successor(fsrc, quiet)))
    return StateDiagram(
        turns=algorithm.turns.all_turns,
        aa_edges=tuple(aa),
        af_edges=tuple(af),
        fa_edges=tuple(fa),
    )


def to_dot(diagram: StateDiagram) -> str:
    """Graphviz rendering (solid = AA, dashed = AF, dotted = FA),
    matching the styles of Figure 1."""
    lines = [
        "digraph AlgAU {",
        "  rankdir=LR;",
        '  node [shape=circle, fontname="Helvetica"];',
    ]
    for turn in diagram.turns:
        shape = "doublecircle" if turn.able else "circle"
        style = "solid" if turn.able else "dashed"
        lines.append(f'  "{turn}" [shape={shape}, style={style}];')
    for src, dst in diagram.aa_edges:
        lines.append(f'  "{src}" -> "{dst}" [style=solid, color=black];')
    for src, dst in diagram.af_edges:
        lines.append(f'  "{src}" -> "{dst}" [style=dashed, color=red];')
    for src, dst in diagram.fa_edges:
        lines.append(f'  "{src}" -> "{dst}" [style=dotted, color=blue];')
    lines.append("}")
    return "\n".join(lines)


def to_text(diagram: StateDiagram) -> str:
    """Terminal-friendly listing of the three edge families."""

    def fmt(edges: Tuple[Tuple[Turn, Turn], ...]) -> str:
        return ", ".join(f"{s}→{t}" for s, t in edges)

    return "\n".join(
        [
            f"turns ({len(diagram.turns)}): "
            + " ".join(str(t) for t in diagram.turns),
            f"AA (solid, {len(diagram.aa_edges)}): {fmt(diagram.aa_edges)}",
            f"AF (dashed, {len(diagram.af_edges)}): {fmt(diagram.af_edges)}",
            f"FA (dotted, {len(diagram.fa_edges)}): {fmt(diagram.fa_edges)}",
        ]
    )


def verify_figure1_structure(diagram: StateDiagram, k: int) -> List[str]:
    """Check the structural facts Figure 1 depicts; returns a list of
    discrepancies (empty = faithful).

    * the AA edges form a single directed cycle over the 2k able turns;
    * each able turn with ``|ℓ| ≥ 2`` has exactly one AF edge to its
      faulty twin;
    * each faulty turn has exactly one FA edge one unit inwards;
    * total states ``4k − 2``.
    """
    problems: List[str] = []
    able_turns = [t for t in diagram.turns if t.able]
    if len(able_turns) != 2 * k:
        problems.append(f"expected {2*k} able turns, got {len(able_turns)}")
    if len(diagram.turns) != 4 * k - 2:
        problems.append(f"expected {4*k-2} turns in total, got {len(diagram.turns)}")
    # AA forms one cycle covering all able turns.
    successor: Dict[Turn, Turn] = dict(diagram.aa_edges)
    if len(successor) != 2 * k:
        problems.append("AA edges do not define one successor per able turn")
    else:
        seen: Set[Turn] = set()
        cursor = able_turns[0]
        for _ in range(2 * k):
            seen.add(cursor)
            cursor = successor[cursor]
        if seen != set(able_turns) or cursor != able_turns[0]:
            problems.append("AA edges do not form a single 2k-cycle")
    if len(diagram.af_edges) != 2 * (k - 1):
        problems.append(f"expected {2*(k-1)} AF edges, got {len(diagram.af_edges)}")
    for src, dst in diagram.af_edges:
        if not (src.able and dst.faulty and src.level == dst.level):
            problems.append(f"AF edge {src}→{dst} is not a faulty detour")
    if len(diagram.fa_edges) != 2 * (k - 1):
        problems.append(f"expected {2*(k-1)} FA edges, got {len(diagram.fa_edges)}")
    for src, dst in diagram.fa_edges:
        inward_ok = (
            src.faulty
            and dst.able
            and abs(dst.level) == abs(src.level) - 1
            and (dst.level > 0) == (src.level > 0)
        )
        if not inward_ok:
            problems.append(f"FA edge {src}→{dst} does not go one unit inwards")
    return problems
