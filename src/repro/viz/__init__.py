"""Presentation helpers: Figure-1 regeneration and ASCII timelines."""

from repro.viz.state_diagram import (
    StateDiagram,
    state_diagram,
    to_dot,
    to_text,
    verify_figure1_structure,
)
from repro.viz.timeline import (
    clock_timeline,
    output_timeline,
    record_snapshots,
    sparkline,
)

__all__ = [
    "StateDiagram",
    "clock_timeline",
    "output_timeline",
    "record_snapshots",
    "sparkline",
    "state_diagram",
    "to_dot",
    "to_text",
    "verify_figure1_structure",
]
