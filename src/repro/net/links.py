"""Link model: configurable delay, jitter, loss, and duplication.

Links follow the *fair-lossy* abstraction standard in the
message-passing literature: an individual send may be dropped,
duplicated, delayed, or reordered, but a message sent infinitely often
is delivered infinitely often.  We realize the fairness half
constructively — each directed edge tracks its consecutive-drop streak
and force-delivers after :attr:`LinkConfig.max_consecutive_loss` drops —
so liveness of the stubborn-broadcast protocol in
:mod:`repro.net.node` is a property of the model, not of luck.

All durations are expressed in *slot units*: one activation step of the
runtime is one slot (see :mod:`repro.net.runtime` for the phase
layout).  Determinism note: when every stochastic knob is zero the link
consults no randomness at all, which keeps the noise RNG stream empty
and makes zero-noise runs bit-identical to the simulation engines.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Mapping, Tuple

import numpy as np

from repro.model.errors import ModelError


@dataclass(frozen=True)
class LinkConfig:
    """Stochastic parameters of every link in a net run.

    Attributes:
        delay: fixed propagation delay added to each delivery, in slot
            units (``>= 0``).
        jitter: upper bound of a uniform random extra delay per
            delivery, in slot units (``>= 0``).
        loss: probability that an individual send is dropped
            (``0 <= loss < 1``), subject to the fairness bound.
        duplicate: probability that a delivered message is delivered a
            second time at an independently jittered instant
            (``0 <= duplicate < 1``).
        max_consecutive_loss: fairness bound — a directed edge never
            drops more than this many sends in a row (``>= 1``).
    """

    delay: float = 0.0
    jitter: float = 0.0
    loss: float = 0.0
    duplicate: float = 0.0
    max_consecutive_loss: int = 3

    def __post_init__(self) -> None:
        """Validate ranges."""
        for field in ("delay", "jitter"):
            value = getattr(self, field)
            if not (isinstance(value, (int, float)) and value >= 0.0):
                raise ModelError(f"link {field} must be >= 0, got {value!r}")
        for field in ("loss", "duplicate"):
            value = getattr(self, field)
            if not (isinstance(value, (int, float)) and 0.0 <= value < 1.0):
                raise ModelError(f"link {field} must be in [0, 1), got {value!r}")
        streak = self.max_consecutive_loss
        if not (isinstance(streak, int) and streak >= 1):
            raise ModelError(
                f"max_consecutive_loss must be an int >= 1, got {streak!r}"
            )

    @property
    def is_noiseless(self) -> bool:
        """Whether the link introduces no randomness (pure fixed delay)."""
        return self.jitter == 0.0 and self.loss == 0.0 and self.duplicate == 0.0

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "LinkConfig":
        """Build a config from a ``net_params``-style mapping.

        Unknown keys are rejected so campaign specs cannot silently
        misspell a knob.
        """
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ModelError(f"unknown link parameter(s): {', '.join(unknown)}")
        kwargs = dict(params)
        if "max_consecutive_loss" in kwargs:
            streak = kwargs["max_consecutive_loss"]
            kwargs["max_consecutive_loss"] = int(streak)  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]


class FairLossyLink:
    """Per-directed-edge fault state on top of a shared :class:`LinkConfig`.

    One instance models one directed edge.  :meth:`transmit` is called
    once per send and returns the tuple of delivery latencies for that
    send — empty when dropped, one entry for a normal delivery, two when
    duplicated.  The caller schedules one delivery callback per entry;
    since latencies differ across messages, reordering arises naturally.
    """

    __slots__ = ("config", "consecutive_losses")

    def __init__(self, config: LinkConfig) -> None:
        self.config = config
        self.consecutive_losses = 0

    def transmit(self, rng: np.random.Generator) -> Tuple[float, ...]:
        """Sample the fate of one send; return delivery latencies in slots.

        The noise ``rng`` is consulted only for knobs that are actually
        enabled, so a noiseless config leaves the stream untouched.
        """
        config = self.config
        if config.loss > 0.0:
            streak_open = self.consecutive_losses < config.max_consecutive_loss
            if streak_open and rng.random() < config.loss:
                self.consecutive_losses += 1
                return ()
            self.consecutive_losses = 0
        latencies = [config.delay + self._jitter(rng)]
        if config.duplicate > 0.0 and rng.random() < config.duplicate:
            latencies.append(config.delay + self._jitter(rng))
        return tuple(latencies)

    def _jitter(self, rng: np.random.Generator) -> float:
        if self.config.jitter > 0.0:
            return float(rng.random()) * self.config.jitter
        return 0.0
