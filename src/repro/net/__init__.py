"""Message-passing deployment runtime (the ``runtime="net"`` lane).

The simulation engines of :mod:`repro.model` evaluate AlgAU under the
paper's shared-memory abstraction: an activated node reads its
neighbors' states directly out of the configuration.  This package
replaces that abstraction with an executable deployment model — each
node is an asyncio actor holding only its own AlgAU state, neighbors
exchange constant-size clock messages over simulated fair-lossy links
(configurable delay, jitter, reordering, loss, duplication), and the
whole system runs on a virtual-time event loop so every run is seeded
and fully deterministic.

Modules:

* :mod:`repro.net.vtime` — the deterministic virtual-time event loop;
* :mod:`repro.net.links` — :class:`LinkConfig` and the fair-lossy link
  model (per-edge loss/duplication with a bounded-consecutive-loss
  fairness guarantee);
* :mod:`repro.net.node` — the per-node actor: inbox, neighbor-state
  registers, one AlgAU transition per activation, stubborn broadcast;
* :mod:`repro.net.runtime` — :class:`NetExecution`, the
  :class:`~repro.model.engine.ExecutionBase` implementation driving the
  actors (so schedulers, monitors, adversaries, and the ``run`` driver
  compose unchanged), and :func:`create_net_execution`;
* :mod:`repro.net.detectors` — timeout-based failure detectors
  (:class:`ExcludeOnTimeout`, :class:`IncreasingTimeout`);
* :mod:`repro.net.election` — leader election over the runtime: LCR
  ring election and monarchical election over detector suspicions,
  validated with the LE task oracle;
* :mod:`repro.net.adapter` — :class:`NetAdapter`, mapping campaign
  :class:`~repro.campaigns.spec.Scenario` axes onto the runtime.

The differential contract: under zero-delay/zero-loss links the
runtime's trajectories are bit-identical to the simulation engines
(asserted by the ``net-smoke`` campaign and
``benchmarks/bench_net_runtime.py``); under injected delay/loss the
system still stabilizes, with a bounded slowdown.
"""

from repro.net.adapter import NetAdapter
from repro.net.detectors import ExcludeOnTimeout, IncreasingTimeout
from repro.net.election import (
    elect_monarch,
    run_lcr_election,
    run_monarchical_election,
)
from repro.net.links import FairLossyLink, LinkConfig
from repro.net.runtime import NetExecution, NetStats, create_net_execution
from repro.net.vtime import NetDeadlockError, VirtualTimeLoop

__all__ = [
    "ExcludeOnTimeout",
    "FairLossyLink",
    "IncreasingTimeout",
    "LinkConfig",
    "NetAdapter",
    "NetDeadlockError",
    "NetExecution",
    "NetStats",
    "VirtualTimeLoop",
    "create_net_execution",
    "elect_monarch",
    "run_lcr_election",
    "run_monarchical_election",
]
