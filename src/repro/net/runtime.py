"""`NetExecution`: the message-passing execution engine.

This module turns the actor/link/virtual-time pieces into a fifth
execution engine behind the :class:`~repro.model.engine.ExecutionBase`
contract, so schedulers, monitors, round bookkeeping, the
permanent-fault adversary and the ``run`` driver all compose unchanged.
What changes is *how one step happens*: instead of reading the shared
configuration, each activated node actor computes its AlgAU transition
from its private neighbor registers and broadcasts its (constant-size,
encoded) state over the simulated links.

The phased slot
---------------
Each call to :meth:`NetExecution._apply` advances virtual time by one
*slot* (default 1.0) with three deterministic phases:

* ``T + 0.0`` — every activated actor takes its step, reading its
  registers.  Deliveries from this step are still in flight, so every
  actor computes from *pre-step* states: exactly the simultaneous-update
  semantics of the simulation engines.
* ``T + 0.5`` — base delivery instant of this step's broadcasts (plus
  the link's configured delay and jitter), so under zero-noise links
  every register mirrors the true neighbor states before the next step
  computes at ``T + 1.0``.
* ``T + 1.0`` — the slot ends; control returns to the inherited
  ``step()``.

Determinism discipline
----------------------
Two RNG streams, never mixed: the inherited ``self.rng`` is the *parity
stream*, consumed only by the inherited step machinery (scheduler
draws, adversary draws) in exactly the order the simulation engines
consume it; ``noise_rng`` (derived from ``noise_seed``) drives link
loss/jitter/duplication and is never consulted when the link is
noiseless.  Consequently a zero-delay/zero-loss net run is bit-identical
— same ``StepRecord`` stream, same round boundaries, same measured
columns — to the same scenario on the ``array``/``object`` engines, the
contract the ``net-smoke`` differential campaign asserts.

Out-of-band state writes (configuration loads, ``poke_states``, the
Byzantine adversary's per-step overrides) refresh the neighbors'
registers *instantly* with fresh sequence numbers, modeling the
omniscient adversary of the paper (it writes memories, not messages);
stale in-flight deliveries cannot overwrite the refresh because
registers are last-writer-wins on a globally monotone sequence counter.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from repro.graphs.topology import Topology
from repro.model.algorithm import Algorithm
from repro.model.configuration import Configuration
from repro.model.engine import ExecutionBase, Intervention, Monitor
from repro.model.errors import ModelError
from repro.model.scheduler import Scheduler
from repro.net.links import FairLossyLink, LinkConfig
from repro.net.node import NodeActor
from repro.net.vtime import VirtualTimeLoop

_ACT = ("act",)
_STOP = ("stop",)

#: Phase offset (in slots) between an activation instant and the base
#: delivery instant of the broadcasts it triggered.  Any value in
#: (0, 1) preserves the pre-step-read parity argument; 0.5 keeps the
#: timeline legible in traces.
BROADCAST_PHASE = 0.5


@dataclass
class NetStats:
    """Cumulative message-layer counters of one net run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    acts: int = 0

    def per_node_round(self, n: int, rounds: int) -> float:
        """Messages sent per node per completed round (0 when no round
        completed)."""
        if n <= 0 or rounds <= 0:
            return 0.0
        return self.messages_sent / (n * rounds)


class NetExecution(ExecutionBase):
    """Message-passing engine: asyncio actors over fair-lossy links.

    Accepts the standard engine constructor arguments plus the net
    knobs (``link_config``, ``noise_seed``, ``slot``).  Restrictions
    relative to the simulation engines, all rejected eagerly:

    * the algorithm must be deterministic and expose a dense state
      ``encoding`` (messages are constant-size integer codes);
    * enabled-aware schedulers and ``track_enabled`` are unsupported —
      an enabled-set view would require the omniscient shared memory
      this runtime exists to remove.

    ``incremental`` is accepted for constructor compatibility and
    ignored: there is no δ cache to maintain, every activated actor
    evaluates its own transition.
    """

    def __init__(
        self,
        topology: Topology,
        algorithm: Algorithm,
        initial_configuration: Configuration,
        scheduler: Scheduler,
        rng: Optional[np.random.Generator] = None,
        monitors: Tuple[Monitor, ...] = (),
        intervention: Optional[Intervention] = None,
        incremental: bool = True,
        track_enabled: bool = False,
        link_config: Optional[LinkConfig] = None,
        noise_seed: int = 0,
        slot: float = 1.0,
    ):
        if track_enabled:
            raise ModelError(
                "the net runtime has no enabled-set view (it would require "
                "omniscient shared memory); build it with track_enabled=False"
            )
        if scheduler.uses_enabled_view:
            raise ModelError(
                f"scheduler {type(scheduler).__name__} needs the enabled-set "
                f"view, which the net runtime cannot provide; use an "
                f"oblivious daemon (e.g. synchronous, shuffled-round-robin)"
            )
        if not getattr(algorithm, "deterministic", False):
            raise ModelError(
                f"the net runtime requires a deterministic algorithm "
                f"(messages carry states, not distributions); "
                f"{algorithm.name} is randomized"
            )
        encoding = getattr(algorithm, "encoding", None)
        if encoding is None or not hasattr(encoding, "encode"):
            raise ModelError(
                f"the net runtime requires an algorithm with a dense state "
                f"encoding for constant-size messages; {algorithm.name} "
                f"has none"
            )
        if not (isinstance(slot, (int, float)) and slot > 0):
            raise ModelError(f"slot must be > 0, got {slot!r}")

        self.link_config = link_config if link_config is not None else LinkConfig()
        self.slot = float(slot)
        self.noise_rng = np.random.default_rng([int(noise_seed), 0x6E6574])
        self.stats = NetStats()
        self.loop = VirtualTimeLoop()
        self._encoding = encoding
        self._decode_cache: Dict[int, object] = {}
        self._seq = 0
        self._acts_pending = 0
        self._pending_changes: list = []
        self._config_cache: Optional[Configuration] = None
        self._closed = False

        self._actors: Dict[int, NodeActor] = {
            v: NodeActor(v, topology.neighbors(v), self) for v in topology.nodes
        }
        self._links: Dict[Tuple[int, int], FairLossyLink] = {
            (u, v): FairLossyLink(self.link_config)
            for u in topology.nodes
            for v in topology.neighbors(u)
        }

        # The base constructor calls _load_configuration (which needs
        # the actors above) and binds the scheduler.
        super().__init__(
            topology,
            algorithm,
            initial_configuration,
            scheduler,
            rng=rng,
            monitors=monitors,
            intervention=intervention,
            incremental=incremental,
            track_enabled=False,
        )

        self._tasks = [
            self.loop.create_task(actor.run()) for actor in self._actors.values()
        ]

    # ------------------------------------------------------------------
    # Engine hooks.
    # ------------------------------------------------------------------

    def _load_configuration(self, configuration: Configuration) -> None:
        """Adopt ``configuration``: set actor states and refresh every
        register instantly (omniscient out-of-band write)."""
        self._config_cache = configuration
        for v, actor in self._actors.items():
            actor.state = configuration[v]
        for v in self._actors:
            self._push_registers(v)

    def _apply(
        self, activated: FrozenSet[int]
    ) -> Tuple[Tuple[int, object, object], ...]:
        """Run one slot of virtual time with ``activated`` actors stepping."""
        self._config_cache = None
        self._pending_changes = []
        self._acts_pending = len(activated)
        for v in sorted(activated):
            self._actors[v].inbox.put_nowait(_ACT)
        self.stats.acts += len(activated)
        self.loop.run_until_complete(asyncio.sleep(self.slot))
        if self._acts_pending:
            raise ModelError(
                f"{self._acts_pending} activated actor(s) failed to take "
                f"their step within the slot"
            )
        changes = tuple(self._pending_changes)
        self._pending_changes = []
        return changes

    @property
    def configuration(self) -> Configuration:
        """The current configuration, assembled from the actor states."""
        if self._config_cache is None:
            self._config_cache = Configuration(
                self.topology,
                {v: actor.state for v, actor in self._actors.items()},
            )
        return self._config_cache

    def poke_states(self, updates) -> None:
        """Overwrite a few actor states in place (permanent-fault entry
        point), refreshing the neighbors' registers instantly."""
        if not updates:
            return
        unknown = set(int(v) for v in updates) - set(self._actors)
        if unknown:
            raise ModelError(f"cannot poke unknown nodes {sorted(unknown)}")
        self._state_epoch += 1
        self._config_cache = None
        for v, state in updates.items():
            self._actors[int(v)].state = state
            self._push_registers(int(v))

    def _refresh_pending(self) -> None:
        raise ModelError(
            "the net runtime has no enabled-set view: a node's "
            "enabledness depends on neighbor states it can only learn "
            "through messages"
        )

    def _enabled_snapshot(self) -> FrozenSet[int]:
        raise ModelError(
            "the net runtime has no enabled-set view: a node's "
            "enabledness depends on neighbor states it can only learn "
            "through messages"
        )

    # ------------------------------------------------------------------
    # Message plumbing (called by the actors).
    # ------------------------------------------------------------------

    def _record_change(self, node: int, old, new) -> None:
        if self._record_changes:
            self._pending_changes.append((node, old, new))

    def _act_done(self) -> None:
        self._acts_pending -= 1

    def _decode(self, code: int):
        cache = self._decode_cache
        state = cache.get(code)
        if state is None:
            state = self._encoding.decode(code)
            cache[code] = state
        return state

    def _broadcast(self, actor: NodeActor) -> None:
        """Stubbornly send ``actor``'s current state to every neighbor.

        Each directed send draws its fate from the link model; each
        surviving copy is scheduled for delivery at
        ``now + BROADCAST_PHASE * slot + latency``.
        """
        code = int(self._encoding.encode(actor.state))
        loop = self.loop
        base = BROADCAST_PHASE * self.slot
        stats = self.stats
        for v in actor.neighbors:
            self._seq += 1
            seq = self._seq
            stats.messages_sent += 1
            latencies = self._links[(actor.node, v)].transmit(self.noise_rng)
            if not latencies:
                stats.messages_dropped += 1
                continue
            if len(latencies) > 1:
                stats.messages_duplicated += 1
            inbox = self._actors[v].inbox
            message = ("msg", actor.node, seq, code)
            for latency in latencies:
                loop.call_later(base + latency, inbox.put_nowait, message)

    def _push_registers(self, v: int) -> None:
        """Write node ``v``'s current state into every neighbor's
        register with a fresh sequence number (instant, out-of-band)."""
        self._seq += 1
        seq = self._seq
        state = self._actors[v].state
        for u in self._actors[v].neighbors:
            registers = self._actors[u].registers
            registers[v] = (seq, state)

    # ------------------------------------------------------------------
    # Dynamic topology.
    # ------------------------------------------------------------------

    def _ensure_dynamic_topology(self):
        from repro.graphs.dynamic import DynamicTopology

        top = self.topology
        if not isinstance(top, DynamicTopology):
            top = DynamicTopology(top)
            self.topology = top
        return top

    def _apply_topology_delta(self, delta):
        """Map a :class:`~repro.graphs.dynamic.TopologyDelta` onto the
        actor world: edge deltas create/tear down directed link pairs
        (and the registers riding on them), leaves silence an actor into
        a tombstone, joins spawn a fresh actor and its inbox task.

        Register refreshes for every affected node are out-of-band
        (instant, fresh sequence numbers) — the same omniscient-write
        convention as configuration loads, which is what keeps zero-
        noise churn runs bit-identical to the simulation engines.
        In-flight deliveries from a removed neighbor are dropped by the
        actors' membership guard, not by scanning the message queues.
        """
        dyn = self._ensure_dynamic_topology()
        applied = dyn.apply_delta(delta)
        actors = self._actors
        links = self._links
        # Tear down removed (and leave-incident) edges: both directed
        # links and both registers.
        for u, v in applied.removed_edges:
            for a, b in ((u, v), (v, u)):
                links.pop((a, b), None)
                actors[b].registers.pop(a, None)
                actors[b].last_heard.pop(a, None)
        # Departed nodes become silent tombstones (rest state, no
        # neighbors, no message processing).
        if applied.left:
            rest = self.algorithm.initial_state()
            for v in applied.left:
                actor = actors[v]
                actor.crashed = True
                actor.state = rest
                actor.registers.clear()
                actor.last_heard.clear()
                actor.neighbors = ()
        # Joined nodes: one fresh actor and inbox task per join.
        for v, state in applied.joined:
            actor = NodeActor(v, dyn.neighbors(v), self)
            actor.state = state
            actors[v] = actor
            self._tasks.append(self.loop.create_task(actor.run()))
        # New directed link pairs for added (and join-attachment) edges.
        for u, v in applied.added_edges:
            links[(u, v)] = FairLossyLink(self.link_config)
            links[(v, u)] = FairLossyLink(self.link_config)
        # Surviving touched actors adopt their new neighbor sets, then
        # every affected node's state is pushed into the (new) registers.
        for v in applied.touched:
            actors[v].neighbors = dyn.neighbors(v)
        refresh = sorted(set(applied.touched) | {v for v, _ in applied.joined})
        for v in refresh:
            if not actors[v].crashed:
                self._push_registers(v)
        self._config_cache = None
        return applied

    # ------------------------------------------------------------------
    # Actor-level faults and lifecycle.
    # ------------------------------------------------------------------

    def crash_node(self, v: int) -> None:
        """Crash actor ``v``: it stops acting, broadcasting, and
        processing deliveries (its heartbeats go silent, so neighbors'
        failure detectors will eventually suspect it).  Also masks the
        node so the inherited step machinery never activates it."""
        if v not in self._actors:
            raise ModelError(f"cannot crash unknown node {v}")
        self._actors[v].crashed = True
        self.mask_nodes(self._masked | {v})

    def last_heard(self, v: int) -> Dict[int, float]:
        """Node ``v``'s per-neighbor last-delivery virtual times (the
        failure detectors' heartbeat view)."""
        return dict(self._actors[v].last_heard)

    @property
    def virtual_time(self) -> float:
        """The current virtual time in slot units."""
        return self.loop.time()

    def close(self) -> None:
        """Cancel the actor tasks and close the virtual-time loop.

        Safe to call more than once; after closing, the execution can
        still be inspected (configuration, stats) but not stepped.
        """
        if self._closed:
            return
        self._closed = True
        tasks = getattr(self, "_tasks", None)
        loop = self.loop
        if tasks and not loop.is_closed():
            for task in tasks:
                task.cancel()

            async def _drain() -> None:
                await asyncio.gather(*tasks, return_exceptions=True)

            loop.run_until_complete(_drain())
        if not loop.is_closed():
            loop.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass


def create_net_execution(
    topology: Topology,
    algorithm: Algorithm,
    initial_configuration: Configuration,
    scheduler: Scheduler,
    rng: Optional[np.random.Generator] = None,
    monitors: Tuple[Monitor, ...] = (),
    intervention: Optional[Intervention] = None,
    link_config: Optional[LinkConfig] = None,
    noise_seed: int = 0,
    slot: float = 1.0,
) -> NetExecution:
    """Build a :class:`NetExecution` (mirrors
    :func:`~repro.model.engine.create_execution`'s shape, plus the link
    and noise knobs)."""
    return NetExecution(
        topology,
        algorithm,
        initial_configuration,
        scheduler,
        rng=rng,
        monitors=monitors,
        intervention=intervention,
        link_config=link_config,
        noise_seed=noise_seed,
        slot=slot,
    )
