"""`NetAdapter`: the campaign-facing entry to the net runtime.

The campaign layer stays declarative: a :class:`~repro.campaigns.spec.Scenario`
with ``runtime="net"`` is the *same* spec as its simulation twin plus
the link knobs in ``net_params``.  This adapter owns the mapping from
the spec's simulation-era axes onto the deployment model:

* **scheduler daemons → activation timers.**  A scheduler's step-``t``
  activation set becomes the set of per-node timers firing in virtual
  slot ``t``: the synchronous daemon is "every node's timer fires every
  slot", shuffled round-robin is "one timer per slot in a fair shuffled
  order".  The daemon still draws from the scenario's parity RNG stream
  in the inherited step machinery, which is what keeps the activation
  sequence bit-identical to the simulation lane.  Enabled-aware daemons
  have no deployment analogue (a timer cannot see remote enabledness)
  and are rejected at spec validation.
* **FaultPlan kinds → actor-level faults.**  ``crash`` masks the faulty
  actors — their timers stop firing, so they stop acting *and
  broadcasting* and their registers freeze; ``byzantine`` runs the
  standard :class:`~repro.resilience.adversary.PermanentFaultAdversary`,
  whose per-step state overrides reach the actors through the runtime's
  instant register refresh (the omniscient-adversary convention: it
  rewrites memories, not messages).
* **seeds → noise.**  The scenario seed doubles as the link-noise seed;
  the noise stream is namespaced away from the parity stream, so a
  noiseless net scenario consumes exactly the simulation lane's draws.

Emitted :class:`~repro.campaigns.spec.ScenarioResult` rows therefore
carry the same stabilization/moves columns with the same meanings, and
:func:`~repro.campaigns.aggregate.verify_engine_pairing` can hold the
sim and net lanes to bit-identical measured columns under zero noise.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graphs.topology import Topology
from repro.model.algorithm import Algorithm
from repro.model.configuration import Configuration
from repro.model.engine import Intervention, Monitor
from repro.model.scheduler import Scheduler
from repro.net.links import LinkConfig
from repro.net.runtime import NetExecution, create_net_execution


class NetAdapter:
    """Builds :class:`~repro.net.runtime.NetExecution` instances from
    campaign scenarios (see the module docstring for the axis mapping).
    """

    @staticmethod
    def link_config(scenario) -> LinkConfig:
        """The scenario's ``net_params`` as a :class:`LinkConfig`."""
        return LinkConfig.from_params(dict(scenario.net_params))

    @staticmethod
    def create(
        scenario,
        topology: Topology,
        algorithm: Algorithm,
        initial_configuration: Configuration,
        scheduler: Scheduler,
        rng: Optional[np.random.Generator] = None,
        monitors: Tuple[Monitor, ...] = (),
        intervention: Optional[Intervention] = None,
    ) -> NetExecution:
        """Build the scenario's net execution.

        The caller supplies the already-materialized graph/algorithm/
        start configuration (built from the scenario's parity RNG in the
        standard order) so the net lane consumes the stream exactly as
        the simulation lane does.
        """
        return create_net_execution(
            topology,
            algorithm,
            initial_configuration,
            scheduler,
            rng=rng,
            monitors=monitors,
            intervention=intervention,
            link_config=NetAdapter.link_config(scenario),
            noise_seed=scenario.seed,
        )
