"""Per-node actor: local state, neighbor registers, stubborn broadcast.

A :class:`NodeActor` owns exactly the state a deployed AlgAU node would
own: its current algorithm state, one *register* per neighbor caching
the most recently heard neighbor state, and an inbox of pending
messages.  It never reads another actor's memory — the only coupling is
the constant-size clock messages (encoded turn codes, integers in
``[0, 4k-2]``) routed through the runtime's links.

Two protocol choices make the actor robust to the fair-lossy link
model of :mod:`repro.net.links`:

* **Stubborn broadcast** — an actor re-sends its current state to every
  neighbor on *every* activation, whether or not the state changed.
  Re-sends are idempotent, and combined with the bounded-consecutive-
  loss fairness guarantee they ensure registers eventually reflect true
  neighbor states.
* **Last-writer-wins registers** — every send carries a globally
  monotone sequence number; a register only moves forward.  Reordered
  or duplicated deliveries of stale messages are ignored instead of
  rolling a register back.

The actor's coroutine is a plain inbox loop: ``("act",)`` commands make
it take one AlgAU step (reading its registers, never the live states of
other actors), ``("msg", ...)`` deliveries update registers, and
``("stop",)`` ends the task.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Dict, Tuple

from repro.model.signal import Signal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.net.runtime import NetExecution


class NodeActor:
    """One network node: AlgAU state, neighbor registers, an inbox."""

    __slots__ = (
        "node",
        "runtime",
        "neighbors",
        "state",
        "registers",
        "last_heard",
        "inbox",
        "crashed",
    )

    def __init__(
        self, node: int, neighbors: Tuple[int, ...], runtime: "NetExecution"
    ) -> None:
        self.node = node
        self.runtime = runtime
        self.neighbors = neighbors
        self.state = None
        # register: neighbor -> (seq, state); seeded by the runtime's
        # omniscient refresh on configuration load.
        self.registers: Dict[int, Tuple[int, object]] = {}
        # last_heard: neighbor -> virtual receive time, for detectors.
        self.last_heard: Dict[int, float] = {}
        self.inbox: asyncio.Queue = asyncio.Queue()
        self.crashed = False

    def signal(self) -> Signal:
        """Inclusive-neighborhood signal assembled from the registers."""
        sensed = [self.state]
        sensed.extend(entry[1] for entry in self.registers.values())
        return Signal(sensed)

    def accept(self, sender: int, seq: int, state: object, now: float) -> None:
        """Apply one delivered message to the matching register.

        Stale deliveries (sequence number at or below the register's)
        are dropped; every delivery still refreshes ``last_heard`` so
        failure detectors measure link liveness, not state novelty.
        Deliveries from non-neighbors are discarded outright — under
        dynamic topology an in-flight copy may outlive the edge (or the
        sender) it travelled on, and must not resurrect a register that
        the membership change already tore down.
        """
        if sender not in self.neighbors:
            return
        self.last_heard[sender] = now
        current = self.registers.get(sender)
        if current is None or seq > current[0]:
            self.registers[sender] = (seq, state)

    async def run(self) -> None:
        """Inbox loop: act on commands until stopped or cancelled."""
        runtime = self.runtime
        while True:
            message = await self.inbox.get()
            kind = message[0]
            if kind == "act":
                if not self.crashed:
                    self._act(runtime)
                runtime._act_done()
            elif kind == "msg":
                if not self.crashed:
                    _, sender, seq, code = message
                    state = runtime._decode(code)
                    self.accept(sender, seq, state, runtime.loop.time())
                    runtime.stats.messages_delivered += 1
            elif kind == "stop":
                return

    def _act(self, runtime: "NetExecution") -> None:
        old = self.state
        new = runtime.algorithm.resolve(old, self.signal(), runtime.noise_rng)
        if new != old:
            self.state = new
            runtime._record_change(self.node, old, new)
        runtime._broadcast(self)
